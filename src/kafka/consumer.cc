#include "net/address.h"
#include "kafka/consumer.h"

#include <algorithm>

#include "kafka/broker.h"

namespace lidi::kafka {

Consumer::Consumer(std::string consumer_id, std::string group,
                   zk::ZooKeeper* zookeeper, net::Transport* network,
                   ConsumerOptions options)
    : id_(std::move(consumer_id)),
      group_(std::move(group)),
      zookeeper_(zookeeper),
      network_(network),
      options_(std::move(options)) {
  session_ = zookeeper_->CreateSession();
  // An unregistered consumer is worse than a dead one: the group's range
  // assignment never sees its id, so it owns nothing and Poll quietly
  // returns empty forever. The constructor cannot fail; Subscribe retries
  // and surfaces the status.
  registration_status_.store(RegisterInZk() ? 0 : 1,
                             std::memory_order_relaxed);
}

bool Consumer::RegisterInZk() {
  const std::string base = options_.zk_root + "/consumers/" + group_;
  Status reg = zookeeper_->CreateRecursive(session_, base + "/ids", "",
                                           zk::CreateMode::kPersistent);
  // The ids skeleton is shared by the whole group: a prior member creating
  // it first is success.
  if (reg.code() == Code::kAlreadyExists) reg = Status::OK();
  if (reg.ok()) {
    reg = zookeeper_->Create(session_, base + "/ids/" + id_, "",
                             zk::CreateMode::kEphemeral);
    // Our own ephemeral node surviving from an earlier (same-id) life is a
    // completed registration, not a failure.
    if (reg.code() == Code::kAlreadyExists) reg = Status::OK();
  }
  return reg.ok();
}

Consumer::~Consumer() { Close(); }

void Consumer::Close() {
  // exchange() so a racing external Close() and the destructor cannot both
  // pass the check and double-close the session.
  if (closed_.exchange(true)) return;
  zookeeper_->CloseSession(session_);
}

std::string Consumer::OwnerPath(const std::string& topic,
                                const TopicPartition& tp) const {
  return options_.zk_root + "/consumers/" + group_ + "/owners/" + topic + "/" +
         std::to_string(tp.broker_id) + "-" + std::to_string(tp.partition);
}

std::string Consumer::OffsetPath(const std::string& topic,
                                 const TopicPartition& tp) const {
  return options_.zk_root + "/consumers/" + group_ + "/offsets/" + topic +
         "/" + std::to_string(tp.broker_id) + "-" +
         std::to_string(tp.partition);
}

Result<std::vector<TopicPartition>> Consumer::AllPartitions(
    const std::string& topic) {
  auto brokers =
      zookeeper_->GetChildren(options_.zk_root + "/brokers/topics/" + topic);
  if (!brokers.ok()) return Status::NotFound("topic not advertised: " + topic);
  std::vector<TopicPartition> partitions;
  for (const std::string& broker : brokers.value()) {
    auto count = zookeeper_->Get(options_.zk_root + "/brokers/topics/" +
                                 topic + "/" + broker);
    if (!count.ok()) continue;
    const int n = std::atoi(count.value().c_str());
    for (int p = 0; p < n; ++p) {
      partitions.push_back(TopicPartition{std::atoi(broker.c_str()), p});
    }
  }
  std::sort(partitions.begin(), partitions.end());
  return partitions;
}

Status Consumer::Subscribe(const std::string& topic) {
  if (registration_status_.load(std::memory_order_relaxed) != 0) {
    if (!RegisterInZk()) {
      return Status::Unavailable("consumer " + id_ +
                                 " not registered with the group (zk)");
    }
    registration_status_.store(0, std::memory_order_relaxed);
  }
  {
    MutexLock lock(&mu_);
    topics_.insert(topic);
  }
  return Rebalance(topic);
}

Status Consumer::Rebalance(const std::string& topic) {
  // Read current group membership and partition space, leaving watches that
  // mark a rebalance pending on the next change.
  const std::string ids_path =
      options_.zk_root + "/consumers/" + group_ + "/ids";
  auto members = zookeeper_->GetChildren(
      ids_path, [this](const zk::WatchEvent&) { rebalance_needed_ = true; },
      session_);
  if (!members.ok()) return members.status();
  auto topic_watch = zookeeper_->GetChildren(
      options_.zk_root + "/brokers/topics/" + topic,
      [this](const zk::WatchEvent&) { rebalance_needed_ = true; }, session_);
  if (!topic_watch.ok() && !topic_watch.status().IsNotFound()) {
    // Without this watch the consumer never notices new partitions for the
    // topic — it would silently serve a stale assignment forever. NotFound
    // is fine (topic not advertised yet; the membership watch still fires).
    return topic_watch.status();
  }

  auto partitions = AllPartitions(topic);
  if (!partitions.ok()) return partitions.status();

  // Range assignment (as in Kafka): sort consumers and partitions; each
  // consumer takes a contiguous chunk.
  std::vector<std::string> consumers = members.value();
  std::sort(consumers.begin(), consumers.end());
  const auto self =
      std::find(consumers.begin(), consumers.end(), id_);
  if (self == consumers.end()) {
    return Status::Unavailable("consumer not registered in group");
  }
  const int index = static_cast<int>(self - consumers.begin());
  const int num_consumers = static_cast<int>(consumers.size());
  const int num_partitions = static_cast<int>(partitions.value().size());
  const int chunk = (num_partitions + num_consumers - 1) / num_consumers;
  const int begin = std::min(index * chunk, num_partitions);
  const int end = std::min(begin + chunk, num_partitions);

  std::vector<TopicPartition> target(partitions.value().begin() + begin,
                                     partitions.value().begin() + end);

  rebalance_count_.fetch_add(1);
  // Snapshot the previous assignment, then run the release/claim protocol
  // WITHOUT holding mu_: every step below is a Zookeeper round-trip, and
  // holding the consumer lock across RPCs both stalls concurrent polls and
  // invites deadlock should a watch callback ever re-enter the consumer.
  std::vector<TopicPartition> previous;
  {
    MutexLock lock(&mu_);
    previous = owned_[topic];
  }
  // Release partitions we no longer own.
  for (const TopicPartition& tp : previous) {
    if (std::find(target.begin(), target.end(), tp) == target.end()) {
      // discard-ok: best-effort release. If the delete is lost the next
      // owner's claim fails and its membership watch re-fires; the ephemeral
      // node also dies with this session.
      (void)zookeeper_->Delete(OwnerPath(topic, tp));
    }
  }
  // Claim the new set; failures (previous owner not released yet) leave the
  // partition out of this round — the watch fires again when it frees up.
  std::vector<TopicPartition> claimed;
  std::map<TopicPartition, int64_t> resumed_offsets;
  for (const TopicPartition& tp : target) {
    const std::string path = OwnerPath(topic, tp);
    if (zookeeper_->Exists(path)) {
      auto owner = zookeeper_->Get(path);
      if (owner.ok() && owner.value() == id_) {
        claimed.push_back(tp);
        continue;
      }
      rebalance_needed_ = true;  // try again next poll
      continue;
    }
    Status s = zookeeper_->CreateRecursive(session_, path, id_,
                                           zk::CreateMode::kEphemeral);
    if (s.ok()) {
      claimed.push_back(tp);
      // Resume from the committed offset, if any.
      auto offset = zookeeper_->Get(OffsetPath(topic, tp));
      resumed_offsets[tp] = offset.ok() ? std::atoll(offset.value().c_str())
                                        : 0;
    } else {
      rebalance_needed_ = true;
    }
  }
  MutexLock lock(&mu_);
  for (const auto& [tp, offset] : resumed_offsets) {
    auto key = std::make_pair(topic, tp);
    if (offsets_.count(key) == 0) offsets_[key] = offset;
  }
  owned_[topic] = std::move(claimed);
  return Status::OK();
}

std::vector<TopicPartition> Consumer::OwnedPartitions(
    const std::string& topic) const {
  MutexLock lock(&mu_);
  auto it = owned_.find(topic);
  return it == owned_.end() ? std::vector<TopicPartition>{} : it->second;
}

Result<std::vector<Message>> Consumer::Poll(const std::string& topic) {
  return PollStream(topic, 0, 1);
}

std::vector<Consumer::MessageStream> Consumer::CreateMessageStreams(
    const std::string& topic, int n) {
  std::vector<MessageStream> streams;
  streams.reserve(n);
  for (int i = 0; i < n; ++i) streams.emplace_back(this, topic, i, n);
  return streams;
}

Result<std::vector<Message>> Consumer::PollStream(const std::string& topic,
                                                  int stream_index,
                                                  int stream_count) {
  if (rebalance_needed_.exchange(false)) {
    Status s = Rebalance(topic);
    if (!s.ok()) return s;
  }
  std::vector<TopicPartition> owned;
  {
    MutexLock lock(&mu_);
    // This stream's slice: every stream_count-th owned partition.
    const auto& all = owned_[topic];
    for (size_t i = 0; i < all.size(); ++i) {
      if (static_cast<int>(i % stream_count) == stream_index) {
        owned.push_back(all[i]);
      }
    }
  }
  std::vector<Message> out;
  if (owned.empty()) return out;

  size_t cursor;
  {
    MutexLock lock(&mu_);
    cursor = poll_cursor_[topic]++;
  }
  // Round-robin over owned partitions; one fetch per Poll keeps latency
  // predictable and exercises the async-pull model.
  for (size_t attempt = 0; attempt < owned.size(); ++attempt) {
    const TopicPartition tp = owned[(cursor + attempt) % owned.size()];
    int64_t offset;
    {
      MutexLock lock(&mu_);
      offset = offsets_[{topic, tp}];
    }
    std::string request;
    EncodeFetchRequest(topic, tp.partition, offset, options_.max_fetch_bytes,
                       &request);
    // Payload-view fetch: the response is a pinned slice of the broker's
    // segment buffer (zero-copy end to end); messages are decoded straight
    // out of it below, the only copy being into the returned Message.
    auto response = network_->CallPayload(id_, net::MakeAddress(net::Tier::kKafkaBroker, tp.broker_id),
                                          "kafka.fetch", request);
    if (!response.ok()) {
      if (response.status().IsNotFound()) {
        // Offset expired under retention: restart from the log head. (The
        // consumer owns its position; this is the documented recovery.)
        std::string bounds_request;
        EncodeProduceRequest(topic, tp.partition, "", &bounds_request);
        auto bounds = network_->Call(id_, net::MakeAddress(net::Tier::kKafkaBroker, tp.broker_id),
                                     "kafka.offset-bounds", bounds_request);
        if (bounds.ok()) {
          MutexLock lock(&mu_);
          offsets_[{topic, tp}] = std::atoll(bounds.value().c_str());
        }
        continue;
      }
      return response.status();
    }
    if (response.value().empty()) continue;
    MessageSetIterator it(response.value().slice(), offset);
    MessageView view;
    while (it.NextView(&view)) {
      Message& message = out.emplace_back();
      message.payload.assign(view.payload.data(), view.payload.size());
      message.offset = view.offset;
      messages_consumed_.fetch_add(1);
    }
    if (!it.status().ok()) return it.status();
    MutexLock lock(&mu_);
    offsets_[{topic, tp}] = it.next_fetch_offset();
    if (!out.empty()) return out;
  }
  return out;
}

Result<std::vector<Message>> Consumer::PollUntilData(const std::string& topic,
                                                     int max_polls) {
  for (int i = 0; i < max_polls; ++i) {
    auto r = Poll(topic);
    if (!r.ok()) return r;
    if (!r.value().empty()) return r;
  }
  return std::vector<Message>{};
}

Status Consumer::CommitOffsets() {
  // Snapshot under the lock, write to Zookeeper outside it: offset commits
  // are RPCs and must not block polls/seeks on other threads.
  std::map<std::pair<std::string, TopicPartition>, int64_t> snapshot;
  {
    MutexLock lock(&mu_);
    snapshot = offsets_;
  }
  Status commit = Status::OK();
  for (const auto& [key, offset] : snapshot) {
    const std::string path = OffsetPath(key.first, key.second);
    Status s = zookeeper_->Exists(path)
                   ? zookeeper_->Set(path, std::to_string(offset))
                   : zookeeper_->CreateRecursive(session_, path,
                                                 std::to_string(offset),
                                                 zk::CreateMode::kPersistent);
    // Keep committing the remaining partitions (each offset is independent),
    // but the call must not report success if any write was lost: a caller
    // that trusts a false OK here re-reads from a stale offset after a
    // crash — or worse, skips records its peer already dropped.
    if (!s.ok() && commit.ok()) commit = s;
  }
  return commit;
}

void Consumer::Seek(const std::string& topic, const TopicPartition& tp,
                    int64_t offset) {
  MutexLock lock(&mu_);
  offsets_[{topic, tp}] = offset;
}

}  // namespace lidi::kafka
