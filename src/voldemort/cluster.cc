#include "voldemort/cluster.h"

#include <set>

namespace lidi::voldemort {

Cluster::Cluster(std::vector<Node> nodes, std::vector<int> partition_ownership,
                 std::vector<Zone> zones)
    : nodes_(std::move(nodes)),
      partition_ownership_(std::move(partition_ownership)),
      zones_(std::move(zones)) {}

Cluster Cluster::Uniform(std::vector<Node> nodes, int num_partitions) {
  std::vector<int> ownership(num_partitions);
  for (int p = 0; p < num_partitions; ++p) {
    ownership[p] = nodes[p % nodes.size()].id;
  }
  return Cluster(std::move(nodes), std::move(ownership));
}

const Node* Cluster::GetNode(int node_id) const {
  for (const Node& n : nodes_) {
    if (n.id == node_id) return &n;
  }
  return nullptr;
}

std::vector<int> Cluster::PartitionsOf(int node_id) const {
  std::vector<int> out;
  for (int p = 0; p < num_partitions(); ++p) {
    if (partition_ownership_[p] == node_id) out.push_back(p);
  }
  return out;
}

void Cluster::MovePartition(int partition, int new_owner) {
  partition_ownership_[partition] = new_owner;
}

int Cluster::NumZones() const {
  std::set<int> zones;
  for (const Node& n : nodes_) zones.insert(n.zone_id);
  return static_cast<int>(zones.size());
}

}  // namespace lidi::voldemort
