#ifndef LIDI_VOLDEMORT_FAILURE_DETECTOR_H_
#define LIDI_VOLDEMORT_FAILURE_DETECTOR_H_

#include <functional>
#include <map>

#include "common/clock.h"
#include "common/sync.h"

namespace lidi::voldemort {

/// Options for the success-ratio failure detector.
struct FailureDetectorOptions {
  /// A node is marked down when successes/total drops below this ratio...
  double threshold = 0.8;
  /// ...once at least this many requests were observed in the window.
  int minimum_requests = 10;
  /// Counters decay: the observation window restarts every interval.
  int64_t window_millis = 10'000;
  /// A banned node is probed again after this long (stands in for the
  /// asynchronous recovery thread of the paper).
  int64_t ban_millis = 500;
};

/// Tracks per-node availability from observed request outcomes (paper
/// Section II.B: "the most commonly used one marks a node as down when its
/// success ratio ... falls below a pre-configured threshold. Once marked
/// down the node is considered online only when an asynchronous thread is
/// able to contact it again").
///
/// The asynchronous recovery thread is modeled by `probe`: once the ban
/// interval elapses, IsAvailable invokes the probe callback; if it reports
/// the node reachable the node is restored. Thread-safe.
class FailureDetector {
 public:
  /// `probe(node_id)` should return true if the node answers a ping.
  FailureDetector(FailureDetectorOptions options, const Clock* clock,
                  std::function<bool(int)> probe);

  void RecordSuccess(int node_id);
  void RecordFailure(int node_id);

  /// Current availability verdict; may trigger a recovery probe.
  bool IsAvailable(int node_id);

  /// Probes every banned node immediately, ignoring the ban interval, and
  /// restores the reachable ones. Returns the number restored.
  ///
  /// This is the probe-on-heal path: IsAvailable rate-limits probes by
  /// resetting banned_at on every attempt, so a node whose probe failed
  /// moments before a partition healed used to stay banned for a further
  /// full ban interval even though it was answering pings. Wire this into
  /// net::Network::AddHealListener (the sim harness does) so a heal
  /// re-admits recovered replicas at once.
  int ProbeBannedNow();

  /// Number of nodes currently marked down.
  int UnavailableCount();

 private:
  struct NodeState {
    int64_t successes = 0;
    int64_t failures = 0;
    int64_t window_start_millis = 0;
    bool banned = false;
    int64_t banned_at_millis = 0;
  };

  void MaybeRollWindowLocked(NodeState* state, int64_t now)
      LIDI_REQUIRES(mu_);

  const FailureDetectorOptions options_;
  const Clock* clock_;
  std::function<bool(int)> probe_;
  /// Never held across the recovery probe (IsAvailable copies the probe
  /// callback out, pings unlocked, then re-locks to restore the node).
  Mutex mu_{"voldemort.failure_detector"};
  std::map<int, NodeState> nodes_ LIDI_GUARDED_BY(mu_);
};

}  // namespace lidi::voldemort

#endif  // LIDI_VOLDEMORT_FAILURE_DETECTOR_H_
