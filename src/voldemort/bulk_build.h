#ifndef LIDI_VOLDEMORT_BULK_BUILD_H_
#define LIDI_VOLDEMORT_BULK_BUILD_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "voldemort/cluster.h"
#include "voldemort/readonly_store.h"
#include "voldemort/server.h"

namespace lidi::voldemort {

/// Output of the build phase: per destination node, the index + data file
/// set (paper Figure II.3 phase (a): "partitioned sets of data and index
/// files ... partitioned by destination nodes and stored in HDFS").
struct BulkBuildResult {
  std::map<int, ReadOnlyFiles> files_per_node;
  int64_t total_records = 0;
};

/// The offline build phase. Stands in for the Hadoop job (see DESIGN.md):
/// routes every record to its N replica nodes, and per node emits a data
/// file plus an index file of (MD5(key), offset) entries sorted by digest —
/// the sort Hadoop performs in its reducers.
BulkBuildResult BulkBuild(const std::map<std::string, std::string>& records,
                          const Cluster& cluster, int replication_factor);

/// Stand-in for HDFS: versioned build outputs keyed by (store, version)
/// that Voldemort nodes pull from.
class BulkFileRepository {
 public:
  void Publish(const std::string& store, int64_t version,
               BulkBuildResult result);
  /// Files for one node; NotFound if the build/version is unknown.
  Result<ReadOnlyFiles> Fetch(const std::string& store, int64_t version,
                              int node_id) const;

 private:
  std::map<std::pair<std::string, int64_t>, BulkBuildResult> builds_;
};

/// Pull-phase throttling knobs (paper II.C: "(a) throttling the pulls and
/// (b) pulling the index files after all the data files to achieve
/// cache-locality post-swap").
struct PullOptions {
  /// Bytes copied per simulated chunk; the throttle callback runs between
  /// chunks (tests count invocations; a production build would sleep).
  int64_t throttle_chunk_bytes = 1 << 20;
  std::function<void(int64_t bytes_so_far)> throttle_callback;
};

/// Orchestrates the read-only data cycle across the cluster (Figure II.3):
/// pull into a fresh versioned directory on every node, then an atomic
/// cluster-wide swap, with rollback on request.
class ReadOnlyController {
 public:
  ReadOnlyController(std::vector<VoldemortServer*> servers,
                     const BulkFileRepository* repository)
      : servers_(std::move(servers)), repository_(repository) {}

  /// Pull phase: fetches version files into every node's store (parallel in
  /// production; sequential and deterministic here). Data files are copied
  /// before index files per the cache-locality optimization.
  Status Pull(const std::string& store, int64_t version,
              const PullOptions& options = {});

  /// Swap phase: atomically points every node at `version`. If any node
  /// cannot swap, already-swapped nodes are rolled back.
  Status SwapAll(const std::string& store, int64_t version);

  /// Cluster-wide rollback to each node's previous version.
  Status RollbackAll(const std::string& store);

 private:
  std::vector<VoldemortServer*> servers_;
  const BulkFileRepository* repository_;
};

}  // namespace lidi::voldemort

#endif  // LIDI_VOLDEMORT_BULK_BUILD_H_
