#ifndef LIDI_VOLDEMORT_METADATA_H_
#define LIDI_VOLDEMORT_METADATA_H_

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/sync.h"
#include "voldemort/cluster.h"

namespace lidi::voldemort {

/// A partition being rebalanced from one node to another. While a migration
/// is in flight, requests hitting the old owner are redirected to the new
/// one (paper Section II.B Admin Service: "We maintain consistency during
/// rebalancing by redirecting requests of moving partitions to their new
/// destination").
struct Migration {
  int partition = -1;
  int from_node = -1;
  int to_node = -1;
};

/// One coherent routing decision's worth of metadata: topology, in-flight
/// migrations, and the version they were observed at, captured under a
/// single lock acquisition. Routing a request off two separate reads
/// (cluster, then migrations) can tear across a concurrent rebalance step —
/// the ownership flip lands between the reads and the request is routed to
/// a node that no longer (or does not yet) own the partition.
struct RoutingView {
  Cluster cluster;
  std::map<int, Migration> migrations;
  int64_t version = 0;

  std::optional<Migration> MigrationOf(int partition) const {
    auto it = migrations.find(partition);
    if (it == migrations.end()) return std::nullopt;
    return it->second;
  }
};

/// Shared, mutable cluster metadata. Every node and client holds the full
/// topology (this object), which is what makes routing O(1) (Section II.A).
/// Thread-safe. Every mutation bumps `version`, so handoff-sensitive readers
/// can detect that the ring changed between two looks (DESIGN.md §13).
class ClusterMetadata {
 public:
  explicit ClusterMetadata(Cluster cluster) : cluster_(std::move(cluster)) {}

  /// Copy of the current topology.
  Cluster SnapshotCluster() const {
    ReaderLock lock(&mu_);
    return cluster_;
  }

  /// Atomic snapshot of topology + migrations + version under ONE reader
  /// acquisition. Handoff-sensitive paths (proxy routing, the rebalance
  /// executor) must use this rather than separate SnapshotCluster /
  /// MigrationOf calls, which can tear across a concurrent ownership flip.
  RoutingView Snapshot() const {
    ReaderLock lock(&mu_);
    return RoutingView{cluster_, migrations_, version_};
  }

  /// Monotone metadata version: bumped by every topology or migration-set
  /// mutation. Equal versions imply identical routing state.
  int64_t version() const {
    ReaderLock lock(&mu_);
    return version_;
  }

  int OwnerOfPartition(int partition) const {
    ReaderLock lock(&mu_);
    return cluster_.OwnerOfPartition(partition);
  }

  int num_partitions() const {
    ReaderLock lock(&mu_);
    return cluster_.num_partitions();
  }

  std::vector<Node> nodes() const {
    ReaderLock lock(&mu_);
    return cluster_.nodes();
  }

  const Node* GetNodeUnsafe(int node_id) const {
    ReaderLock lock(&mu_);
    return cluster_.GetNode(node_id);  // Node storage is append-only
  }

  std::optional<Migration> MigrationOf(int partition) const {
    ReaderLock lock(&mu_);
    auto it = migrations_.find(partition);
    if (it == migrations_.end()) return std::nullopt;
    return it->second;
  }

  void StartMigration(int partition, int to_node) {
    WriterLock lock(&mu_);
    migrations_[partition] =
        Migration{partition, cluster_.OwnerOfPartition(partition), to_node};
    ++version_;
  }

  /// Completes a migration: ownership flips to the destination node.
  void FinishMigration(int partition) {
    WriterLock lock(&mu_);
    auto it = migrations_.find(partition);
    if (it == migrations_.end()) return;
    cluster_.MovePartition(partition, it->second.to_node);
    migrations_.erase(it);
    ++version_;
  }

  /// Abandons a migration without flipping ownership (copy failed).
  void AbortMigration(int partition) {
    WriterLock lock(&mu_);
    if (migrations_.erase(partition) > 0) ++version_;
  }

  /// Registers a new node (cluster expansion without downtime).
  void AddNode(const Node& node) {
    WriterLock lock(&mu_);
    std::vector<Node> nodes = cluster_.nodes();
    nodes.push_back(node);
    std::vector<int> ownership(cluster_.num_partitions());
    for (int p = 0; p < cluster_.num_partitions(); ++p) {
      ownership[p] = cluster_.OwnerOfPartition(p);
    }
    cluster_ = Cluster(std::move(nodes), std::move(ownership),
                       cluster_.zones());
    ++version_;
  }

 private:
  /// Reader/writer lock: every request consults the topology (O(1) routing
  /// happens on the read side), while rebalances and expansions are rare —
  /// shared acquisition keeps lookups from serializing behind each other.
  mutable SharedMutex mu_{"voldemort.metadata"};
  Cluster cluster_ LIDI_GUARDED_BY(mu_);
  std::map<int, Migration> migrations_ LIDI_GUARDED_BY(mu_);
  int64_t version_ LIDI_GUARDED_BY(mu_) = 0;
};

}  // namespace lidi::voldemort

#endif  // LIDI_VOLDEMORT_METADATA_H_
