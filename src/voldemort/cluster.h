#ifndef LIDI_VOLDEMORT_CLUSTER_H_
#define LIDI_VOLDEMORT_CLUSTER_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace lidi::voldemort {

/// A physical Voldemort node. Nodes are grouped into zones (co-located
/// groups, typically datacenters) for the multi-datacenter routing variant
/// (paper Section II.B, Routing).
struct Node {
  int id = -1;
  std::string address;  // net::Address the node's server listens on
  int zone_id = 0;
};

/// A zone with its proximity list: other zones ordered nearest-first.
struct Zone {
  int id = 0;
  std::vector<int> proximity_list;
};

/// Cluster topology: the hash ring is split into `num_partitions` equal
/// logical partitions, each owned by exactly one node. Unlike Chord-style
/// DHTs, the complete topology lives on every node and client, making
/// lookups O(1) (Section II.A).
class Cluster {
 public:
  Cluster() = default;
  /// partition_ownership[p] = node id owning logical partition p.
  Cluster(std::vector<Node> nodes, std::vector<int> partition_ownership,
          std::vector<Zone> zones = {});

  /// Builds a cluster with `num_partitions` assigned round-robin over nodes.
  static Cluster Uniform(std::vector<Node> nodes, int num_partitions);

  int num_partitions() const {
    return static_cast<int>(partition_ownership_.size());
  }
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Zone>& zones() const { return zones_; }

  const Node* GetNode(int node_id) const;
  int OwnerOfPartition(int partition) const {
    return partition_ownership_[partition];
  }

  /// Partitions owned by `node_id`, ring order.
  std::vector<int> PartitionsOf(int node_id) const;

  /// Reassigns a partition to a new owner (rebalancing / dynamic cluster
  /// membership, Section II.B Admin Service).
  void MovePartition(int partition, int new_owner);

  /// Distinct zone count.
  int NumZones() const;

 private:
  std::vector<Node> nodes_;
  std::vector<int> partition_ownership_;
  std::vector<Zone> zones_;
};

/// Per-store configuration (paper Section II.B: "Every store has its set of
/// configurations" — replication factor N, required reads R, required
/// writes W, plus serialization schema, which lidi leaves to the caller).
struct StoreDefinition {
  std::string name;
  int replication_factor = 3;  // N
  int required_reads = 2;      // R
  int required_writes = 2;     // W
  /// Zone-aware stores: replicas must span at least this many zones.
  int zone_count_reads = 0;
  int zone_count_writes = 0;
  /// "bdb" (read-write, log-structured) or "read-only".
  std::string engine_type = "bdb";
};

}  // namespace lidi::voldemort

#endif  // LIDI_VOLDEMORT_CLUSTER_H_
