#ifndef LIDI_VOLDEMORT_CLIENT_H_
#define LIDI_VOLDEMORT_CLIENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "net/transport.h"
#include "voldemort/cluster.h"
#include "voldemort/failure_detector.h"
#include "voldemort/metadata.h"
#include "voldemort/wire.h"

namespace lidi::voldemort {

/// Client-side behaviour switches (used by the repair-mechanism ablation
/// bench, E5).
struct ClientOptions {
  bool enable_read_repair = true;
  bool enable_hinted_handoff = true;
  FailureDetectorOptions failure_detector;
  /// The zone this client runs in (-1 = no zone affinity). When set, reads
  /// contact replicas nearest-first per the cluster's zone proximity lists
  /// (paper II.B: zones are "defined by a proximity list of distances from
  /// other zones") — cross-datacenter hops happen only when the local zone
  /// cannot satisfy R.
  int client_zone = -1;
};

/// The Voldemort store client (paper Figure II.2). Performs client-side
/// routing over the full topology, quorum reads and writes against the
/// store's (N, R, W) configuration, vector-clock versioning with conflict
/// surfacing, read repair, hinted handoff, server-side transforms, and the
/// optimistic ApplyUpdate retry loop.
///
/// Any replica accepts writes (no master), so concurrent updates may yield
/// divergent histories; Get returns every concurrent version and the
/// application resolves.
///
/// Observability: each quorum operation runs under a root span
/// ("voldemort.get"/"voldemort.put") in the network's registry; the
/// per-replica RPC attempts become child spans, and read repair / hinted
/// handoff activity is counted ("voldemort.read_repairs",
/// "voldemort.hinted_handoffs"). Operation latency lands in
/// "voldemort.op_micros{op=...}".
class StoreClient {
 public:
  StoreClient(std::string client_name, StoreDefinition store_def,
              std::shared_ptr<ClusterMetadata> metadata, net::Transport* network,
              const Clock* clock, ClientOptions options = {});

  /// 1) VectorClock<V> get(K key): all concurrent versions (empty list never
  /// returned — NotFound instead).
  Result<std::vector<Versioned>> Get(Slice key);

  /// 3) get(K key, T transform): versions with the transform applied
  /// server-side (e.g. sub-list retrieval).
  Result<std::vector<Versioned>> Get(Slice key, const Transform& transform);

  /// 2) put(K key, VectorClock<V> value): quorum write. The supplied clock
  /// must descend from the read version; ObsoleteVersion signals an
  /// optimistic-lock conflict the caller may retry.
  Status Put(Slice key, const Versioned& versioned);

  /// 4) put(K key, VectorClock<V> value, T transform): the coordinator node
  /// applies the transform (e.g. list append) to its current value; the
  /// result is replicated to the remaining replicas. Saves shipping the full
  /// list through the client.
  Status Put(Slice key, const VectorClock& clock, const Transform& transform);

  /// Convenience first-write / blind-update: reads current version, writes
  /// value with a descending clock (still subject to optimistic locking).
  Status PutValue(Slice key, Slice value);

  /// Deletes all versions dominated by `clock`.
  Status Delete(Slice key, const VectorClock& clock);

  /// 5) applyUpdate(UpdateAction, retries): encapsulates the
  /// read-modify-write-if-unchanged loop (e.g. counters). `action` maps the
  /// current resolved versions (empty if absent) to the new value bytes.
  using UpdateAction =
      std::function<std::string(const std::vector<Versioned>& current)>;
  Status ApplyUpdate(Slice key, const UpdateAction& action, int max_retries);

  /// Read from a read-only store (binary-searched, built offline). Single
  /// value semantics — the offline pipeline produces one version per key.
  Result<std::string> ReadOnlyGet(Slice key);

  FailureDetector* failure_detector() { return &detector_; }

  /// Nodes consulted for `key`, in preference order (exposed for tests).
  std::vector<int> PreferenceList(Slice key);

 private:
  Result<std::vector<Versioned>> GetInternal(Slice key,
                                             const Transform& transform,
                                             obs::TraceContext* trace);
  Status PutEncoded(Slice key, const Versioned& versioned,
                    const Transform& transform);
  Status PutEncodedInternal(Slice key, const Versioned& versioned,
                            const Transform& transform,
                            obs::TraceContext* trace);
  void HintedHandoff(const std::vector<int>& failed_nodes,
                     const std::vector<int>& preference, Slice put_request,
                     obs::TraceContext* trace);
  void ReadRepair(Slice key, const std::vector<Versioned>& resolved,
                  const std::vector<std::pair<int, std::vector<Versioned>>>&
                      node_responses,
                  obs::TraceContext* trace);

  const std::string name_;
  const StoreDefinition def_;
  const std::shared_ptr<ClusterMetadata> metadata_;
  net::Transport* const network_;
  const ClientOptions options_;
  obs::MetricsRegistry* const metrics_;
  obs::Counter* const read_repairs_;
  obs::Counter* const read_repair_failures_;
  obs::Counter* const hinted_handoffs_;
  obs::LatencyHistogram* const get_micros_;
  obs::LatencyHistogram* const put_micros_;
  FailureDetector detector_;
};

/// The counterpart of server-side routing (paper Figure II.1): a client that
/// holds NO topology — just node addresses. Each request goes to one node
/// (round-robin, failing over on errors), which coordinates the quorum via
/// its embedded routing module. Trades an extra network hop for zero client
/// configuration, exactly the deployment choice the paper describes.
class ThinClient {
 public:
  ThinClient(std::string client_name, std::string store,
             std::vector<net::Address> nodes, net::Transport* network)
      : name_(std::move(client_name)),
        store_(std::move(store)),
        nodes_(std::move(nodes)),
        network_(network) {}

  Result<std::vector<Versioned>> Get(Slice key);
  Status Put(Slice key, const Versioned& versioned);
  Status Delete(Slice key, const VectorClock& clock);

 private:
  /// Sends `request` via `method` to nodes in round-robin order until one
  /// answers (or all fail).
  Result<std::string> CallAny(const std::string& method, Slice request);

  const std::string name_;
  const std::string store_;
  const std::vector<net::Address> nodes_;
  net::Transport* const network_;
  size_t next_node_ = 0;
};

}  // namespace lidi::voldemort

#endif  // LIDI_VOLDEMORT_CLIENT_H_
