#include "net/address.h"
#include "voldemort/admin.h"

#include "common/coding.h"
#include "voldemort/server.h"

namespace lidi::voldemort {

namespace {
constexpr char kAdminName[] = "voldemort-admin";
}  // namespace

Status AdminClient::AddStoreEverywhere(const std::string& store) {
  for (const Node& node : metadata_->nodes()) {
    auto r = network_->Call(kAdminName, net::MakeAddress(net::Tier::kVoldemort, node.id),
                            "admin.add-store", store);
    if (!r.ok() && r.status().code() != Code::kAlreadyExists) {
      return r.status();
    }
  }
  return Status::OK();
}

Status AdminClient::DeleteStoreEverywhere(const std::string& store) {
  for (const Node& node : metadata_->nodes()) {
    auto r = network_->Call(kAdminName, net::MakeAddress(net::Tier::kVoldemort, node.id),
                            "admin.delete-store", store);
    if (!r.ok() && !r.status().IsNotFound()) return r.status();
  }
  return Status::OK();
}

Status AdminClient::MigratePartition(const std::string& store, int partition,
                                     int to_node) {
  const int from_node = metadata_->OwnerOfPartition(partition);
  if (from_node == to_node) return Status::OK();

  // Phase 1: flag the migration; the old owner now proxies this partition.
  metadata_->StartMigration(partition, to_node);

  // Phase 2: stream the partition's entries to the destination. The entries
  // carry their vector clocks, so writes proxied to the destination during
  // the copy merge cleanly (admin.put-raw merges version lists).
  std::string fetch_request;
  PutLengthPrefixed(&fetch_request, store);
  PutVarint64(&fetch_request, static_cast<uint64_t>(partition));
  auto fetched = network_->Call(kAdminName, net::MakeAddress(net::Tier::kVoldemort, from_node),
                                "admin.fetch-partition", fetch_request);
  if (!fetched.ok()) {
    metadata_->AbortMigration(partition);
    return fetched.status();
  }

  std::string put_request;
  PutLengthPrefixed(&put_request, store);
  put_request += fetched.value();
  auto put = network_->Call(kAdminName, net::MakeAddress(net::Tier::kVoldemort, to_node),
                            "admin.put-raw", put_request);
  if (!put.ok()) {
    metadata_->AbortMigration(partition);
    return put.status();
  }

  // Phase 3: flip ownership; requests now route directly to the new owner.
  metadata_->FinishMigration(partition);
  return Status::OK();
}

}  // namespace lidi::voldemort
