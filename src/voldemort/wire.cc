#include "voldemort/wire.h"

namespace lidi::voldemort {

void Transform::EncodeTo(std::string* out) const {
  out->push_back(static_cast<char>(type));
  PutZigZag64(out, offset);
  PutZigZag64(out, count);
  PutLengthPrefixed(out, item);
}

Result<Transform> Transform::DecodeFrom(Slice* input) {
  if (input->empty()) return Status::Corruption("truncated transform");
  Transform t;
  t.type = static_cast<Type>((*input)[0]);
  input->RemovePrefix(1);
  Slice item;
  if (!GetZigZag64(input, &t.offset) || !GetZigZag64(input, &t.count) ||
      !GetLengthPrefixed(input, &item)) {
    return Status::Corruption("truncated transform fields");
  }
  t.item = item.ToString();
  return t;
}

void EncodeStringList(const std::vector<std::string>& items, std::string* out) {
  PutVarint64(out, items.size());
  for (const std::string& item : items) PutLengthPrefixed(out, item);
}

Result<std::vector<std::string>> DecodeStringList(Slice input) {
  uint64_t count;
  if (!GetVarint64(&input, &count)) {
    return Status::Corruption("truncated string list");
  }
  std::vector<std::string> items;
  items.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Slice item;
    if (!GetLengthPrefixed(&input, &item)) {
      return Status::Corruption("truncated string list item");
    }
    items.push_back(item.ToString());
  }
  return items;
}

Result<std::string> ApplyTransform(const Transform& t, Slice list_value) {
  std::vector<std::string> items;
  if (!list_value.empty()) {
    auto decoded = DecodeStringList(list_value);
    if (!decoded.ok()) return decoded.status();
    items = std::move(decoded.value());
  }
  switch (t.type) {
    case Transform::Type::kNone: {
      return list_value.ToString();
    }
    case Transform::Type::kSublist: {
      std::vector<std::string> sub;
      const int64_t size = static_cast<int64_t>(items.size());
      for (int64_t i = t.offset; i < t.offset + t.count && i < size; ++i) {
        if (i >= 0) sub.push_back(items[i]);
      }
      std::string out;
      EncodeStringList(sub, &out);
      return out;
    }
    case Transform::Type::kAppend: {
      items.push_back(t.item);
      std::string out;
      EncodeStringList(items, &out);
      return out;
    }
  }
  return Status::InvalidArgument("unknown transform type");
}

void EncodeGetRequest(Slice store, Slice key, std::string* out) {
  PutLengthPrefixed(out, store);
  PutLengthPrefixed(out, key);
}

Status DecodeGetRequest(Slice input, std::string* store, std::string* key) {
  Slice s, k;
  if (!GetLengthPrefixed(&input, &s) || !GetLengthPrefixed(&input, &k)) {
    return Status::Corruption("truncated get request");
  }
  *store = s.ToString();
  *key = k.ToString();
  return Status::OK();
}

void EncodePutRequest(Slice store, Slice key, const Versioned& versioned,
                      const Transform& transform, std::string* out) {
  PutLengthPrefixed(out, store);
  PutLengthPrefixed(out, key);
  versioned.version.EncodeTo(out);
  PutLengthPrefixed(out, versioned.value);
  transform.EncodeTo(out);
}

Status DecodePutRequest(Slice input, std::string* store, std::string* key,
                        Versioned* versioned, Transform* transform) {
  Slice s, k, value;
  if (!GetLengthPrefixed(&input, &s) || !GetLengthPrefixed(&input, &k)) {
    return Status::Corruption("truncated put request");
  }
  auto clock = VectorClock::DecodeFrom(&input);
  if (!clock.ok()) return clock.status();
  if (!GetLengthPrefixed(&input, &value)) {
    return Status::Corruption("truncated put value");
  }
  auto t = Transform::DecodeFrom(&input);
  if (!t.ok()) return t.status();
  *store = s.ToString();
  *key = k.ToString();
  versioned->version = std::move(clock.value());
  versioned->value = value.ToString();
  *transform = std::move(t.value());
  return Status::OK();
}

void EncodeDeleteRequest(Slice store, Slice key, const VectorClock& clock,
                         std::string* out) {
  PutLengthPrefixed(out, store);
  PutLengthPrefixed(out, key);
  clock.EncodeTo(out);
}

Status DecodeDeleteRequest(Slice input, std::string* store, std::string* key,
                           VectorClock* clock) {
  Slice s, k;
  if (!GetLengthPrefixed(&input, &s) || !GetLengthPrefixed(&input, &k)) {
    return Status::Corruption("truncated delete request");
  }
  auto c = VectorClock::DecodeFrom(&input);
  if (!c.ok()) return c.status();
  *store = s.ToString();
  *key = k.ToString();
  *clock = std::move(c.value());
  return Status::OK();
}

void EncodeSlopRequest(int destination_node, Slice put_request,
                       std::string* out) {
  PutZigZag64(out, destination_node);
  PutLengthPrefixed(out, put_request);
}

Status DecodeSlopRequest(Slice input, int* destination_node,
                         std::string* put_request) {
  int64_t dest;
  Slice req;
  if (!GetZigZag64(&input, &dest) || !GetLengthPrefixed(&input, &req)) {
    return Status::Corruption("truncated slop request");
  }
  *destination_node = static_cast<int>(dest);
  *put_request = req.ToString();
  return Status::OK();
}

}  // namespace lidi::voldemort
