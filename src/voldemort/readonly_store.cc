#include "voldemort/readonly_store.h"

#include <algorithm>
#include <cstring>

#include "common/coding.h"
#include "common/hash.h"

namespace lidi::voldemort {

namespace {

/// Reads and validates the data record at index entry `index`, comparing the
/// stored key; shared by both search strategies.
Result<std::string> ReadEntry(const ReadOnlyFiles& files, int64_t index,
                              Slice key) {
  const char* entry = files.index.data() + index * 24;
  const uint64_t offset = DecodeFixed64(entry + 16);
  if (offset >= files.data.size()) {
    return Status::Corruption("data offset out of bounds");
  }
  Slice record(files.data.data() + offset, files.data.size() - offset);
  Slice stored_key, stored_value;
  if (!GetLengthPrefixed(&record, &stored_key) ||
      !GetLengthPrefixed(&record, &stored_value)) {
    return Status::Corruption("truncated data record");
  }
  if (stored_key != key) {
    // MD5 collision between distinct keys: treat as absent.
    return Status::NotFound("md5 collision, key mismatch");
  }
  return stored_value.ToString();
}

/// First 8 digest bytes as a big-endian integer — the interpolation key.
uint64_t DigestPrefix(const uint8_t* digest) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | digest[i];
  return v;
}

}  // namespace

Result<std::string> ReadOnlySearch(const ReadOnlyFiles& files, Slice key) {
  if (files.index.size() % 24 != 0) {
    return Status::Corruption("index size not a multiple of entry size");
  }
  const std::array<uint8_t, 16> digest = Md5(key);
  const int64_t n = files.entry_count();
  int64_t lo = 0, hi = n - 1;
  while (lo <= hi) {
    const int64_t mid = lo + (hi - lo) / 2;
    const char* entry = files.index.data() + mid * 24;
    const int cmp = memcmp(entry, digest.data(), 16);
    if (cmp == 0) return ReadEntry(files, mid, key);
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return Status::NotFound();
}

Result<std::string> ReadOnlyInterpolationSearch(const ReadOnlyFiles& files,
                                                Slice key) {
  if (files.index.size() % 24 != 0) {
    return Status::Corruption("index size not a multiple of entry size");
  }
  const std::array<uint8_t, 16> digest = Md5(key);
  const uint64_t target = DigestPrefix(digest.data());
  const int64_t n = files.entry_count();
  int64_t lo = 0, hi = n - 1;
  while (lo <= hi) {
    const uint64_t lo_val = DigestPrefix(reinterpret_cast<const uint8_t*>(
        files.index.data() + lo * 24));
    const uint64_t hi_val = DigestPrefix(reinterpret_cast<const uint8_t*>(
        files.index.data() + hi * 24));
    int64_t probe;
    if (hi_val == lo_val) {
      probe = lo;  // degenerate range: scan linearly via bisection step
    } else if (target < lo_val || target > hi_val) {
      return Status::NotFound();
    } else {
      // Interpolate the expected position of the target digest.
      const double fraction = static_cast<double>(target - lo_val) /
                              static_cast<double>(hi_val - lo_val);
      probe = lo + static_cast<int64_t>(
                       fraction * static_cast<double>(hi - lo));
    }
    const char* entry = files.index.data() + probe * 24;
    const int cmp = memcmp(entry, digest.data(), 16);
    if (cmp == 0) return ReadEntry(files, probe, key);
    if (cmp < 0) {
      lo = probe + 1;
    } else {
      hi = probe - 1;
    }
  }
  return Status::NotFound();
}

Status ReadOnlyStore::AddVersion(int64_t version, ReadOnlyFiles files) {
  WriterLock lock(&mu_);
  if (versions_.count(version) > 0) {
    return Status::AlreadyExists("version " + std::to_string(version));
  }
  versions_[version] = std::move(files);
  return Status::OK();
}

Status ReadOnlyStore::Swap(int64_t version) {
  std::vector<SwapListener> listeners;
  {
    WriterLock lock(&mu_);
    if (versions_.count(version) == 0) {
      return Status::NotFound("version " + std::to_string(version));
    }
    previous_ = current_;
    current_ = version;
    listeners = listeners_;
  }
  for (const SwapListener& listener : listeners) listener(version);
  return Status::OK();
}

Status ReadOnlyStore::Rollback() {
  std::vector<SwapListener> listeners;
  int64_t now_current;
  {
    WriterLock lock(&mu_);
    if (previous_ < 0) return Status::InvalidArgument("no previous version");
    current_ = previous_;
    previous_ = -1;
    now_current = current_;
    listeners = listeners_;
  }
  for (const SwapListener& listener : listeners) listener(now_current);
  return Status::OK();
}

void ReadOnlyStore::AddSwapListener(SwapListener listener) {
  WriterLock lock(&mu_);
  listeners_.push_back(std::move(listener));
}

Result<std::string> ReadOnlyStore::Get(Slice key) const {
  ReaderLock lock(&mu_);
  if (current_ < 0) return Status::Unavailable("no version swapped in");
  auto it = versions_.find(current_);
  if (it == versions_.end()) return Status::Internal("current version missing");
  return ReadOnlySearch(it->second, key);
}

int64_t ReadOnlyStore::current_version() const {
  ReaderLock lock(&mu_);
  return current_;
}

std::vector<int64_t> ReadOnlyStore::versions() const {
  ReaderLock lock(&mu_);
  std::vector<int64_t> out;
  for (const auto& [v, files] : versions_) out.push_back(v);
  return out;
}

void ReadOnlyStore::RetainVersions(int keep) {
  WriterLock lock(&mu_);
  std::vector<int64_t> all;
  for (const auto& [v, files] : versions_) all.push_back(v);
  std::sort(all.rbegin(), all.rend());
  int kept = 0;
  for (int64_t v : all) {
    const bool in_use = v == current_ || v == previous_;
    if (kept < keep || in_use) {
      ++kept;
      continue;
    }
    versions_.erase(v);
  }
}

}  // namespace lidi::voldemort
