#ifndef LIDI_VOLDEMORT_ADMIN_H_
#define LIDI_VOLDEMORT_ADMIN_H_

#include <memory>
#include <string>

#include "net/transport.h"
#include "voldemort/metadata.h"

namespace lidi::voldemort {

/// Administrative client for the per-node admin service (paper Section II.B:
/// "the execution of privileged commands without downtime", including
/// add/delete store and rebalancing by changing partition ownership).
class AdminClient {
 public:
  AdminClient(std::shared_ptr<ClusterMetadata> metadata, net::Transport* network)
      : metadata_(std::move(metadata)), network_(network) {}

  /// Creates/drops a store on every node in the cluster.
  Status AddStoreEverywhere(const std::string& store);
  Status DeleteStoreEverywhere(const std::string& store);

  /// Rebalances one partition onto `to_node` without downtime:
  ///  1. marks the partition migrating (the old owner starts proxying),
  ///  2. copies the partition's entries to the destination,
  ///  3. flips ownership and clears the migration flag.
  Status MigratePartition(const std::string& store, int partition,
                          int to_node);

 private:
  const std::shared_ptr<ClusterMetadata> metadata_;
  net::Transport* const network_;
};

}  // namespace lidi::voldemort

#endif  // LIDI_VOLDEMORT_ADMIN_H_
