#ifndef LIDI_VOLDEMORT_VECTOR_CLOCK_H_
#define LIDI_VOLDEMORT_VECTOR_CLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace lidi::voldemort {

/// Causal ordering between two vector clocks.
enum class Occurred {
  kBefore,      // this happened strictly before the other
  kAfter,       // this happened strictly after the other
  kEqual,
  kConcurrently,  // divergent histories: neither dominates
};

/// Vector clock [LAM78] versioning Voldemort tuples (paper Section II.B:
/// "we use vector clocks to version our tuples and delegate conflict
/// resolution of concurrent versions to the application").
///
/// Entries map node id -> event counter, kept sorted by node id.
class VectorClock {
 public:
  VectorClock() = default;

  /// Bumps the counter for `node_id` (the write coordinator).
  void Increment(int node_id);

  /// Causal comparison with another clock.
  Occurred Compare(const VectorClock& other) const;

  /// True if this clock dominates or equals `other`.
  bool DominatesOrEquals(const VectorClock& other) const {
    const Occurred o = Compare(other);
    return o == Occurred::kAfter || o == Occurred::kEqual;
  }

  /// Entry-wise maximum (used by read repair to produce a resolved clock).
  VectorClock Merge(const VectorClock& other) const;

  int64_t CounterOf(int node_id) const;
  bool empty() const { return entries_.empty(); }
  const std::vector<std::pair<int, int64_t>>& entries() const {
    return entries_;
  }

  void EncodeTo(std::string* out) const;
  static Result<VectorClock> DecodeFrom(Slice* input);

  std::string ToString() const;

  friend bool operator==(const VectorClock& a, const VectorClock& b) {
    return a.entries_ == b.entries_;
  }

 private:
  std::vector<std::pair<int, int64_t>> entries_;  // sorted by node id
};

/// A value paired with its vector-clock version — the unit Voldemort
/// replicates and the client API surfaces (Figure II.2).
struct Versioned {
  VectorClock version;
  std::string value;

  friend bool operator==(const Versioned& a, const Versioned& b) {
    return a.version == b.version && a.value == b.value;
  }
};

/// Serializes a list of (possibly concurrent) versioned values, the on-node
/// storage representation for a key.
void EncodeVersionedList(const std::vector<Versioned>& list, std::string* out);
Result<std::vector<Versioned>> DecodeVersionedList(Slice input);

/// Inserts `candidate` into `list` with Dynamo semantics:
///  - if an existing version dominates or equals the candidate, returns
///    ObsoleteVersion and leaves the list unchanged;
///  - otherwise removes versions the candidate dominates and appends it
///    (concurrent versions are retained side by side).
Status InsertVersioned(std::vector<Versioned>* list, Versioned candidate);

/// Reconciles replica responses into the maximal set of concurrent versions
/// (drops every version some other version dominates).
std::vector<Versioned> ResolveConcurrent(std::vector<Versioned> all);

}  // namespace lidi::voldemort

#endif  // LIDI_VOLDEMORT_VECTOR_CLOCK_H_
