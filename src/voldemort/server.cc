#include "net/address.h"
#include "voldemort/server.h"

#include <algorithm>

#include "common/coding.h"
#include "storage/log_engine.h"
#include "voldemort/client.h"
#include "voldemort/routing.h"

namespace lidi::voldemort {

VoldemortServer::VoldemortServer(int node_id,
                                 std::shared_ptr<ClusterMetadata> metadata,
                                 net::Transport* network,
                                 VoldemortServerOptions options)
    : node_id_(node_id),
      metadata_(std::move(metadata)),
      network_(network),
      address_(net::MakeAddress(net::Tier::kVoldemort, node_id)),
      options_(options),
      request_quota_(options.quota_requests_per_sec, options.quota_burst),
      slop_engine_(storage::NewMemTableEngine()) {
  quota_rejects_ = network_->metrics()->GetCounter(
      "voldemort.quota.rejects", {{"node", std::to_string(node_id_)}});
  network_->Register(address_, "v.ping", [](Slice) -> Result<std::string> {
    return std::string("pong");
  });
  network_->Register(address_, "v.get", [this](Slice req) -> Result<std::string> {
    Status admit = AdmitClient("get");
    if (!admit.ok()) return admit;
    return HandleGet(req, /*allow_redirect=*/true);
  });
  network_->Register(address_, "v.get-noredirect",
                     [this](Slice req) -> Result<std::string> {
    Status admit = AdmitClient("get");
    if (!admit.ok()) return admit;
    return HandleGet(req, /*allow_redirect=*/false);
  });
  network_->Register(address_, "v.put", [this](Slice req) -> Result<std::string> {
    Status admit = AdmitClient("put");
    if (!admit.ok()) return admit;
    return HandlePut(req, /*allow_redirect=*/true);
  });
  network_->Register(address_, "v.put-noredirect",
                     [this](Slice req) -> Result<std::string> {
    Status admit = AdmitClient("put");
    if (!admit.ok()) return admit;
    return HandlePut(req, /*allow_redirect=*/false);
  });
  network_->Register(address_, "v.get-transform",
                     [this](Slice req) -> Result<std::string> {
    Status admit = AdmitClient("get-transform");
    if (!admit.ok()) return admit;
    return HandleGetTransform(req);
  });
  network_->Register(address_, "v.delete",
                     [this](Slice req) -> Result<std::string> {
                       Status admit = AdmitClient("delete");
                       if (!admit.ok()) return admit;
                       return HandleDelete(req, /*allow_redirect=*/true);
                     });
  network_->Register(address_, "v.delete-noredirect",
                     [this](Slice req) -> Result<std::string> {
                       Status admit = AdmitClient("delete");
                       if (!admit.ok()) return admit;
                       return HandleDelete(req, /*allow_redirect=*/false);
                     });
  network_->Register(address_, "v.slop",
                     [this](Slice req) { return HandleSlop(req); });
  network_->Register(address_, "v.push-slops",
                     [this](Slice) -> Result<std::string> {
                       return std::to_string(PushSlops());
                     });
  network_->Register(address_, "ro.get",
                     [this](Slice req) { return HandleReadOnlyGet(req); });
  network_->Register(address_, "admin.add-store",
                     [this](Slice req) -> Result<std::string> {
                       Status s = AddStore(req.ToString());
                       if (!s.ok()) return s;
                       return std::string("ok");
                     });
  network_->Register(address_, "admin.delete-store",
                     [this](Slice req) -> Result<std::string> {
                       Status s = DeleteStore(req.ToString());
                       if (!s.ok()) return s;
                       return std::string("ok");
                     });
  network_->Register(address_, "admin.fetch-partition", [this](Slice req) {
    return HandleFetchPartition(req);
  });
  network_->Register(address_, "admin.put-raw",
                     [this](Slice req) { return HandlePutRaw(req); });
}

VoldemortServer::~VoldemortServer() { network_->Unregister(address_); }

Status VoldemortServer::AdmitClient(const char* verb) {
  if (!request_quota_.enabled()) return Status::OK();
  const net::Address& caller = net::CallerIdentity();
  // Server-to-server traffic is exempt: redirect proxying, slop delivery and
  // the embedded vr.* coordinator's quorum fan-out all originate from a
  // Voldemort-tier identity ("voldemort-<id>..."), and throttling repair or
  // double-charging a routed request would turn overload into data loss.
  const std::string prefix = std::string(net::TierPrefix(net::Tier::kVoldemort)) + "-";
  if (caller.compare(0, prefix.size(), prefix) == 0) return Status::OK();
  const std::string client = caller.empty() ? "anonymous" : caller;
  if (request_quota_.Admit(client,
                           network_->metrics()->clock()->NowMicros())) {
    return Status::OK();
  }
  quota_rejects_->Increment();
  return Status::Overloaded(std::string(verb) + " quota exceeded for " +
                            client + " at " + address_);
}

Status VoldemortServer::AddStore(const std::string& name) {
  MutexLock lock(&mu_);
  if (engines_.count(name) > 0) return Status::AlreadyExists(name);
  engines_[name] = storage::NewLogStructuredEngine();
  return Status::OK();
}

Status VoldemortServer::DeleteStore(const std::string& name) {
  MutexLock lock(&mu_);
  if (engines_.erase(name) == 0) return Status::NotFound(name);
  return Status::OK();
}

bool VoldemortServer::HasStore(const std::string& name) const {
  MutexLock lock(&mu_);
  return engines_.count(name) > 0;
}

Status VoldemortServer::EnableServerSideRouting(
    const StoreDefinition& definition, const Clock* clock) {
  {
    MutexLock lock(&mu_);
    if (routed_clients_.count(definition.name) > 0) {
      return Status::AlreadyExists(definition.name);
    }
    // The embedded coordinator is an ordinary StoreClient — the same routing
    // module, relocated server-side (the pluggable-architecture point).
    routed_clients_[definition.name] = std::make_unique<StoreClient>(
        address_ + "-coordinator", definition, metadata_, network_, clock);
  }
  auto coordinator = [this](const std::string& store) -> StoreClient* {
    MutexLock lock(&mu_);
    auto it = routed_clients_.find(store);
    return it == routed_clients_.end() ? nullptr : it->second.get();
  };
  network_->Register(
      address_, "vr.get", [this, coordinator](Slice req) -> Result<std::string> {
        Status admit = AdmitClient("get");
        if (!admit.ok()) return admit;
        std::string store, key;
        Status s = DecodeGetRequest(req, &store, &key);
        if (!s.ok()) return s;
        StoreClient* client = coordinator(store);
        if (client == nullptr) {
          return Status::NotFound("server-side routing not enabled: " + store);
        }
        auto versions = client->Get(key);
        if (!versions.ok()) return versions.status();
        std::string out;
        EncodeVersionedList(versions.value(), &out);
        return out;
      });
  network_->Register(
      address_, "vr.put", [this, coordinator](Slice req) -> Result<std::string> {
        Status admit = AdmitClient("put");
        if (!admit.ok()) return admit;
        std::string store, key;
        Versioned versioned;
        Transform transform;
        Status s = DecodePutRequest(req, &store, &key, &versioned, &transform);
        if (!s.ok()) return s;
        StoreClient* client = coordinator(store);
        if (client == nullptr) {
          return Status::NotFound("server-side routing not enabled: " + store);
        }
        s = transform.type == Transform::Type::kNone
                ? client->Put(key, versioned)
                : client->Put(key, versioned.version, transform);
        if (!s.ok()) return s;
        return std::string("ok");
      });
  network_->Register(
      address_, "vr.delete",
      [this, coordinator](Slice req) -> Result<std::string> {
        Status admit = AdmitClient("delete");
        if (!admit.ok()) return admit;
        std::string store, key;
        VectorClock clock_value;
        Status s = DecodeDeleteRequest(req, &store, &key, &clock_value);
        if (!s.ok()) return s;
        StoreClient* client = coordinator(store);
        if (client == nullptr) {
          return Status::NotFound("server-side routing not enabled: " + store);
        }
        s = client->Delete(key, clock_value);
        if (!s.ok()) return s;
        return std::string("ok");
      });
  return Status::OK();
}

Status VoldemortServer::AddReadOnlyStore(const std::string& name) {
  MutexLock lock(&mu_);
  if (readonly_stores_.count(name) > 0) return Status::AlreadyExists(name);
  readonly_stores_[name] = std::make_unique<ReadOnlyStore>();
  return Status::OK();
}

ReadOnlyStore* VoldemortServer::GetReadOnlyStore(const std::string& name) {
  MutexLock lock(&mu_);
  auto it = readonly_stores_.find(name);
  return it == readonly_stores_.end() ? nullptr : it->second.get();
}

storage::StorageEngine* VoldemortServer::GetEngine(const std::string& store) {
  MutexLock lock(&mu_);
  return GetEngineLocked(store);
}

storage::StorageEngine* VoldemortServer::GetEngineLocked(
    const std::string& store) {
  auto it = engines_.find(store);
  return it == engines_.end() ? nullptr : it->second.get();
}

std::vector<Migration> VoldemortServer::HandoffsOf(Slice key) const {
  if (options_.disable_handoff_pairing) return {};
  // ONE atomic snapshot of topology + migrations. Reading them through two
  // separate accessors (the old SnapshotCluster / MigrationOf pair) tears
  // across a concurrent cutover: the ownership flip can land between the
  // reads and this node proxies for a partition it still believes it owns —
  // or fails to pair-write one it is mid-handoff on.
  const RoutingView view = metadata_->Snapshot();
  if (view.cluster.num_partitions() == 0) return {};
  auto routing =
      NewConsistentRoutingStrategy(&view.cluster, options_.replication_factor);
  // Every partition in the key's preference list can strand a replica if it
  // migrates away un-paired, not just the master partition: the N-1 replica
  // slots are what quorum reads fall back on.
  std::vector<Migration> handoffs;
  for (int partition : routing->PartitionList(key)) {
    const auto migration = view.MigrationOf(partition);
    if (migration.has_value() && migration->from_node == node_id_) {
      handoffs.push_back(*migration);
    }
  }
  return handoffs;
}

Status VoldemortServer::ForwardToHandoffPeer(const Migration& migration,
                                             const std::string& method,
                                             Slice request) {
  const net::Address peer =
      net::MakeAddress(net::Tier::kVoldemort, migration.to_node);
  auto forwarded = network_->Call(address_, peer, method, request);
  if (forwarded.ok() || forwarded.status().IsObsoleteVersion()) {
    // Delivered, or the destination already holds a dominating version.
    return Status::OK();
  }
  // The mid-migration error contract (transport_parity_test): the pair
  // write could not reach the new owner, so acking would break the
  // "readable at current owner" invariant the moment cutover lands. The
  // message is server-generated and stable — never the transport's own
  // failure text, which is backend-specific.
  return Status::Unavailable("handoff pair write to " + peer +
                             " failed for partition " +
                             std::to_string(migration.partition));
}

Result<std::string> VoldemortServer::HandleGet(Slice request,
                                               bool allow_redirect) {
  // Reads are served locally even mid-migration: the pair-write protocol
  // keeps this node's copy complete until cutover, and after cutover the
  // routing layer no longer sends reads here. (allow_redirect is kept so
  // the -noredirect variant stays a distinct method for the invariant
  // checker's owner-directed reads.)
  (void)allow_redirect;  // discard-ok: local serve on both variants, see above
  std::string store, key;
  Status s = DecodeGetRequest(request, &store, &key);
  if (!s.ok()) return s;
  MutexLock lock(&mu_);
  storage::StorageEngine* engine = GetEngineLocked(store);
  if (engine == nullptr) return Status::NotFound("no store " + store);
  std::string value;
  s = engine->Get(key, &value);
  if (!s.ok()) return s;
  return value;  // already an encoded versioned list
}

Result<std::string> VoldemortServer::HandlePut(Slice request,
                                               bool allow_redirect) {
  std::string store, key;
  Versioned incoming;
  Transform transform;
  Status s = DecodePutRequest(request, &store, &key, &incoming, &transform);
  if (!s.ok()) return s;
  const std::vector<Migration> handoffs =
      allow_redirect ? HandoffsOf(key) : std::vector<Migration>{};

  {
    MutexLock lock(&mu_);
    storage::StorageEngine* engine = GetEngineLocked(store);
    if (engine == nullptr) return Status::NotFound("no store " + store);

    std::string existing_encoded;
    std::vector<Versioned> list;
    if (engine->Get(key, &existing_encoded).ok()) {
      auto decoded = DecodeVersionedList(existing_encoded);
      if (!decoded.ok()) return decoded.status();
      list = std::move(decoded.value());
    }

    if (transform.type == Transform::Type::kAppend) {
      // Server-side transformed put: apply the append against the node's
      // current resolved value, then insert the result under the incoming
      // clock. Saves shipping the whole list through the client (II.B).
      std::vector<Versioned> resolved = ResolveConcurrent(list);
      const Slice base =
          resolved.empty() ? Slice() : Slice(resolved.back().value);
      auto transformed = ApplyTransform(transform, base);
      if (!transformed.ok()) return transformed.status();
      incoming.value = std::move(transformed.value());
    }

    s = InsertVersioned(&list, incoming);
    if (!s.ok()) return s;
    std::string encoded;
    EncodeVersionedList(list, &encoded);
    s = engine->Put(key, encoded);
    if (!s.ok()) return s;
  }

  if (!handoffs.empty()) {
    // Proxy-pair double-route (paper II.B Admin Service): while any of the
    // key's partitions migrates away, every write lands on BOTH the old and
    // the new owner, so the destination is complete from the instant of the
    // bulk copy regardless of interleaving. The forward carries the
    // locally-resolved value under the incoming clock (transform already
    // applied above) so the two replicas store identical bytes. mu_ is
    // released before these network calls.
    std::string fwd;
    Versioned resolved = incoming;
    EncodePutRequest(store, key, resolved, Transform{}, &fwd);
    for (const Migration& handoff : handoffs) {
      Status paired = ForwardToHandoffPeer(handoff, "v.put-noredirect", fwd);
      if (!paired.ok()) return paired;
    }
  }
  // Respond with the stored value bytes so transformed puts can be
  // replicated verbatim by the client library.
  return incoming.value;
}

Result<std::string> VoldemortServer::HandleGetTransform(Slice request) {
  // Request: get request fields followed by a transform.
  Slice input = request;
  Slice store_slice, key_slice;
  if (!GetLengthPrefixed(&input, &store_slice) ||
      !GetLengthPrefixed(&input, &key_slice)) {
    return Status::Corruption("bad get-transform request");
  }
  auto transform = Transform::DecodeFrom(&input);
  if (!transform.ok()) return transform.status();

  MutexLock lock(&mu_);
  storage::StorageEngine* engine = GetEngineLocked(store_slice.ToString());
  if (engine == nullptr) return Status::NotFound("no store");
  std::string encoded;
  Status s = engine->Get(key_slice, &encoded);
  if (!s.ok()) return s;
  auto list = DecodeVersionedList(encoded);
  if (!list.ok()) return list.status();
  // Apply the transform to each version's value server-side, shipping only
  // the (typically much smaller) result to the client.
  for (Versioned& v : list.value()) {
    auto transformed = ApplyTransform(transform.value(), v.value);
    if (!transformed.ok()) return transformed.status();
    v.value = std::move(transformed.value());
  }
  std::string out;
  EncodeVersionedList(list.value(), &out);
  return out;
}

Result<std::string> VoldemortServer::HandleDelete(Slice request,
                                                  bool allow_redirect) {
  std::string store, key;
  VectorClock clock;
  Status s = DecodeDeleteRequest(request, &store, &key, &clock);
  if (!s.ok()) return s;
  const std::vector<Migration> handoffs =
      allow_redirect ? HandoffsOf(key) : std::vector<Migration>{};
  int64_t dropped = 0;
  {
    MutexLock lock(&mu_);
    storage::StorageEngine* engine = GetEngineLocked(store);
    if (engine == nullptr) return Status::NotFound("no store " + store);
    std::string existing_encoded;
    if (engine->Get(key, &existing_encoded).ok()) {
      auto decoded = DecodeVersionedList(existing_encoded);
      if (!decoded.ok()) return decoded.status();
      std::vector<Versioned> remaining;
      for (Versioned& v : decoded.value()) {
        // Delete versions the supplied clock dominates or equals.
        const Occurred o = clock.Compare(v.version);
        if (o == Occurred::kAfter || o == Occurred::kEqual) {
          ++dropped;
        } else {
          remaining.push_back(std::move(v));
        }
      }
      if (remaining.empty()) {
        Status applied = engine->Delete(key);
        if (!applied.ok()) return applied;
      } else {
        std::string encoded;
        EncodeVersionedList(remaining, &encoded);
        // The reply below acks "dropped N versions"; if the narrowed list
        // never reached the engine nothing was dropped and the ack would be
        // a lie.
        Status applied = engine->Put(key, encoded);
        if (!applied.ok()) return applied;
      }
    }
  }
  for (const Migration& handoff : handoffs) {
    // Tombstones pair-route like puts: a delete that only the old owner
    // applied would resurrect the key at cutover.
    Status paired =
        ForwardToHandoffPeer(handoff, "v.delete-noredirect", request);
    if (!paired.ok()) return paired;
  }
  return std::to_string(dropped);
}

Result<std::string> VoldemortServer::HandleSlop(Slice request) {
  int destination;
  std::string put_request;
  Status s = DecodeSlopRequest(request, &destination, &put_request);
  if (!s.ok()) return s;
  // Key the slop by destination + a unique suffix so multiple hints queue up.
  std::string slop_key;
  PutZigZag64(&slop_key, destination);
  PutFixed64(&slop_key, static_cast<uint64_t>(slop_engine_->Count()));
  slop_key += put_request.substr(0, 16);
  s = slop_engine_->Put(slop_key, request);
  if (!s.ok()) return s;
  return std::string("ok");
}

int VoldemortServer::PushSlops() {
  // Snapshot the slops, attempt delivery, erase the delivered ones.
  std::vector<std::pair<std::string, std::string>> slops;
  slop_engine_->ForEach([&slops](Slice k, Slice v) {
    slops.emplace_back(k.ToString(), v.ToString());
    return true;
  });
  int delivered = 0;
  for (const auto& [slop_key, slop_value] : slops) {
    int destination;
    std::string put_request;
    if (!DecodeSlopRequest(slop_value, &destination, &put_request).ok()) {
      // discard-ok: dropping a malformed slop; if the delete fails it is
      // re-examined (and re-dropped) on the next push cycle.
      (void)slop_engine_->Delete(slop_key);
      continue;
    }
    // Re-resolve the hint against the CURRENT ring before delivery. The
    // slop records the node that missed the write, but a rebalance may have
    // moved the key's partitions since the hint was parked — delivering to
    // the recorded node would then strand the value on a node the read path
    // no longer visits. If the recorded destination fell out of the key's
    // preference list, redirect the hint to the current master instead.
    std::string hint_store, hint_key;
    Versioned hint_versioned;
    Transform hint_transform;
    if (DecodePutRequest(put_request, &hint_store, &hint_key, &hint_versioned,
                         &hint_transform)
            .ok()) {
      const RoutingView view = metadata_->Snapshot();
      if (view.cluster.num_partitions() > 0) {
        auto routing = NewConsistentRoutingStrategy(
            &view.cluster, options_.replication_factor);
        const std::vector<int> owners = routing->RouteRequest(hint_key);
        if (!owners.empty() && std::find(owners.begin(), owners.end(),
                                         destination) == owners.end()) {
          destination = owners.front();
        }
      }
    }
    auto r = network_->Call(address_, net::MakeAddress(net::Tier::kVoldemort, destination),
                            "v.put-noredirect", put_request);
    if (r.ok() || r.status().IsObsoleteVersion()) {
      // Delivered, or the destination already has a newer version.
      // discard-ok: a failed delete only redelivers the slop later, and
      // slop puts are version-idempotent (ObsoleteVersion on replay).
      (void)slop_engine_->Delete(slop_key);
      ++delivered;
    }
  }
  return delivered;
}

int64_t VoldemortServer::SlopCount() const { return slop_engine_->Count(); }

Result<std::string> VoldemortServer::HandleFetchPartition(Slice request) {
  Slice store_slice;
  uint64_t partition;
  Slice input = request;
  if (!GetLengthPrefixed(&input, &store_slice) ||
      !GetVarint64(&input, &partition)) {
    return Status::Corruption("bad fetch-partition request");
  }
  const std::string store = store_slice.ToString();
  const Cluster cluster = metadata_->SnapshotCluster();
  auto routing =
      NewConsistentRoutingStrategy(&cluster, options_.replication_factor);

  MutexLock lock(&mu_);
  storage::StorageEngine* engine = GetEngineLocked(store);
  if (engine == nullptr) return Status::NotFound("no store " + store);
  std::string out;
  int64_t count = 0;
  std::string body;
  engine->ForEach([&](Slice key, Slice value) {
    // A partition "covers" every key whose N-wide preference list contains
    // it, not just the keys it masters: the owner of a replica partition
    // holds replica copies, and a bulk copy that moved only master keys
    // would strand those replicas on the old owner (quorum reads over the
    // new ring would then miss acked values).
    const std::vector<int> preference = routing->PartitionList(key);
    if (std::find(preference.begin(), preference.end(),
                  static_cast<int>(partition)) != preference.end()) {
      PutLengthPrefixed(&body, key);
      PutLengthPrefixed(&body, value);
      ++count;
    }
    return true;
  });
  PutVarint64(&out, static_cast<uint64_t>(count));
  out += body;
  return out;
}

Result<std::string> VoldemortServer::HandlePutRaw(Slice request) {
  // Request: store, count, then (key, encoded versioned list) pairs. Each
  // incoming version list is merged into the local list entry by entry.
  Slice input = request;
  Slice store_slice;
  uint64_t count;
  if (!GetLengthPrefixed(&input, &store_slice) ||
      !GetVarint64(&input, &count)) {
    return Status::Corruption("bad put-raw request");
  }
  MutexLock lock(&mu_);
  storage::StorageEngine* engine = GetEngineLocked(store_slice.ToString());
  if (engine == nullptr) return Status::NotFound("no store");
  for (uint64_t i = 0; i < count; ++i) {
    Slice key, value;
    if (!GetLengthPrefixed(&input, &key) ||
        !GetLengthPrefixed(&input, &value)) {
      return Status::Corruption("truncated put-raw entry");
    }
    auto incoming = DecodeVersionedList(value);
    if (!incoming.ok()) return incoming.status();
    std::vector<Versioned> list;
    std::string existing;
    if (engine->Get(key, &existing).ok()) {
      auto decoded = DecodeVersionedList(existing);
      if (!decoded.ok()) return decoded.status();
      list = std::move(decoded.value());
    }
    for (Versioned& v : incoming.value()) {
      // discard-ok: InsertVersioned only fails with ObsoleteVersion and
      // leaves the list unchanged — an obsolete incoming entry during a
      // raw merge just means the local replica already dominates it.
      (void)InsertVersioned(&list, std::move(v));
    }
    std::string encoded;
    EncodeVersionedList(list, &encoded);
    // Rebalancing trusts this "ok" to mean the entry is on the new owner;
    // a dropped Put here would silently lose the moved keys.
    Status put = engine->Put(key, encoded);
    if (!put.ok()) return put;
  }
  return std::string("ok");
}

Result<std::string> VoldemortServer::HandleReadOnlyGet(Slice request) {
  std::string store, key;
  Status s = DecodeGetRequest(request, &store, &key);
  if (!s.ok()) return s;
  ReadOnlyStore* ro;
  {
    MutexLock lock(&mu_);
    auto it = readonly_stores_.find(store);
    if (it == readonly_stores_.end()) {
      return Status::NotFound("no read-only store " + store);
    }
    ro = it->second.get();
  }
  return ro->Get(key);
}

}  // namespace lidi::voldemort
