#include "voldemort/failure_detector.h"

#include <vector>

namespace lidi::voldemort {

FailureDetector::FailureDetector(FailureDetectorOptions options,
                                 const Clock* clock,
                                 std::function<bool(int)> probe)
    : options_(options), clock_(clock), probe_(std::move(probe)) {}

void FailureDetector::MaybeRollWindowLocked(NodeState* state, int64_t now) {
  if (now - state->window_start_millis >= options_.window_millis) {
    state->successes = 0;
    state->failures = 0;
    state->window_start_millis = now;
  }
}

void FailureDetector::RecordSuccess(int node_id) {
  MutexLock lock(&mu_);
  NodeState& state = nodes_[node_id];
  MaybeRollWindowLocked(&state, clock_->NowMillis());
  state.successes++;
  // A success from the node proves it reachable again.
  state.banned = false;
}

void FailureDetector::RecordFailure(int node_id) {
  MutexLock lock(&mu_);
  const int64_t now = clock_->NowMillis();
  NodeState& state = nodes_[node_id];
  MaybeRollWindowLocked(&state, now);
  state.failures++;
  const int64_t total = state.successes + state.failures;
  if (total >= options_.minimum_requests && !state.banned) {
    const double ratio =
        static_cast<double>(state.successes) / static_cast<double>(total);
    if (ratio < options_.threshold) {
      state.banned = true;
      state.banned_at_millis = now;
    }
  }
}

bool FailureDetector::IsAvailable(int node_id) {
  std::function<bool(int)> probe;
  {
    MutexLock lock(&mu_);
    auto it = nodes_.find(node_id);
    if (it == nodes_.end() || !it->second.banned) return true;
    const int64_t now = clock_->NowMillis();
    if (now - it->second.banned_at_millis < options_.ban_millis) return false;
    // Ban interval elapsed: let the "async recovery thread" probe it.
    it->second.banned_at_millis = now;  // rate-limit repeated probes
    probe = probe_;
  }
  const bool reachable = probe ? probe(node_id) : true;
  if (reachable) {
    MutexLock lock(&mu_);
    NodeState& state = nodes_[node_id];
    state.banned = false;
    state.successes = 0;
    state.failures = 0;
    state.window_start_millis = clock_->NowMillis();
  }
  return reachable;
}

int FailureDetector::ProbeBannedNow() {
  std::function<bool(int)> probe;
  std::vector<int> banned;
  {
    MutexLock lock(&mu_);
    probe = probe_;
    for (const auto& [id, state] : nodes_) {
      if (state.banned) banned.push_back(id);
    }
  }
  if (banned.empty()) return 0;
  int restored = 0;
  for (int node_id : banned) {
    const bool reachable = probe ? probe(node_id) : true;
    if (!reachable) continue;
    MutexLock lock(&mu_);
    NodeState& state = nodes_[node_id];
    if (!state.banned) continue;  // restored concurrently
    state.banned = false;
    state.successes = 0;
    state.failures = 0;
    state.window_start_millis = clock_->NowMillis();
    ++restored;
  }
  return restored;
}

int FailureDetector::UnavailableCount() {
  MutexLock lock(&mu_);
  int count = 0;
  for (const auto& [id, state] : nodes_) {
    if (state.banned) ++count;
  }
  return count;
}

}  // namespace lidi::voldemort
