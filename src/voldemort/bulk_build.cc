#include "voldemort/bulk_build.h"

#include <algorithm>
#include <cstring>

#include "common/coding.h"
#include "common/hash.h"
#include "voldemort/routing.h"

namespace lidi::voldemort {

BulkBuildResult BulkBuild(const std::map<std::string, std::string>& records,
                          const Cluster& cluster, int replication_factor) {
  auto routing = NewConsistentRoutingStrategy(&cluster, replication_factor);

  // Phase (a), "map": route each record to its replica nodes.
  struct Entry {
    std::array<uint8_t, 16> digest;
    const std::string* key;
    const std::string* value;
  };
  std::map<int, std::vector<Entry>> per_node;
  int64_t total = 0;
  for (const auto& [key, value] : records) {
    ++total;
    for (int node : routing->RouteRequest(key)) {
      per_node[node].push_back(Entry{Md5(key), &key, &value});
    }
  }

  // Phase (a), "reduce": per node, sort by MD5 (Hadoop sorts in reducers)
  // and emit the data + index files.
  BulkBuildResult result;
  result.total_records = total;
  for (auto& [node, entries] : per_node) {
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                return memcmp(a.digest.data(), b.digest.data(), 16) < 0;
              });
    ReadOnlyFiles files;
    for (const Entry& e : entries) {
      const uint64_t offset = files.data.size();
      PutLengthPrefixed(&files.data, *e.key);
      PutLengthPrefixed(&files.data, *e.value);
      files.index.append(reinterpret_cast<const char*>(e.digest.data()), 16);
      PutFixed64(&files.index, offset);
    }
    result.files_per_node[node] = std::move(files);
  }
  return result;
}

void BulkFileRepository::Publish(const std::string& store, int64_t version,
                                 BulkBuildResult result) {
  builds_[{store, version}] = std::move(result);
}

Result<ReadOnlyFiles> BulkFileRepository::Fetch(const std::string& store,
                                                int64_t version,
                                                int node_id) const {
  auto it = builds_.find({store, version});
  if (it == builds_.end()) {
    return Status::NotFound("no build for " + store + " v" +
                            std::to_string(version));
  }
  auto nit = it->second.files_per_node.find(node_id);
  if (nit == it->second.files_per_node.end()) {
    // A node may legitimately own no data for a tiny store.
    return ReadOnlyFiles{};
  }
  return nit->second;
}

namespace {

/// Copies `src` in throttle-sized chunks, reporting progress.
void ThrottledCopy(const std::string& src, std::string* dst,
                   const PullOptions& options, int64_t* bytes_so_far) {
  size_t copied = 0;
  while (copied < src.size()) {
    const size_t chunk = std::min<size_t>(
        static_cast<size_t>(options.throttle_chunk_bytes),
        src.size() - copied);
    dst->append(src, copied, chunk);
    copied += chunk;
    *bytes_so_far += static_cast<int64_t>(chunk);
    if (options.throttle_callback) options.throttle_callback(*bytes_so_far);
  }
}

}  // namespace

Status ReadOnlyController::Pull(const std::string& store, int64_t version,
                                const PullOptions& options) {
  int64_t bytes = 0;
  for (VoldemortServer* server : servers_) {
    auto files = repository_->Fetch(store, version, server->node_id());
    if (!files.ok()) return files.status();
    ReadOnlyStore* ro = server->GetReadOnlyStore(store);
    if (ro == nullptr) {
      return Status::NotFound("node " + std::to_string(server->node_id()) +
                              " lacks read-only store " + store);
    }
    // Data files first, index files last (cache locality post-swap).
    ReadOnlyFiles staged;
    ThrottledCopy(files.value().data, &staged.data, options, &bytes);
    ThrottledCopy(files.value().index, &staged.index, options, &bytes);
    Status s = ro->AddVersion(version, std::move(staged));
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status ReadOnlyController::SwapAll(const std::string& store, int64_t version) {
  std::vector<VoldemortServer*> swapped;
  for (VoldemortServer* server : servers_) {
    ReadOnlyStore* ro = server->GetReadOnlyStore(store);
    if (ro == nullptr) return Status::NotFound("missing read-only store");
    Status s = ro->Swap(version);
    if (!s.ok()) {
      // Co-ordinated atomicity: undo the nodes already swapped.
      for (VoldemortServer* done : swapped) {
        // discard-ok: best-effort compensation while already failing the
        // swap; the primary error (returned below) outranks rollback noise.
        (void)done->GetReadOnlyStore(store)->Rollback();
      }
      return s;
    }
    swapped.push_back(server);
  }
  return Status::OK();
}

Status ReadOnlyController::RollbackAll(const std::string& store) {
  for (VoldemortServer* server : servers_) {
    ReadOnlyStore* ro = server->GetReadOnlyStore(store);
    if (ro == nullptr) return Status::NotFound("missing read-only store");
    Status s = ro->Rollback();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace lidi::voldemort
