#include "net/address.h"
#include "voldemort/client.h"

#include <algorithm>
#include <set>

#include "common/coding.h"
#include "voldemort/routing.h"
#include "voldemort/server.h"

namespace lidi::voldemort {

StoreClient::StoreClient(std::string client_name, StoreDefinition store_def,
                         std::shared_ptr<ClusterMetadata> metadata,
                         net::Transport* network, const Clock* clock,
                         ClientOptions options)
    : name_(std::move(client_name)),
      def_(std::move(store_def)),
      metadata_(std::move(metadata)),
      network_(network),
      options_(options),
      metrics_(network->metrics()),
      read_repairs_(metrics_->GetCounter("voldemort.read_repairs",
                                         {{"client", name_}})),
      read_repair_failures_(metrics_->GetCounter(
          "voldemort.read_repair_failures", {{"client", name_}})),
      hinted_handoffs_(metrics_->GetCounter("voldemort.hinted_handoffs",
                                            {{"client", name_}})),
      get_micros_(metrics_->GetHistogram("voldemort.op_micros",
                                         {{"op", "get"}})),
      put_micros_(metrics_->GetHistogram("voldemort.op_micros",
                                         {{"op", "put"}})),
      detector_(options.failure_detector, clock, [this](int node_id) {
        return network_
            ->Call(name_, net::MakeAddress(net::Tier::kVoldemort, node_id), "v.ping", "")
            .ok();
      }) {}

std::vector<int> StoreClient::PreferenceList(Slice key) {
  const Cluster cluster = metadata_->SnapshotCluster();
  const int zones = std::max(def_.zone_count_reads, def_.zone_count_writes);
  auto routing =
      zones > 0
          ? NewZoneAwareRoutingStrategy(&cluster, def_.replication_factor,
                                        zones)
          : NewConsistentRoutingStrategy(&cluster, def_.replication_factor);
  std::vector<int> preference = routing->RouteRequest(key);
  if (options_.client_zone >= 0) {
    // Zone affinity: stable-sort replicas by distance from the client's
    // zone, per the zone's proximity list (own zone = distance 0; zones
    // absent from the list sort last). Stable keeps ring order within a
    // distance class, preserving coordinator determinism per zone.
    const std::vector<Zone>& zone_defs = cluster.zones();
    auto distance = [&](int node_id) {
      const Node* node = cluster.GetNode(node_id);
      if (node == nullptr) return 1 << 20;
      if (node->zone_id == options_.client_zone) return 0;
      for (const Zone& z : zone_defs) {
        if (z.id != options_.client_zone) continue;
        for (size_t i = 0; i < z.proximity_list.size(); ++i) {
          if (z.proximity_list[i] == node->zone_id) {
            return static_cast<int>(i) + 1;
          }
        }
      }
      return 1 << 19;  // unknown zone: after everything listed
    };
    std::stable_sort(preference.begin(), preference.end(),
                     [&](int a, int b) { return distance(a) < distance(b); });
  }
  return preference;
}

Result<std::vector<Versioned>> StoreClient::Get(Slice key) {
  return Get(key, Transform{});
}

Result<std::vector<Versioned>> StoreClient::Get(Slice key,
                                                const Transform& transform) {
  obs::ScopedSpan span(metrics_, "voldemort.get");
  const int64_t start = metrics_->clock()->NowMicros();
  auto result = GetInternal(key, transform, &span.context());
  span.set_outcome(result.status());
  get_micros_->Record(metrics_->clock()->NowMicros() - start);
  return result;
}

Result<std::vector<Versioned>> StoreClient::GetInternal(
    Slice key, const Transform& transform, obs::TraceContext* trace) {
  const std::vector<int> preference = PreferenceList(key);
  std::string request;
  EncodeGetRequest(def_.name, key, &request);
  if (transform.type != Transform::Type::kNone) {
    transform.EncodeTo(&request);
  }
  const std::string method = transform.type == Transform::Type::kNone
                                 ? "v.get"
                                 : "v.get-transform";

  std::vector<std::pair<int, std::vector<Versioned>>> responses;
  int successes = 0;
  bool saw_overload = false;
  for (int node : preference) {
    if (successes >= def_.required_reads) break;
    if (!detector_.IsAvailable(node)) continue;
    // Per-replica attempt span: each Call is recorded under this
    // operation's root span.
    auto r = network_->Call(name_, net::MakeAddress(net::Tier::kVoldemort, node), method, request,
                            net::CallOptions{trace});
    if (r.ok()) {
      auto list = DecodeVersionedList(r.value());
      if (!list.ok()) return list.status();
      detector_.RecordSuccess(node);
      responses.emplace_back(node, std::move(list.value()));
      ++successes;
    } else if (r.status().IsNotFound()) {
      // The node answered: the key is absent there.
      detector_.RecordSuccess(node);
      responses.emplace_back(node, std::vector<Versioned>{});
      ++successes;
    } else if (r.status().IsOverloaded()) {
      // The node is alive — it shed the request (quota or queue bound).
      // Not a failure-detector event: marking it down would route every
      // subsequent request away from a healthy node and turn a throttle
      // into a phantom outage.
      saw_overload = true;
    } else {
      detector_.RecordFailure(node);
    }
  }
  if (successes < def_.required_reads) {
    if (saw_overload) {
      return Status::Overloaded(
          "R=" + std::to_string(def_.required_reads) +
          " quorum unmet: replica shed the read (quota/queue)");
    }
    return Status::InsufficientNodes(
        "got " + std::to_string(successes) + " of R=" +
        std::to_string(def_.required_reads) + " responses");
  }

  std::vector<Versioned> all;
  for (const auto& [node, list] : responses) {
    all.insert(all.end(), list.begin(), list.end());
  }
  std::vector<Versioned> resolved = ResolveConcurrent(std::move(all));
  if (options_.enable_read_repair &&
      transform.type == Transform::Type::kNone) {
    ReadRepair(key, resolved, responses, trace);
  }
  if (resolved.empty()) return Status::NotFound();
  return resolved;
}

void StoreClient::ReadRepair(
    Slice key, const std::vector<Versioned>& resolved,
    const std::vector<std::pair<int, std::vector<Versioned>>>& node_responses,
    obs::TraceContext* trace) {
  // Paper II.B: "Read repair detects inconsistencies during gets." Any node
  // whose response lacks a resolved version gets that version written back.
  for (const auto& [node, list] : node_responses) {
    for (const Versioned& v : resolved) {
      bool has = false;
      for (const Versioned& existing : list) {
        const Occurred o = existing.version.Compare(v.version);
        if (o == Occurred::kEqual || o == Occurred::kAfter) {
          has = true;
          break;
        }
      }
      if (has) continue;
      std::string put_request;
      EncodePutRequest(def_.name, key, v, Transform{}, &put_request);
      auto r = network_->Call(name_, net::MakeAddress(net::Tier::kVoldemort, node), "v.put",
                              put_request, net::CallOptions{trace});
      if (r.ok()) {
        read_repairs_->Increment();
        detector_.RecordSuccess(node);
      } else if (r.status().IsObsoleteVersion() || r.status().IsOverloaded()) {
        // The replica answered: it already holds a newer version, or it shed
        // the repair under load. Alive either way — not a detector event,
        // and not a completed repair.
        read_repair_failures_->Increment();
      } else {
        // The repair write never landed. Counting it as done would hide the
        // stale replica, and a dead node must feed the failure detector just
        // like any other failed call.
        read_repair_failures_->Increment();
        detector_.RecordFailure(node);
      }
    }
  }
}

Status StoreClient::Put(Slice key, const Versioned& versioned) {
  return PutEncoded(key, versioned, Transform{});
}

Status StoreClient::PutEncoded(Slice key, const Versioned& versioned,
                               const Transform& transform) {
  obs::ScopedSpan span(metrics_, "voldemort.put");
  const int64_t start = metrics_->clock()->NowMicros();
  Status s = PutEncodedInternal(key, versioned, transform, &span.context());
  span.set_outcome(s);
  put_micros_->Record(metrics_->clock()->NowMicros() - start);
  return s;
}

Status StoreClient::PutEncodedInternal(Slice key, const Versioned& versioned,
                                       const Transform& transform,
                                       obs::TraceContext* trace) {
  const std::vector<int> preference = PreferenceList(key);
  if (preference.empty()) return Status::InsufficientNodes("no replicas");

  // The coordinator is the first available node; the write's vector clock is
  // incremented at the coordinator, producing a version that descends from
  // the one the caller read.
  Versioned write = versioned;
  int coordinator = -1;
  for (int node : preference) {
    if (detector_.IsAvailable(node)) {
      coordinator = node;
      break;
    }
  }
  if (coordinator < 0) return Status::InsufficientNodes("no available node");
  write.version.Increment(coordinator);

  std::string coord_request;
  EncodePutRequest(def_.name, key, write, transform, &coord_request);

  int successes = 0;
  std::set<int> satisfied_zones;
  std::vector<int> failed_nodes;
  std::string replicate_request;  // what non-coordinator replicas receive

  // Coordinator first: for transformed puts its response carries the final
  // value bytes, which the client then replicates verbatim.
  auto cr = network_->Call(name_, net::MakeAddress(net::Tier::kVoldemort, coordinator), "v.put",
                           coord_request, net::CallOptions{trace});
  if (cr.ok()) {
    detector_.RecordSuccess(coordinator);
    ++successes;
    if (const Node* n = metadata_->GetNodeUnsafe(coordinator)) {
      satisfied_zones.insert(n->zone_id);
    }
    Versioned replicated{write.version, cr.value()};
    EncodePutRequest(def_.name, key, replicated, Transform{},
                     &replicate_request);
  } else if (cr.status().IsObsoleteVersion()) {
    return cr.status();
  } else if (cr.status().IsOverloaded()) {
    // The coordinator shed the write (quota or queue bound). It is alive
    // and applied nothing, so aborting is safe and the typed error must
    // survive to the caller — Overloaded means "back off and retry", not
    // "the node is down" (and must not poison the failure detector).
    return cr.status();
  } else {
    // The coordinator could not apply the write. Abort instead of writing
    // the coordinator-attributed clock to other replicas: a clock entry
    // {coordinator: n} may exist only if the coordinator itself applied it,
    // otherwise a retry through a stale read could mint a *different* value
    // under an identical clock (undetectable divergence).
    detector_.RecordFailure(coordinator);
    return Status::Unavailable("coordinator " + std::to_string(coordinator) +
                               " unreachable: " + cr.status().message());
  }

  for (int node : preference) {
    if (node == coordinator) continue;
    if (!detector_.IsAvailable(node)) {
      failed_nodes.push_back(node);
      continue;
    }
    auto r = network_->Call(name_, net::MakeAddress(net::Tier::kVoldemort, node), "v.put",
                            replicate_request, net::CallOptions{trace});
    if (r.ok()) {
      detector_.RecordSuccess(node);
      ++successes;
      if (const Node* n = metadata_->GetNodeUnsafe(node)) {
        satisfied_zones.insert(n->zone_id);
      }
    } else if (r.status().IsObsoleteVersion()) {
      // Another writer won the race at this replica.
      return r.status();
    } else if (r.status().IsOverloaded()) {
      // Alive but shedding: no failure-detector event. The replica missed
      // the write, so hinted handoff may still repair it below.
      failed_nodes.push_back(node);
    } else {
      detector_.RecordFailure(node);
      failed_nodes.push_back(node);
    }
  }

  if (options_.enable_hinted_handoff && !failed_nodes.empty()) {
    HintedHandoff(failed_nodes, preference, replicate_request, trace);
  }
  if (successes < def_.required_writes) {
    return Status::InsufficientNodes(
        "got " + std::to_string(successes) + " of W=" +
        std::to_string(def_.required_writes) + " acks");
  }
  if (def_.zone_count_writes > 0 &&
      static_cast<int>(satisfied_zones.size()) < def_.zone_count_writes) {
    return Status::InsufficientNodes("zone count not satisfied");
  }
  return Status::OK();
}

void StoreClient::HintedHandoff(const std::vector<int>& failed_nodes,
                                const std::vector<int>& preference,
                                Slice put_request, obs::TraceContext* trace) {
  // Paper II.B: "hinted handoff is triggered during puts". For every failed
  // replica, park the write (with its destination) on a healthy node outside
  // the preference list; v.push-slops later delivers it.
  std::vector<int> candidates;
  for (const Node& n : metadata_->nodes()) {
    if (std::find(preference.begin(), preference.end(), n.id) ==
        preference.end()) {
      candidates.push_back(n.id);
    }
  }
  size_t next = 0;
  for (int failed : failed_nodes) {
    std::string slop;
    EncodeSlopRequest(failed, put_request, &slop);
    for (size_t attempts = 0; attempts < candidates.size(); ++attempts) {
      const int host = candidates[next % candidates.size()];
      ++next;
      if (!detector_.IsAvailable(host)) continue;
      if (network_
              ->Call(name_, net::MakeAddress(net::Tier::kVoldemort, host), "v.slop", slop,
                     net::CallOptions{trace})
              .ok()) {
        hinted_handoffs_->Increment();
        break;
      }
    }
  }
}

Status StoreClient::Put(Slice key, const VectorClock& clock,
                        const Transform& transform) {
  return PutEncoded(key, Versioned{clock, ""}, transform);
}

Status StoreClient::PutValue(Slice key, Slice value) {
  VectorClock clock;
  auto current = Get(key);
  if (current.ok()) {
    for (const Versioned& v : current.value()) {
      clock = clock.Merge(v.version);
    }
  } else if (!current.status().IsNotFound()) {
    return current.status();
  }
  return Put(key, Versioned{clock, value.ToString()});
}

Status StoreClient::Delete(Slice key, const VectorClock& clock) {
  const std::vector<int> preference = PreferenceList(key);
  std::string request;
  EncodeDeleteRequest(def_.name, key, clock, &request);
  int successes = 0;
  for (int node : preference) {
    if (!detector_.IsAvailable(node)) continue;
    auto r = network_->Call(name_, net::MakeAddress(net::Tier::kVoldemort, node), "v.delete", request);
    if (r.ok()) {
      detector_.RecordSuccess(node);
      ++successes;
    } else {
      detector_.RecordFailure(node);
    }
  }
  if (successes < def_.required_writes) {
    return Status::InsufficientNodes("delete quorum not met");
  }
  return Status::OK();
}

Status StoreClient::ApplyUpdate(Slice key, const UpdateAction& action,
                                int max_retries) {
  // Paper II.B: two concurrent updates to the same key fail one client with
  // an ObsoleteVersion error; the retry logic lives here so callers get
  // "read, modify, write if no change" loops (e.g. counters) for free.
  Status last = Status::Internal("applyUpdate never ran");
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    std::vector<Versioned> current;
    auto r = Get(key);
    if (r.ok()) {
      current = std::move(r.value());
    } else if (!r.status().IsNotFound()) {
      last = r.status();
      continue;
    }
    VectorClock clock;
    for (const Versioned& v : current) clock = clock.Merge(v.version);
    const std::string new_value = action(current);
    last = Put(key, Versioned{clock, new_value});
    if (last.ok() || !last.IsObsoleteVersion()) return last;
  }
  return last;
}

Result<std::string> StoreClient::ReadOnlyGet(Slice key) {
  const std::vector<int> preference = PreferenceList(key);
  std::string request;
  EncodeGetRequest(def_.name, key, &request);
  Status last = Status::InsufficientNodes("no nodes");
  for (int node : preference) {
    if (!detector_.IsAvailable(node)) continue;
    auto r = network_->Call(name_, net::MakeAddress(net::Tier::kVoldemort, node), "ro.get", request);
    if (r.ok()) {
      detector_.RecordSuccess(node);
      return r.value();
    }
    if (r.status().IsNotFound()) {
      detector_.RecordSuccess(node);
      return r.status();
    }
    detector_.RecordFailure(node);
    last = r.status();
  }
  return last;
}

Result<std::string> ThinClient::CallAny(const std::string& method,
                                        Slice request) {
  Status last = Status::InsufficientNodes("no nodes configured");
  for (size_t attempt = 0; attempt < nodes_.size(); ++attempt) {
    const net::Address& node = nodes_[next_node_++ % nodes_.size()];
    auto r = network_->Call(name_, node, method, request);
    if (r.ok()) return r;
    // Coordinator-reported data conditions must surface, not fail over:
    // another node would just repeat them.
    if (r.status().IsNotFound() || r.status().IsObsoleteVersion()) {
      return r.status();
    }
    last = r.status();
  }
  return last;
}

Result<std::vector<Versioned>> ThinClient::Get(Slice key) {
  std::string request;
  EncodeGetRequest(store_, key, &request);
  auto r = CallAny("vr.get", request);
  if (!r.ok()) return r.status();
  return DecodeVersionedList(r.value());
}

Status ThinClient::Put(Slice key, const Versioned& versioned) {
  std::string request;
  EncodePutRequest(store_, key, versioned, Transform{}, &request);
  return CallAny("vr.put", request).status();
}

Status ThinClient::Delete(Slice key, const VectorClock& clock) {
  std::string request;
  EncodeDeleteRequest(store_, key, clock, &request);
  return CallAny("vr.delete", request).status();
}

}  // namespace lidi::voldemort
