#include "voldemort/vector_clock.h"

#include <algorithm>

#include "common/coding.h"

namespace lidi::voldemort {

void VectorClock::Increment(int node_id) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), node_id,
      [](const auto& e, int id) { return e.first < id; });
  if (it != entries_.end() && it->first == node_id) {
    it->second++;
  } else {
    entries_.insert(it, {node_id, 1});
  }
}

int64_t VectorClock::CounterOf(int node_id) const {
  for (const auto& [id, counter] : entries_) {
    if (id == node_id) return counter;
  }
  return 0;
}

Occurred VectorClock::Compare(const VectorClock& other) const {
  bool this_bigger = false;
  bool other_bigger = false;
  size_t i = 0, j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    if (i >= entries_.size()) {
      other_bigger = true;
      ++j;
    } else if (j >= other.entries_.size()) {
      this_bigger = true;
      ++i;
    } else if (entries_[i].first < other.entries_[j].first) {
      this_bigger = true;
      ++i;
    } else if (entries_[i].first > other.entries_[j].first) {
      other_bigger = true;
      ++j;
    } else {
      if (entries_[i].second > other.entries_[j].second) this_bigger = true;
      if (entries_[i].second < other.entries_[j].second) other_bigger = true;
      ++i;
      ++j;
    }
  }
  if (this_bigger && other_bigger) return Occurred::kConcurrently;
  if (this_bigger) return Occurred::kAfter;
  if (other_bigger) return Occurred::kBefore;
  return Occurred::kEqual;
}

VectorClock VectorClock::Merge(const VectorClock& other) const {
  VectorClock out;
  size_t i = 0, j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    if (j >= other.entries_.size() ||
        (i < entries_.size() && entries_[i].first < other.entries_[j].first)) {
      out.entries_.push_back(entries_[i++]);
    } else if (i >= entries_.size() ||
               entries_[i].first > other.entries_[j].first) {
      out.entries_.push_back(other.entries_[j++]);
    } else {
      out.entries_.push_back(
          {entries_[i].first,
           std::max(entries_[i].second, other.entries_[j].second)});
      ++i;
      ++j;
    }
  }
  return out;
}

void VectorClock::EncodeTo(std::string* out) const {
  PutVarint64(out, entries_.size());
  for (const auto& [id, counter] : entries_) {
    PutVarint64(out, static_cast<uint64_t>(id));
    PutVarint64(out, static_cast<uint64_t>(counter));
  }
}

Result<VectorClock> VectorClock::DecodeFrom(Slice* input) {
  uint64_t count;
  if (!GetVarint64(input, &count)) {
    return Status::Corruption("truncated vector clock");
  }
  VectorClock clock;
  clock.entries_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id, counter;
    if (!GetVarint64(input, &id) || !GetVarint64(input, &counter)) {
      return Status::Corruption("truncated vector clock entry");
    }
    clock.entries_.emplace_back(static_cast<int>(id),
                                static_cast<int64_t>(counter));
  }
  return clock;
}

std::string VectorClock::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i) out += ", ";
    out += std::to_string(entries_[i].first) + ":" +
           std::to_string(entries_[i].second);
  }
  return out + "}";
}

void EncodeVersionedList(const std::vector<Versioned>& list, std::string* out) {
  PutVarint64(out, list.size());
  for (const Versioned& v : list) {
    v.version.EncodeTo(out);
    PutLengthPrefixed(out, v.value);
  }
}

Result<std::vector<Versioned>> DecodeVersionedList(Slice input) {
  uint64_t count;
  if (!GetVarint64(&input, &count)) {
    return Status::Corruption("truncated versioned list");
  }
  std::vector<Versioned> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    auto clock = VectorClock::DecodeFrom(&input);
    if (!clock.ok()) return clock.status();
    Slice value;
    if (!GetLengthPrefixed(&input, &value)) {
      return Status::Corruption("truncated versioned value");
    }
    out.push_back({std::move(clock.value()), value.ToString()});
  }
  return out;
}

Status InsertVersioned(std::vector<Versioned>* list, Versioned candidate) {
  for (const Versioned& existing : *list) {
    const Occurred o = candidate.version.Compare(existing.version);
    if (o == Occurred::kBefore || o == Occurred::kEqual) {
      return Status::ObsoleteVersion("a newer or equal version exists");
    }
  }
  // Candidate is after or concurrent with everything: drop dominated entries.
  list->erase(std::remove_if(list->begin(), list->end(),
                             [&candidate](const Versioned& existing) {
                               return candidate.version.Compare(
                                          existing.version) == Occurred::kAfter;
                             }),
              list->end());
  list->push_back(std::move(candidate));
  return Status::OK();
}

std::vector<Versioned> ResolveConcurrent(std::vector<Versioned> all) {
  std::vector<Versioned> out;
  for (Versioned& candidate : all) {
    bool dominated_or_duplicate = false;
    for (const Versioned& kept : out) {
      const Occurred o = candidate.version.Compare(kept.version);
      if (o == Occurred::kBefore || o == Occurred::kEqual) {
        dominated_or_duplicate = true;
        break;
      }
    }
    if (dominated_or_duplicate) continue;
    out.erase(std::remove_if(out.begin(), out.end(),
                             [&candidate](const Versioned& kept) {
                               return candidate.version.Compare(kept.version) ==
                                      Occurred::kAfter;
                             }),
              out.end());
    out.push_back(std::move(candidate));
  }
  return out;
}

}  // namespace lidi::voldemort
