#include "voldemort/rebalance.h"

#include <algorithm>
#include <map>

#include "common/coding.h"
#include "net/address.h"

namespace lidi::voldemort {

std::vector<RebalanceMove> PlanRebalance(const Cluster& cluster) {
  std::vector<RebalanceMove> plan;
  const auto& nodes = cluster.nodes();
  if (nodes.size() < 2 || cluster.num_partitions() == 0) return plan;

  // Working copies the greedy loop mutates as it "applies" each move.
  std::map<int, int> count;       // node id -> partitions owned
  std::map<int, int> zone_of;     // node id -> zone
  std::map<int, int> zone_count;  // zone id -> partitions in zone
  std::map<int, std::vector<int>> owned;  // node id -> partitions, ring order
  for (const Node& n : nodes) {
    count[n.id] = 0;
    zone_of[n.id] = n.zone_id;
    zone_count[n.zone_id];  // ensure the zone exists even if empty
  }
  for (int p = 0; p < cluster.num_partitions(); ++p) {
    const int owner = cluster.OwnerOfPartition(p);
    ++count[owner];
    ++zone_count[zone_of[owner]];
    owned[owner].push_back(p);
  }

  for (;;) {
    // Source: most-loaded node; ties toward the most-loaded zone then the
    // lower id, so the plan is deterministic across metadata holders.
    int src = -1, dst = -1;
    for (const auto& [id, c] : count) {
      if (src == -1 || c > count[src] ||
          (c == count[src] &&
           zone_count[zone_of[id]] > zone_count[zone_of[src]])) {
        src = id;
      }
    }
    // Destination: least-loaded node; ties toward the zone holding the
    // fewest partitions (zone-aware spread), then the lower id.
    for (const auto& [id, c] : count) {
      if (dst == -1 || c < count[dst] ||
          (c == count[dst] &&
           zone_count[zone_of[id]] < zone_count[zone_of[dst]])) {
        dst = id;
      }
    }
    if (src == dst || count[src] - count[dst] <= 1) break;
    // Move the source's highest-numbered partition: deterministic, and it
    // peels recently-assigned partitions first.
    std::vector<int>& src_owned = owned[src];
    const int partition = src_owned.back();
    src_owned.pop_back();
    owned[dst].push_back(partition);
    --count[src];
    ++count[dst];
    --zone_count[zone_of[src]];
    ++zone_count[zone_of[dst]];
    plan.push_back(RebalanceMove{partition, src, dst});
  }
  return plan;
}

RebalanceExecutor::RebalanceExecutor(std::string store,
                                     std::shared_ptr<ClusterMetadata> metadata,
                                     net::Transport* network,
                                     RebalanceExecutorOptions options)
    : store_(std::move(store)),
      metadata_(std::move(metadata)),
      network_(network),
      options_(options),
      name_("voldemort-rebalancer") {}

bool RebalanceExecutor::Step() {
  switch (phase_) {
    case Phase::kIdle: {
      // Re-plan from the live metadata every time a migration is picked:
      // the topology may have grown (AddNode) since the last look, and a
      // stale plan would fight the ring it is supposed to balance.
      const RoutingView view = metadata_->Snapshot();
      const std::vector<RebalanceMove> plan = PlanRebalance(view.cluster);
      for (const RebalanceMove& move : plan) {
        if (view.migrations.count(move.partition) > 0) continue;
        metadata_->StartMigration(move.partition, move.to_node);
        current_ = move;
        consecutive_failures_ = 0;
        phase_ = Phase::kCopy;
        return true;
      }
      return false;
    }
    case Phase::kCopy: {
      const Status copied = CopyOnce();
      if (copied.ok()) {
        consecutive_failures_ = 0;
        phase_ = Phase::kCutover;
      } else {
        FailAttempt();
      }
      return true;
    }
    case Phase::kCutover: {
      const Status cut = CutoverOnce();
      if (cut.ok()) {
        const RebalanceMove done = current_;
        ++moves_completed_;
        phase_ = Phase::kIdle;
        if (cutover_hook_) cutover_hook_(done);
      } else {
        FailAttempt();
      }
      return true;
    }
  }
  return false;
}

void RebalanceExecutor::FailAttempt() {
  ++attempt_failures_total_;
  if (++consecutive_failures_ > options_.max_attempt_failures) {
    // The source (or destination) has been unreachable for the whole retry
    // budget: abandon this migration — the pair-write window closes, no
    // ownership changed — and let a later plan pick the partition up again.
    metadata_->AbortMigration(current_.partition);
    ++moves_aborted_;
    phase_ = Phase::kIdle;
  }
}

Status RebalanceExecutor::CopyOnce() {
  const net::Address from =
      net::MakeAddress(net::Tier::kVoldemort, current_.from_node);
  const net::Address to =
      net::MakeAddress(net::Tier::kVoldemort, current_.to_node);
  // A freshly-added node may not host the store yet; AlreadyExists is the
  // normal case on every retry after the first.
  auto added = network_->Call(name_, to, "admin.add-store", store_);
  if (!added.ok() && added.status().code() != Code::kAlreadyExists) {
    return added.status();
  }
  std::string fetch_request;
  PutLengthPrefixed(&fetch_request, store_);
  PutVarint64(&fetch_request, static_cast<uint64_t>(current_.partition));
  auto image =
      network_->Call(name_, from, "admin.fetch-partition", fetch_request);
  if (!image.ok()) return image.status();
  std::string put_request;
  PutLengthPrefixed(&put_request, store_);
  put_request += image.value();
  return network_->Call(name_, to, "admin.put-raw", put_request).status();
}

Status RebalanceExecutor::CutoverOnce() {
  // Never flip ownership onto a node that cannot answer: clients route to
  // the partition's master first and would see every request fail.
  const net::Address to =
      net::MakeAddress(net::Tier::kVoldemort, current_.to_node);
  auto ping = network_->Call(name_, to, "v.ping", "");
  if (!ping.ok()) return ping.status();
  metadata_->FinishMigration(current_.partition);
  return Status::OK();
}

Status RebalanceExecutor::DriveToCompletion(int max_steps) {
  for (int i = 0; i < max_steps; ++i) {
    if (!Step()) return Status::OK();
  }
  return Status::Unavailable("rebalance did not converge in " +
                             std::to_string(max_steps) + " steps");
}

}  // namespace lidi::voldemort
