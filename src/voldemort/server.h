#ifndef LIDI_VOLDEMORT_SERVER_H_
#define LIDI_VOLDEMORT_SERVER_H_

#include <map>
#include <memory>
#include <string>

#include "common/clock.h"
#include "common/overload.h"
#include "common/sync.h"
#include "net/address.h"
#include "net/transport.h"
#include "storage/engine.h"
#include "voldemort/cluster.h"
#include "voldemort/metadata.h"
#include "voldemort/readonly_store.h"
#include "voldemort/wire.h"

namespace lidi::voldemort {

struct VoldemortServerOptions {
  /// Per-client request-rate quota on the client-facing RPC paths (v.get,
  /// v.put, v.delete and their routed vr.* / -noredirect variants),
  /// token-bucket enforced per caller identity (net::CallerIdentity). An
  /// over-quota request is rejected before any engine work with
  /// Status::Overloaded (DESIGN.md §11). <= 0 disables. Internal traffic —
  /// slops, admin, read-only swaps, pings — is never quota'd: throttling
  /// repair would turn overload into data loss.
  double quota_requests_per_sec = 0;
  /// Bucket capacity in requests (allowed burst above the sustained rate).
  double quota_burst = 16;
  /// TEST-ONLY kill switch for the proxy-pair handoff protocol: when true,
  /// writes to a partition that is migrating away are applied locally only —
  /// never paired to the destination. The rebalance acceptance tests flip
  /// this to prove they have teeth: the same chaos schedule that passes with
  /// pairing on must lose acked writes at the new owner with it off
  /// (ISSUE 10 acceptance criteria). Never set in production paths.
  bool disable_handoff_pairing = false;
  /// Replication factor N of the store definitions this node serves. The
  /// server needs it wherever it reasons about which keys a *partition*
  /// covers: a node holds a key when ANY of the key's N preference-list
  /// partitions lives here, so partition fetches (rebalancing bulk copy),
  /// handoff pair-routing, and slop re-resolution must all walk the full
  /// PartitionList, not just the master partition. Must match the client's
  /// StoreDefinition::replication_factor.
  int replication_factor = 3;
};

/// A Voldemort storage node. Hosts one storage engine per read-write store
/// plus the versioned read-only stores, serves the wire protocol over the
/// simulated network, stores hinted-handoff slops, and runs the admin
/// service (add/delete store, partition fetch for rebalancing) without
/// downtime (paper Section II.B).
///
/// Registered RPC methods: v.get, v.put, v.delete (plus their -noredirect
/// variants, which skip handoff pair-routing), v.slop, v.push-slops,
/// v.ping, ro.get, ro.swap, ro.rollback, admin.add-store, admin.delete-store,
/// admin.fetch-partition, admin.put-raw.
class VoldemortServer {
 public:
  VoldemortServer(int node_id, std::shared_ptr<ClusterMetadata> metadata,
                  net::Transport* network,
                  VoldemortServerOptions options = {});
  ~VoldemortServer();

  VoldemortServer(const VoldemortServer&) = delete;
  VoldemortServer& operator=(const VoldemortServer&) = delete;

  int node_id() const { return node_id_; }
  const net::Address& address() const { return address_; }

  /// Creates a read-write store backed by a fresh log-structured engine.
  Status AddStore(const std::string& name);
  Status DeleteStore(const std::string& name);
  bool HasStore(const std::string& name) const;

  /// Enables server-side routing for a store (paper Figure II.1: the same
  /// routing module can live on either side; "Voldemort supports both server
  /// and client side routing by moving the routing and associated modules").
  /// The node then answers vr.get / vr.put / vr.delete by acting as the
  /// coordinator: it runs the quorum logic against the cluster, so callers
  /// need no topology knowledge at all — any node answers for any key.
  Status EnableServerSideRouting(const StoreDefinition& definition,
                                 const Clock* clock);

  /// Read-only store management (build/pull/swap pipeline, Figure II.3).
  Status AddReadOnlyStore(const std::string& name);
  ReadOnlyStore* GetReadOnlyStore(const std::string& name);

  /// Attempts to deliver all stored slops to their destinations; returns the
  /// number delivered. Normally triggered via the v.push-slops RPC by a
  /// periodic janitor, exposed directly for tests.
  int PushSlops();

  /// Number of slops currently parked on this node.
  int64_t SlopCount() const;

  /// Direct engine access for tests and the rebalance admin path.
  storage::StorageEngine* GetEngine(const std::string& store);

  /// Quota kill switch (the sim harness ends admission pressure before
  /// settling; see PerClientQuota::set_enforcing).
  void SetQuotaEnforcing(bool enforcing) {
    request_quota_.set_enforcing(enforcing);
  }
  int64_t quota_rejects() const { return quota_rejects_->Value(); }

 private:
  /// Admits the ambient caller against the request quota, or returns the
  /// Overloaded rejection the RPC should answer with.
  Status AdmitClient(const char* verb);
  Result<std::string> HandleGet(Slice request, bool allow_redirect);
  Result<std::string> HandleGetTransform(Slice request);
  Result<std::string> HandlePut(Slice request, bool allow_redirect);
  Result<std::string> HandleDelete(Slice request, bool allow_redirect);
  Result<std::string> HandleSlop(Slice request);
  Result<std::string> HandleFetchPartition(Slice request);
  Result<std::string> HandlePutRaw(Slice request);
  Result<std::string> HandleReadOnlyGet(Slice request);

  /// The migrations moving any of `key`'s preference-list partitions away
  /// from this node — from ONE atomic metadata snapshot (topology +
  /// migrations under a single reader acquisition; DESIGN.md §13). A key
  /// lives here when this node owns ANY of its N replica partitions, so a
  /// replica partition mid-handoff pair-routes exactly like the master
  /// partition. Empty when no handoff applies or pairing is disabled by
  /// the test knob.
  std::vector<Migration> HandoffsOf(Slice key) const;

  /// Pair-writes `request` to the migration destination; OK on delivery or
  /// ObsoleteVersion, otherwise the stable mid-migration Unavailable error
  /// (the contract transport_parity_test locks across backends).
  Status ForwardToHandoffPeer(const Migration& migration,
                              const std::string& method, Slice request);

  storage::StorageEngine* GetEngineLocked(const std::string& store)
      LIDI_REQUIRES(mu_);

  const int node_id_;
  const std::shared_ptr<ClusterMetadata> metadata_;
  net::Transport* const network_;
  const net::Address address_;
  const VoldemortServerOptions options_;
  PerClientQuota request_quota_;
  obs::Counter* quota_rejects_;

  /// Guards the store maps. Held across local engine calls (engines have
  /// their own leaf locks) but never across the network: handoff routing is
  /// resolved before it is taken, pair forwards run after it is released,
  /// slop pushes and read-only gets resolve the target under it and call
  /// unlocked. slop_engine_ is unguarded — it is thread-safe and its
  /// pointer is set once in the constructor.
  mutable Mutex mu_{"voldemort.server"};
  std::map<std::string, std::unique_ptr<storage::StorageEngine>> engines_
      LIDI_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<ReadOnlyStore>> readonly_stores_
      LIDI_GUARDED_BY(mu_);
  // tsa-ok: thread-safe engine, pointer set once in the constructor (see
  // the mu_ doc comment above).
  std::unique_ptr<storage::StorageEngine> slop_engine_;
  // Server-side routing: per-store embedded coordinators (see
  // EnableServerSideRouting). Declared as an opaque forward-declared client
  // to keep server.h free of client.h.
  std::map<std::string, std::unique_ptr<class StoreClient>> routed_clients_
      LIDI_GUARDED_BY(mu_);
};

}  // namespace lidi::voldemort

#endif  // LIDI_VOLDEMORT_SERVER_H_
