#ifndef LIDI_VOLDEMORT_ROUTING_H_
#define LIDI_VOLDEMORT_ROUTING_H_

#include <memory>
#include <vector>

#include "common/slice.h"
#include "voldemort/cluster.h"

namespace lidi::voldemort {

/// Pluggable routing module (paper Figure II.1 / Section II.B Routing):
/// maps a key to the ordered preference list of nodes holding its replicas.
class RouteStrategy {
 public:
  virtual ~RouteStrategy() = default;

  /// Master partition for a key: hash modulo the ring size.
  virtual int MasterPartition(Slice key) const = 0;

  /// Partition preference list: the master partition followed by the ring
  /// walk that yields N-1 further partitions on distinct nodes.
  virtual std::vector<int> PartitionList(Slice key) const = 0;

  /// Node preference list (owners of PartitionList, deduplicated, ordered).
  virtual std::vector<int> RouteRequest(Slice key) const = 0;
};

/// Plain consistent-hashing replication: hash the key to a partition, then
/// jump the ring until N-1 other partitions on *different nodes* are found.
/// The non-order-preserving hash prevents hot spots (Section II.B).
std::unique_ptr<RouteStrategy> NewConsistentRoutingStrategy(
    const Cluster* cluster, int replication_factor);

/// Zone-aware variant for multi-datacenter clusters: the ring walk adds the
/// constraint that the replicas span at least `required_zones` zones
/// (Section II.B: "jumps the consistent hash ring with an extra constraint
/// to satisfy number of zones required").
std::unique_ptr<RouteStrategy> NewZoneAwareRoutingStrategy(
    const Cluster* cluster, int replication_factor, int required_zones);

/// Chord-style finger-table lookup baseline for the routing ablation (E3).
/// Voldemort stores full topology on every node for O(1) lookups; Chord
/// resolves a key in O(log N) hops through finger tables (Section II.A).
/// This class simulates the hop sequence so the bench can count hops.
class ChordBaseline {
 public:
  /// num_nodes ring positions spread uniformly over the 64-bit key space.
  explicit ChordBaseline(int num_nodes);

  /// Returns the number of routing hops to resolve `key` starting from
  /// `origin_node` using binary finger tables.
  int LookupHops(Slice key, int origin_node) const;

  int num_nodes() const { return static_cast<int>(node_points_.size()); }

 private:
  /// Successor node index for a hash point.
  int SuccessorOf(uint64_t point) const;

  std::vector<uint64_t> node_points_;  // sorted ring positions
};

}  // namespace lidi::voldemort

#endif  // LIDI_VOLDEMORT_ROUTING_H_
