#ifndef LIDI_VOLDEMORT_READONLY_STORE_H_
#define LIDI_VOLDEMORT_READONLY_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/sync.h"
#include "common/status.h"

namespace lidi::voldemort {

/// The file set for one store version on one node (paper Section II.B,
/// custom read-only storage engine): a compact index file of sorted
/// (MD5(key), offset) entries and a data file the offsets point into.
///
/// Index entry layout: 16-byte MD5 digest, 8-byte little-endian offset.
/// Data record layout: varint key length, key, varint value length, value.
/// Lookups binary-search the index (built by the offline system, which
/// sorts in its reducers) and then read one data record.
struct ReadOnlyFiles {
  std::string index;
  std::string data;

  int64_t entry_count() const {
    return static_cast<int64_t>(index.size()) / 24;
  }
};

/// Searches one file set. Returns NotFound on missing keys; verifies the
/// stored key to guard against MD5 collisions; Corruption on malformed data.
Result<std::string> ReadOnlySearch(const ReadOnlyFiles& files, Slice key);

/// The "new index formats to optimize read-only store performance" the paper
/// lists as future work (II.C): because index entries are sorted *MD5
/// digests* — uniformly distributed by construction — interpolation search
/// over the same file format resolves lookups in O(log log n) probes instead
/// of binary search's O(log n). Same result contract as ReadOnlySearch.
Result<std::string> ReadOnlyInterpolationSearch(const ReadOnlyFiles& files,
                                                Slice key);

/// A node's read-only store: versioned directories of file sets. A new data
/// deployment creates a new versioned directory; the swap phase atomically
/// makes it current; keeping the old versions enables instantaneous
/// rollbacks (Section II.B).
class ReadOnlyStore {
 public:
  /// Installs a fetched file set under `version` (the pull phase target).
  /// AlreadyExists if the version is present.
  Status AddVersion(int64_t version, ReadOnlyFiles files);

  /// Atomically makes `version` current (the swap phase on this node).
  Status Swap(int64_t version);

  /// Reverts to the version that was current before the last swap.
  Status Rollback();

  /// Point lookup against the current version.
  Result<std::string> Get(Slice key) const;

  int64_t current_version() const;
  std::vector<int64_t> versions() const;

  /// Drops all versions older than the current one minus `keep`.
  void RetainVersions(int keep);

  /// The update stream the paper lists as Voldemort future work (II.C:
  /// "an update stream to which consumers can listen"): listeners fire after
  /// every successful Swap or Rollback with the now-current version, letting
  /// caches and downstream services react to data deployments.
  using SwapListener = std::function<void(int64_t new_version)>;
  void AddSwapListener(SwapListener listener);

 private:
  /// Reader/writer lock: lookups (the serving path) take it shared; swaps
  /// and deployments are rare and exclusive. Never held across a swap
  /// listener (Swap/Rollback copy the listener list and fire unlocked).
  mutable SharedMutex mu_{"voldemort.readonly_store"};
  std::map<int64_t, ReadOnlyFiles> versions_ LIDI_GUARDED_BY(mu_);
  int64_t current_ LIDI_GUARDED_BY(mu_) = -1;
  int64_t previous_ LIDI_GUARDED_BY(mu_) = -1;
  std::vector<SwapListener> listeners_ LIDI_GUARDED_BY(mu_);
};

}  // namespace lidi::voldemort

#endif  // LIDI_VOLDEMORT_READONLY_STORE_H_
