#include "voldemort/routing.h"

#include <algorithm>
#include <set>

#include "common/hash.h"

namespace lidi::voldemort {

namespace {

class ConsistentRouting : public RouteStrategy {
 public:
  ConsistentRouting(const Cluster* cluster, int replication_factor,
                    int required_zones)
      : cluster_(cluster),
        replication_factor_(replication_factor),
        required_zones_(required_zones) {}

  int MasterPartition(Slice key) const override {
    return static_cast<int>(Fnv1a64(key) %
                            static_cast<uint64_t>(cluster_->num_partitions()));
  }

  std::vector<int> PartitionList(Slice key) const override {
    const int num_partitions = cluster_->num_partitions();
    const int master = MasterPartition(key);
    std::vector<int> partitions{master};
    std::set<int> used_nodes{cluster_->OwnerOfPartition(master)};
    std::set<int> used_zones;
    if (const Node* n = cluster_->GetNode(cluster_->OwnerOfPartition(master))) {
      used_zones.insert(n->zone_id);
    }

    // Walk the ring: take a partition when its owner is a new node, with the
    // zone-aware constraint that while fewer than required_zones zones are
    // covered, only partitions in *new* zones qualify (when such exist).
    for (int step = 1;
         step < num_partitions &&
         static_cast<int>(partitions.size()) < replication_factor_;
         ++step) {
      const int p = (master + step) % num_partitions;
      const int owner = cluster_->OwnerOfPartition(p);
      if (used_nodes.count(owner) > 0) continue;
      const Node* node = cluster_->GetNode(owner);
      const int zone = node != nullptr ? node->zone_id : 0;
      if (static_cast<int>(used_zones.size()) < required_zones_ &&
          used_zones.count(zone) > 0 && MoreZonesAvailable(used_zones)) {
        continue;  // need replicas in new zones first
      }
      partitions.push_back(p);
      used_nodes.insert(owner);
      used_zones.insert(zone);
    }
    return partitions;
  }

  std::vector<int> RouteRequest(Slice key) const override {
    std::vector<int> nodes;
    for (int p : PartitionList(key)) {
      const int owner = cluster_->OwnerOfPartition(p);
      if (std::find(nodes.begin(), nodes.end(), owner) == nodes.end()) {
        nodes.push_back(owner);
      }
    }
    return nodes;
  }

 private:
  bool MoreZonesAvailable(const std::set<int>& used_zones) const {
    for (const Node& n : cluster_->nodes()) {
      if (used_zones.count(n.zone_id) == 0) return true;
    }
    return false;
  }

  const Cluster* cluster_;
  const int replication_factor_;
  const int required_zones_;
};

}  // namespace

std::unique_ptr<RouteStrategy> NewConsistentRoutingStrategy(
    const Cluster* cluster, int replication_factor) {
  return std::make_unique<ConsistentRouting>(cluster, replication_factor,
                                             /*required_zones=*/0);
}

std::unique_ptr<RouteStrategy> NewZoneAwareRoutingStrategy(
    const Cluster* cluster, int replication_factor, int required_zones) {
  return std::make_unique<ConsistentRouting>(cluster, replication_factor,
                                             required_zones);
}

ChordBaseline::ChordBaseline(int num_nodes) {
  node_points_.reserve(num_nodes);
  // Spread nodes by hashing their ids, as Chord does with SHA-1(ip).
  for (int i = 0; i < num_nodes; ++i) {
    const std::string id = "chord-node-" + std::to_string(i);
    node_points_.push_back(Fnv1a64(id));
  }
  std::sort(node_points_.begin(), node_points_.end());
}

int ChordBaseline::SuccessorOf(uint64_t point) const {
  auto it = std::lower_bound(node_points_.begin(), node_points_.end(), point);
  if (it == node_points_.end()) return 0;  // wrap
  return static_cast<int>(it - node_points_.begin());
}

int ChordBaseline::LookupHops(Slice key, int origin_node) const {
  const uint64_t target = Fnv1a64(key);
  const int home = SuccessorOf(target);
  int current = origin_node;
  int hops = 0;
  // Greedy finger routing: jump to the farthest finger not passing target.
  while (current != home) {
    ++hops;
    const uint64_t cur_point = node_points_[current];
    const uint64_t distance = target - cur_point;  // mod 2^64 ring distance
    int best = -1;
    // Fingers point at successor(cur + 2^k) for k = 63..0.
    for (int k = 63; k >= 0; --k) {
      const uint64_t span = 1ULL << k;
      if (span > distance) continue;  // would overshoot the target
      const int candidate = SuccessorOf(cur_point + span);
      const uint64_t cand_advance = node_points_[candidate] - cur_point;
      if (candidate != current && cand_advance <= distance) {
        best = candidate;
        break;
      }
    }
    if (best < 0) {
      // No finger advances: hand off to immediate successor.
      best = (current + 1) % num_nodes();
    }
    current = best;
    if (hops > 2 * 64) break;  // safety net; cannot happen on a sane ring
  }
  return hops;
}

}  // namespace lidi::voldemort
