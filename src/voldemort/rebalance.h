#ifndef LIDI_VOLDEMORT_REBALANCE_H_
#define LIDI_VOLDEMORT_REBALANCE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/transport.h"
#include "voldemort/cluster.h"
#include "voldemort/metadata.h"

namespace lidi::voldemort {

/// One planned partition movement (ring expansion / rebalancing, paper
/// Section II.B Admin Service).
struct RebalanceMove {
  int partition = -1;
  int from_node = -1;
  int to_node = -1;
};

/// Greedy zone-aware balance plan: moves partitions from the most-loaded
/// nodes to the least-loaded until the per-node spread is within one.
/// Destination ties break toward the zone currently holding the fewest
/// partitions (keeping replicas spread across datacenters as the ring
/// grows), then toward the lower node id — the plan is a pure function of
/// the topology, so every holder of the same metadata computes the same
/// moves. Returns moves in execution order.
std::vector<RebalanceMove> PlanRebalance(const Cluster& cluster);

struct RebalanceExecutorOptions {
  /// Consecutive copy (or cutover-ping) failures tolerated before the
  /// in-flight migration is aborted and re-planned later. Sources crash
  /// mid-copy in the chaos schedules; abort-and-replan keeps the executor
  /// from wedging on a dead node.
  int max_attempt_failures = 8;
};

/// Drives live partition movement for one store: a small state machine
/// stepped externally (the sim event loop, or a production janitor thread),
/// one bounded action per Step so traffic interleaves with every phase.
///
/// Per-migration protocol (DESIGN.md §13):
///   1. StartMigration — from this instant the old owner pair-writes every
///      put/delete to the destination (VoldemortServer::HandoffsOf).
///   2. Copy — bulk admin.fetch-partition from the source, admin.put-raw
///      into the destination. Writes racing the copy are covered by the
///      pair-write channel; the versioned merge in put-raw makes the
///      overlap idempotent.
///   3. Cutover — ping the destination, then FinishMigration: ownership
///      flips atomically in the shared metadata (version bump). There is
///      deliberately NO re-copy at cutover: the pair-write protocol is what
///      guarantees completeness, and the acceptance tests prove it by
///      disabling pairing and watching this same cutover lose writes.
///
/// Not thread-safe: Step/DriveToCompletion must be called from one thread.
class RebalanceExecutor {
 public:
  RebalanceExecutor(std::string store,
                    std::shared_ptr<ClusterMetadata> metadata,
                    net::Transport* network,
                    RebalanceExecutorOptions options = {});

  /// Performs one bounded action (start the next planned migration, one
  /// copy attempt, or one cutover attempt). Returns true while work remains
  /// or is in flight, false when the ring is balanced and idle.
  bool Step();

  /// Steps until balanced or `max_steps` exhausted (Unavailable if still
  /// unfinished — a wedged source that never healed).
  Status DriveToCompletion(int max_steps = 4096);

  /// Invoked immediately after each ownership flip, with the completed
  /// move. The sim's rebalance-aware invariant hooks here: at this instant
  /// every previously-acked write must already be readable at the NEW
  /// owner, before any repair traffic can paper over a handoff hole.
  void SetCutoverHook(std::function<void(const RebalanceMove&)> hook) {
    cutover_hook_ = std::move(hook);
  }

  bool idle() const { return phase_ == Phase::kIdle; }
  /// Partition currently mid-migration, -1 when idle.
  int in_flight_partition() const {
    return phase_ == Phase::kIdle ? -1 : current_.partition;
  }
  int64_t moves_completed() const { return moves_completed_; }
  int64_t moves_aborted() const { return moves_aborted_; }
  int64_t attempt_failures() const { return attempt_failures_total_; }

 private:
  enum class Phase { kIdle, kCopy, kCutover };

  /// One full copy attempt: ensure the store exists at the destination,
  /// fetch the partition image from the source, bulk-merge it into the
  /// destination.
  Status CopyOnce();
  /// One cutover attempt: destination liveness probe, then the flip.
  Status CutoverOnce();
  void FailAttempt();

  const std::string store_;
  const std::shared_ptr<ClusterMetadata> metadata_;
  net::Transport* const network_;
  const RebalanceExecutorOptions options_;
  const std::string name_;  // caller identity for admin RPCs

  Phase phase_ = Phase::kIdle;
  RebalanceMove current_;
  int consecutive_failures_ = 0;
  int64_t moves_completed_ = 0;
  int64_t moves_aborted_ = 0;
  int64_t attempt_failures_total_ = 0;
  std::function<void(const RebalanceMove&)> cutover_hook_;
};

}  // namespace lidi::voldemort

#endif  // LIDI_VOLDEMORT_REBALANCE_H_
