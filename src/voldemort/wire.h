#ifndef LIDI_VOLDEMORT_WIRE_H_
#define LIDI_VOLDEMORT_WIRE_H_

#include <string>
#include <vector>

#include "common/coding.h"
#include "common/slice.h"
#include "common/status.h"
#include "voldemort/vector_clock.h"

namespace lidi::voldemort {

// Unlike the lookup APIs (which return Result<T>), the Encode*/Decode*
// functions below deliberately keep out-parameters: encoders append to a
// caller-owned buffer so multiple fields can be packed into one wire message
// without intermediate allocations, and decoders fill several outputs from a
// single pass over the input. A Result<tuple<...>> here would cost copies on
// the hot path and read worse at the call sites.

/// Server-side transforms (paper Figure II.2, methods 3 and 4): when the
/// value is a list, a transformed get retrieves a sub-list and a transformed
/// put appends an entity, saving a client round trip and bandwidth.
struct Transform {
  enum class Type : uint8_t {
    kNone = 0,
    kSublist = 1,  // get: return items [offset, offset+count)
    kAppend = 2,   // put: append `item` to the stored list
  };
  Type type = Type::kNone;
  int64_t offset = 0;
  int64_t count = 0;
  std::string item;

  void EncodeTo(std::string* out) const;
  static Result<Transform> DecodeFrom(Slice* input);
};

/// Values manipulated by transforms are serialized string lists.
void EncodeStringList(const std::vector<std::string>& items, std::string* out);
Result<std::vector<std::string>> DecodeStringList(Slice input);

/// Applies a transform to a list-encoded value. For kSublist the result is
/// the re-encoded sub-list; for kAppend the item is appended.
Result<std::string> ApplyTransform(const Transform& t, Slice list_value);

// --- request/response encodings for the Voldemort wire protocol ---

/// get:    store, key
/// delete: store, key, clock
/// put:    store, key, clock, value [, transform]
/// slop:   destination node, then an embedded put request
void EncodeGetRequest(Slice store, Slice key, std::string* out);
Status DecodeGetRequest(Slice input, std::string* store, std::string* key);

void EncodePutRequest(Slice store, Slice key, const Versioned& versioned,
                      const Transform& transform, std::string* out);
Status DecodePutRequest(Slice input, std::string* store, std::string* key,
                        Versioned* versioned, Transform* transform);

void EncodeDeleteRequest(Slice store, Slice key, const VectorClock& clock,
                         std::string* out);
Status DecodeDeleteRequest(Slice input, std::string* store, std::string* key,
                           VectorClock* clock);

void EncodeSlopRequest(int destination_node, Slice put_request,
                       std::string* out);
Status DecodeSlopRequest(Slice input, int* destination_node,
                         std::string* put_request);

}  // namespace lidi::voldemort

#endif  // LIDI_VOLDEMORT_WIRE_H_
