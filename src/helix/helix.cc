#include "helix/helix.h"

#include <algorithm>
#include <set>

namespace lidi::helix {

const char* ReplicaStateName(ReplicaState state) {
  switch (state) {
    case ReplicaState::kOffline: return "OFFLINE";
    case ReplicaState::kSlave: return "SLAVE";
    case ReplicaState::kMaster: return "MASTER";
  }
  return "?";
}

HelixController::HelixController(std::string cluster, zk::ZooKeeper* zookeeper)
    : cluster_(std::move(cluster)), zookeeper_(zookeeper) {
  controller_session_ = zookeeper_->CreateSession();
  // discard-ok: pre-creating the cluster skeleton; AlreadyExists when a
  // prior controller made it, and every later operation on these paths
  // re-creates-or-fails visibly through a Status-returning method.
  (void)zookeeper_->CreateRecursive(controller_session_,
                                    "/helix/" + cluster_ + "/instances", "",
                                    zk::CreateMode::kPersistent);
  // discard-ok: same best-effort skeleton pre-create as above.
  (void)zookeeper_->CreateRecursive(controller_session_,
                                    "/helix/" + cluster_ + "/live", "",
                                    zk::CreateMode::kPersistent);
}

Status HelixController::AddResource(const ResourceConfig& config) {
  MutexLock lock(&mu_);
  if (resources_.count(config.name) > 0) {
    return Status::AlreadyExists(config.name);
  }
  resources_[config.name] = config;
  return Status::OK();
}

Status HelixController::AddInstance(const std::string& instance) {
  return zookeeper_->Create(controller_session_,
                            "/helix/" + cluster_ + "/instances/" + instance,
                            "", zk::CreateMode::kPersistent);
}

Status HelixController::RemoveInstance(const std::string& instance) {
  return zookeeper_->Delete("/helix/" + cluster_ + "/instances/" + instance);
}

Result<zk::SessionId> HelixController::ConnectParticipant(
    const std::string& instance, TransitionHandler handler) {
  if (!zookeeper_->Exists("/helix/" + cluster_ + "/instances/" + instance)) {
    Status s = AddInstance(instance);
    if (!s.ok() && s.code() != Code::kAlreadyExists) return s;
  }
  const zk::SessionId session = zookeeper_->CreateSession();
  Status s = zookeeper_->Create(session,
                                "/helix/" + cluster_ + "/live/" + instance,
                                "", zk::CreateMode::kEphemeral);
  if (!s.ok()) return s;
  MutexLock lock(&mu_);
  handlers_[instance] = std::move(handler);
  return session;
}

void HelixController::DisconnectParticipant(const std::string& instance,
                                            zk::SessionId session) {
  {
    MutexLock lock(&mu_);
    handlers_.erase(instance);
  }
  // After the lock: closing the session fires liveness watches.
  zookeeper_->CloseSession(session);
}

std::vector<std::string> HelixController::LiveInstances() const {
  auto children = zookeeper_->GetChildren("/helix/" + cluster_ + "/live");
  return children.ok() ? children.value() : std::vector<std::string>{};
}

std::vector<std::string> HelixController::ConfiguredInstances() const {
  auto children = zookeeper_->GetChildren("/helix/" + cluster_ + "/instances");
  return children.ok() ? children.value() : std::vector<std::string>{};
}

Assignment HelixController::ComputeAssignment(
    const std::string& resource,
    const std::vector<std::string>& instances) const {
  Assignment assignment;
  auto it = resources_.find(resource);
  if (it == resources_.end() || instances.empty()) return assignment;
  const ResourceConfig& config = it->second;
  const int n = static_cast<int>(instances.size());
  for (int p = 0; p < config.num_partitions; ++p) {
    auto& states = assignment[p];
    const int replicas = std::min(config.replicas, n);
    for (int r = 0; r < replicas; ++r) {
      const std::string& instance = instances[(p + r) % n];
      states[instance] = r == 0 ? ReplicaState::kMaster : ReplicaState::kSlave;
    }
  }
  return assignment;
}

Assignment HelixController::ComputeIdealState(
    const std::string& resource) const {
  // Fetch the instance list first: it is a Zookeeper round-trip, and mu_
  // must never be held across an RPC.
  const std::vector<std::string> configured = ConfiguredInstances();
  MutexLock lock(&mu_);
  return ComputeAssignment(resource, configured);
}

Assignment HelixController::ComputeBestPossibleState(
    const std::string& resource) const {
  // The best possible state given available nodes: the ideal-state
  // algorithm applied to configured ∩ live instances. Both listings are
  // Zookeeper round-trips, so they run before mu_ is taken.
  const std::vector<std::string> configured = ConfiguredInstances();
  const std::vector<std::string> live = LiveInstances();
  std::vector<std::string> available;
  for (const std::string& instance : configured) {
    if (std::find(live.begin(), live.end(), instance) != live.end()) {
      available.push_back(instance);
    }
  }
  MutexLock lock(&mu_);
  return ComputeAssignment(resource, available);
}

Assignment HelixController::GetCurrentState(const std::string& resource) const {
  MutexLock lock(&mu_);
  auto it = current_state_.find(resource);
  return it == current_state_.end() ? Assignment{} : it->second;
}

RebalancePlan HelixController::ComputePlan(const std::string& resource) const {
  RebalancePlan plan;
  const Assignment target = ComputeBestPossibleState(resource);
  const std::vector<std::string> live = LiveInstances();
  const Assignment current = GetCurrentState(resource);

  // Union of partitions in current and target.
  std::set<int> partitions;
  for (const auto& [p, states] : target) partitions.insert(p);
  for (const auto& [p, states] : current) partitions.insert(p);

  for (int p : partitions) {
    const auto target_states = target.count(p) ? target.at(p)
                                               : std::map<std::string,
                                                          ReplicaState>{};
    const auto current_states =
        current.count(p) ? current.at(p)
                         : std::map<std::string, ReplicaState>{};

    // Instances that must change state.
    std::set<std::string> involved;
    for (const auto& [inst, st] : target_states) involved.insert(inst);
    for (const auto& [inst, st] : current_states) involved.insert(inst);

    for (const std::string& instance : involved) {
      const ReplicaState from = current_states.count(instance)
                                    ? current_states.at(instance)
                                    : ReplicaState::kOffline;
      ReplicaState to = target_states.count(instance)
                            ? target_states.at(instance)
                            : ReplicaState::kOffline;
      // A dead instance cannot execute transitions; its record is cleared
      // (treat as OFFLINE now) rather than transitioned.
      const bool alive =
          std::find(live.begin(), live.end(), instance) != live.end();
      if (!alive) {
        if (from != ReplicaState::kOffline) {
          plan.dead_erasures.emplace_back(instance, p, from);
        }
        continue;
      }
      if (from == to) continue;
      Transition t{instance, resource, p, from, to};
      if (to == ReplicaState::kMaster) {
        plan.promotions.push_back(t);
      } else if (static_cast<int>(to) < static_cast<int>(from)) {
        plan.demotions.push_back(t);
      } else {
        plan.additions.push_back(t);
      }
    }
  }
  return plan;
}

int HelixController::RebalanceOnce(int max_transitions) {
  // Snapshot resources.
  std::vector<std::string> resource_names;
  {
    MutexLock lock(&mu_);
    for (const auto& [name, config] : resources_) {
      resource_names.push_back(name);
    }
  }

  int executed = 0;
  for (const std::string& resource : resource_names) {
    RebalancePlan plan = ComputePlan(resource);

    // Clear the records of dead instances first; losing a master this way
    // is a mastership change and bumps the routing epoch.
    for (const auto& [instance, p, from] : plan.dead_erasures) {
      MutexLock lock(&mu_);
      current_state_[resource][p].erase(instance);
      if (from == ReplicaState::kMaster) ++routing_epoch_;
    }

    auto execute = [&](std::vector<Transition>& list) {
      for (Transition& t : list) {
        if (executed >= max_transitions) return;
        ++executed;  // counts the attempt; failures are retried next round
        // The MASTER/SLAVE model has no OFFLINE->MASTER edge: route through
        // SLAVE.
        std::vector<Transition> steps;
        if (t.from == ReplicaState::kOffline &&
            t.to == ReplicaState::kMaster) {
          steps.push_back({t.instance, t.resource, t.partition,
                           ReplicaState::kOffline, ReplicaState::kSlave});
          steps.push_back({t.instance, t.resource, t.partition,
                           ReplicaState::kSlave, ReplicaState::kMaster});
        } else if (t.from == ReplicaState::kMaster &&
                   t.to == ReplicaState::kOffline) {
          steps.push_back({t.instance, t.resource, t.partition,
                           ReplicaState::kMaster, ReplicaState::kSlave});
          steps.push_back({t.instance, t.resource, t.partition,
                           ReplicaState::kSlave, ReplicaState::kOffline});
        } else {
          steps.push_back(t);
        }
        for (const Transition& step : steps) {
          TransitionHandler handler;
          {
            MutexLock lock(&mu_);
            auto hit = handlers_.find(step.instance);
            if (hit != handlers_.end()) handler = hit->second;
          }
          Status s = handler ? handler(step) : Status::OK();
          if (!s.ok()) break;  // retried on the next pipeline run
          MutexLock lock(&mu_);
          // Any step that makes or unmakes a master is a routing-visible
          // cutover: bump the epoch so in-flight router requests know to
          // re-resolve instead of failing (DESIGN.md §13).
          if (step.to == ReplicaState::kMaster ||
              step.from == ReplicaState::kMaster) {
            ++routing_epoch_;
          }
          if (step.to == ReplicaState::kOffline) {
            current_state_[resource][step.partition].erase(step.instance);
          } else {
            current_state_[resource][step.partition][step.instance] = step.to;
          }
        }
      }
    };
    execute(plan.demotions);
    execute(plan.additions);
    execute(plan.promotions);
  }
  return executed;
}

int64_t HelixController::RoutingEpoch() const {
  MutexLock lock(&mu_);
  return routing_epoch_;
}

int HelixController::RebalanceToConvergence() {
  int total = 0;
  for (int round = 0; round < 64; ++round) {
    const int n = RebalanceOnce();
    total += n;
    if (n == 0) break;
  }
  return total;
}

std::string HelixController::MasterOf(const std::string& resource,
                                      int partition) const {
  MutexLock lock(&mu_);
  auto rit = current_state_.find(resource);
  if (rit == current_state_.end()) return "";
  auto pit = rit->second.find(partition);
  if (pit == rit->second.end()) return "";
  for (const auto& [instance, state] : pit->second) {
    if (state == ReplicaState::kMaster) return instance;
  }
  return "";
}

std::vector<int> HelixController::MasterlessPartitions(
    const std::string& resource) const {
  std::vector<int> out;
  int num_partitions = 0;
  {
    MutexLock lock(&mu_);
    auto it = resources_.find(resource);
    if (it == resources_.end()) return out;
    num_partitions = it->second.num_partitions;
  }
  for (int p = 0; p < num_partitions; ++p) {
    if (MasterOf(resource, p).empty()) out.push_back(p);
  }
  return out;
}

void HelixController::HandleLivenessChange() { RebalanceOnce(); }

}  // namespace lidi::helix
