#ifndef LIDI_HELIX_HELIX_H_
#define LIDI_HELIX_HELIX_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/sync.h"
#include "common/status.h"
#include "zk/zookeeper.h"

namespace lidi::helix {

/// Replica states of the MASTER/SLAVE state model the paper describes for
/// Espresso partitions (Section IV.B). The paper's state names are kept as
/// the published vocabulary of the Helix state machine.
enum class ReplicaState { kOffline = 0, kSlave = 1, kMaster = 2 };

const char* ReplicaStateName(ReplicaState state);

/// A partitioned, replicated resource managed by Helix (e.g. an Espresso
/// database).
struct ResourceConfig {
  std::string name;
  int num_partitions = 8;
  int replicas = 2;  // total replicas per partition, incl. the master
};

/// partition -> instance -> state. Instances not present are OFFLINE.
using Assignment = std::map<int, std::map<std::string, ReplicaState>>;

/// One state transition Helix asks a participant to perform.
struct Transition {
  std::string instance;
  std::string resource;
  int partition = 0;
  ReplicaState from = ReplicaState::kOffline;
  ReplicaState to = ReplicaState::kOffline;
};

/// Participant callback: perform the transition (e.g. an Espresso node
/// draining the relay backlog before mastering). Returning non-OK leaves
/// the current state unchanged; the controller retries on the next pipeline
/// run.
using TransitionHandler = std::function<Status(const Transition&)>;

/// The controller pipeline's work list for one resource, in execution
/// order: demotions and drops first (a master must release before a new one
/// is promoted), then slave additions, then master promotions.
/// `dead_erasures` are current-state records of instances that died without
/// transitioning — cleared, not executed (a dead node cannot run a
/// handler). Exposed so rebalance tests and bench_helix_rebalance can
/// inspect what a pipeline run WOULD do without running it.
struct RebalancePlan {
  std::vector<Transition> demotions;
  std::vector<Transition> additions;
  std::vector<Transition> promotions;
  /// (instance, partition, last acknowledged state) of dead records.
  std::vector<std::tuple<std::string, int, ReplicaState>> dead_erasures;

  bool empty() const {
    return demotions.empty() && additions.empty() && promotions.empty() &&
           dead_erasures.empty();
  }
  int TotalTransitions() const {
    return static_cast<int>(demotions.size() + additions.size() +
                            promotions.size());
  }
};

/// The generic cluster manager (paper Section IV.B): tracks live instances
/// through Zookeeper ephemerals, and drives the cluster from its
/// CURRENTSTATE toward the BESTPOSSIBLESTATE — which converges to the
/// IDEALSTATE when every configured node is up.
///
/// Zookeeper layout:
///   /helix/<cluster>/instances/<name>      (persistent: configured)
///   /helix/<cluster>/live/<name>           (ephemeral: connected)
class HelixController {
 public:
  HelixController(std::string cluster, zk::ZooKeeper* zookeeper);

  /// Registers a resource to manage.
  Status AddResource(const ResourceConfig& config);

  /// Adds a configured instance (server lifecycle management: addition
  /// without downtime).
  Status AddInstance(const std::string& instance);
  Status RemoveInstance(const std::string& instance);

  /// Connects a participant: creates its live ephemeral node and registers
  /// its transition handler. Returns the zk session backing its liveness
  /// (close it to simulate a crash).
  Result<zk::SessionId> ConnectParticipant(const std::string& instance,
                                           TransitionHandler handler);

  /// Simulated participant crash: closes the liveness session (the ephemeral
  /// vanishes) and drops the transition handler, so the controller stops
  /// calling into an object that may no longer exist. The instance stays
  /// configured; ConnectParticipant with the same name models the restart.
  void DisconnectParticipant(const std::string& instance, zk::SessionId session);

  /// IDEALSTATE: the target assignment when all configured nodes run.
  Assignment ComputeIdealState(const std::string& resource) const;

  /// BESTPOSSIBLESTATE: the ideal-state algorithm restricted to live nodes.
  Assignment ComputeBestPossibleState(const std::string& resource) const;

  /// CURRENTSTATE: what participants have acknowledged so far.
  Assignment GetCurrentState(const std::string& resource) const;

  /// The rebalance planner, factored out of the pipeline: diffs
  /// CURRENTSTATE against BESTPOSSIBLESTATE and returns the ordered
  /// transition lists WITHOUT executing anything. RebalanceOnce executes
  /// exactly this plan; tests and benches call it to predict or audit a
  /// pipeline run.
  RebalancePlan ComputePlan(const std::string& resource) const;

  /// One pass of the controller pipeline: computes BESTPOSSIBLESTATE for
  /// every resource, diffs against CURRENTSTATE, and issues transitions
  /// (demotions before promotions; at most one master per partition at all
  /// times). Returns the number of transitions attempted; failed ones are
  /// retried on the next run.
  /// Run after membership changes; idempotent at fixed point.
  int RebalanceOnce(int max_transitions = 1 << 20);

  /// Runs RebalanceOnce until no transitions are issued. Returns the total.
  int RebalanceToConvergence();

  /// Current master instance of a partition, or empty if none (routing
  /// table lookup used by the Espresso router).
  std::string MasterOf(const std::string& resource, int partition) const;

  /// Monotone routing epoch: bumped every time any partition's mastership
  /// changes (a MASTER acknowledged, demoted, or erased). Routers snapshot
  /// it before resolving a master and, on an Unavailable reply, retry the
  /// lookup only if the epoch moved — the atomic-cutover-at-the-router rule
  /// (DESIGN.md §13): a request that raced a migration is re-routed to the
  /// new master instead of surfacing a transient routing error.
  int64_t RoutingEpoch() const;

  std::vector<std::string> LiveInstances() const;
  std::vector<std::string> ConfiguredInstances() const;

  /// Health check (paper: "monitors cluster health and provides alerts"):
  /// partitions of the resource that currently lack a master.
  std::vector<int> MasterlessPartitions(const std::string& resource) const;

 private:
  Assignment ComputeAssignment(const std::string& resource,
                               const std::vector<std::string>& instances) const
      LIDI_REQUIRES(mu_);
  void HandleLivenessChange();

  const std::string cluster_;
  zk::ZooKeeper* const zookeeper_;
  // tsa-ok: written once during construction, immutable afterwards.
  zk::SessionId controller_session_;

  /// Never held across Zookeeper (instance listings run unlocked) or a
  /// participant's transition handler (the handler is copied out first).
  mutable Mutex mu_{"helix.controller"};
  std::map<std::string, ResourceConfig> resources_ LIDI_GUARDED_BY(mu_);
  std::map<std::string, TransitionHandler> handlers_ LIDI_GUARDED_BY(mu_);
  // resource -> partition -> instance -> acknowledged state
  std::map<std::string, Assignment> current_state_ LIDI_GUARDED_BY(mu_);
  // See RoutingEpoch(): bumped under mu_ on every mastership change.
  int64_t routing_epoch_ LIDI_GUARDED_BY(mu_) = 0;
};

}  // namespace lidi::helix

#endif  // LIDI_HELIX_HELIX_H_
