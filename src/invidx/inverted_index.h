#ifndef LIDI_INVIDX_INVERTED_INDEX_H_
#define LIDI_INVIDX_INVERTED_INDEX_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/sync.h"
#include "common/slice.h"
#include "common/status.h"

namespace lidi::invidx {

/// Lowercases and splits on non-alphanumeric characters. "Lucy in the Sky"
/// -> ["lucy", "in", "the", "sky"].
std::vector<std::string> Tokenize(Slice text);

/// A parsed query: a conjunction (AND) of clauses. Each clause constrains
/// one field, either to an exact keyword value or to a token/phrase match on
/// a free-text-indexed field.
struct Query {
  struct Clause {
    std::string field;
    std::string text;
    bool phrase = false;  // quoted: tokens must appear consecutively
  };
  std::vector<Clause> clauses;

  /// Parses the HTTP query-parameter syntax of the paper (Section IV.A):
  ///   lyrics:"Lucy in the sky"            (phrase on a text field)
  ///   artist:Akon year:2004               (conjunction of terms)
  static Result<Query> Parse(const std::string& text);
};

/// An in-memory inverted index with positional postings — the local
/// secondary index substrate standing in for Lucene (see DESIGN.md). One
/// instance indexes the documents of one Espresso partition.
///
/// Fields are registered as keyword fields (the value is a single term,
/// matched exactly after lowercasing) or text fields (tokenized, positional,
/// supporting phrase queries). Thread-safe.
class InvertedIndex {
 public:
  /// Indexes (or re-indexes) a document. `fields` maps field name to its
  /// textual value; fields named in `text_fields` are tokenized.
  void IndexDocument(const std::string& doc_id,
                     const std::map<std::string, std::string>& fields,
                     const std::set<std::string>& text_fields);

  void RemoveDocument(const std::string& doc_id);

  /// Documents matching every clause, sorted by doc id.
  Result<std::vector<std::string>> Search(const Query& query) const;

  int64_t document_count() const;
  int64_t term_count() const;

 private:
  /// term key: field '\0' token
  static std::string TermKey(const std::string& field,
                             const std::string& token);

  /// Docs (with positions) matching one clause.
  Result<std::map<std::string, std::vector<int>>> MatchClauseLocked(
      const Query::Clause& clause) const LIDI_REQUIRES(mu_);

  mutable Mutex mu_{"invidx.index"};
  // term key -> doc id -> token positions
  std::map<std::string, std::map<std::string, std::vector<int>>> postings_
      LIDI_GUARDED_BY(mu_);
  // doc id -> term keys it contributes to (for removal)
  std::map<std::string, std::set<std::string>> doc_terms_
      LIDI_GUARDED_BY(mu_);
};

}  // namespace lidi::invidx

#endif  // LIDI_INVIDX_INVERTED_INDEX_H_
