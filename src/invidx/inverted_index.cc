#include "invidx/inverted_index.h"

#include <algorithm>
#include <cctype>

namespace lidi::invidx {

std::vector<std::string> Tokenize(Slice text) {
  std::vector<std::string> tokens;
  std::string current;
  for (size_t i = 0; i < text.size(); ++i) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    if (std::isalnum(c)) {
      current += static_cast<char>(std::tolower(c));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

Result<Query> Query::Parse(const std::string& text) {
  Query query;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i >= n) break;
    // field name up to ':'
    const size_t colon = text.find(':', i);
    if (colon == std::string::npos || colon == i) {
      return Status::InvalidArgument("expected field:value at '" +
                                     text.substr(i) + "'");
    }
    Clause clause;
    clause.field = text.substr(i, colon - i);
    i = colon + 1;
    if (i < n && text[i] == '"') {
      const size_t close = text.find('"', i + 1);
      if (close == std::string::npos) {
        return Status::InvalidArgument("unterminated phrase");
      }
      clause.text = text.substr(i + 1, close - i - 1);
      clause.phrase = true;
      i = close + 1;
    } else {
      size_t end = i;
      while (end < n && !std::isspace(static_cast<unsigned char>(text[end]))) {
        ++end;
      }
      clause.text = text.substr(i, end - i);
      i = end;
    }
    if (clause.text.empty()) {
      return Status::InvalidArgument("empty clause value for field " +
                                     clause.field);
    }
    query.clauses.push_back(std::move(clause));
  }
  if (query.clauses.empty()) return Status::InvalidArgument("empty query");
  return query;
}

std::string InvertedIndex::TermKey(const std::string& field,
                                   const std::string& token) {
  std::string key = field;
  key.push_back('\0');
  key += token;
  return key;
}

void InvertedIndex::IndexDocument(
    const std::string& doc_id, const std::map<std::string, std::string>& fields,
    const std::set<std::string>& text_fields) {
  MutexLock lock(&mu_);
  // Re-index: drop the previous postings for this doc.
  auto prev = doc_terms_.find(doc_id);
  if (prev != doc_terms_.end()) {
    for (const std::string& term : prev->second) {
      auto it = postings_.find(term);
      if (it != postings_.end()) {
        it->second.erase(doc_id);
        if (it->second.empty()) postings_.erase(it);
      }
    }
    prev->second.clear();
  }
  std::set<std::string>& terms = doc_terms_[doc_id];
  for (const auto& [field, value] : fields) {
    if (text_fields.count(field) > 0) {
      const std::vector<std::string> tokens = Tokenize(value);
      for (size_t pos = 0; pos < tokens.size(); ++pos) {
        const std::string term = TermKey(field, tokens[pos]);
        postings_[term][doc_id].push_back(static_cast<int>(pos));
        terms.insert(term);
      }
    } else {
      // Keyword field: one lowercase term for the whole value.
      std::string token;
      token.reserve(value.size());
      for (char c : value) {
        token += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      const std::string term = TermKey(field, token);
      postings_[term][doc_id].push_back(0);
      terms.insert(term);
    }
  }
}

void InvertedIndex::RemoveDocument(const std::string& doc_id) {
  MutexLock lock(&mu_);
  auto it = doc_terms_.find(doc_id);
  if (it == doc_terms_.end()) return;
  for (const std::string& term : it->second) {
    auto pit = postings_.find(term);
    if (pit != postings_.end()) {
      pit->second.erase(doc_id);
      if (pit->second.empty()) postings_.erase(pit);
    }
  }
  doc_terms_.erase(it);
}

Result<std::map<std::string, std::vector<int>>>
InvertedIndex::MatchClauseLocked(const Query::Clause& clause) const {
  const std::vector<std::string> tokens = Tokenize(clause.text);
  if (tokens.empty()) return Status::InvalidArgument("no tokens in clause");

  // Keyword fields store the whole (lowercased) value as a single term, so
  // any clause — quoted or not — may hit that representation. Try the exact
  // keyword term first.
  {
    std::string keyword;
    for (char c : clause.text) {
      keyword +=
          static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    }
    auto it = postings_.find(TermKey(clause.field, keyword));
    if (it != postings_.end()) return it->second;
  }
  if (!clause.phrase && tokens.size() == 1) {
    auto tit = postings_.find(TermKey(clause.field, tokens[0]));
    if (tit != postings_.end()) return tit->second;
    return std::map<std::string, std::vector<int>>{};
  }

  // Phrase (or multi-token) match on a text field: all tokens present with
  // consecutive positions.
  auto first = postings_.find(TermKey(clause.field, tokens[0]));
  if (first == postings_.end()) {
    return std::map<std::string, std::vector<int>>{};
  }
  std::map<std::string, std::vector<int>> result;
  for (const auto& [doc, start_positions] : first->second) {
    std::vector<int> match_starts;
    for (int start : start_positions) {
      bool all = true;
      for (size_t t = 1; t < tokens.size(); ++t) {
        auto tit = postings_.find(TermKey(clause.field, tokens[t]));
        if (tit == postings_.end()) {
          all = false;
          break;
        }
        auto dit = tit->second.find(doc);
        if (dit == tit->second.end() ||
            !std::binary_search(dit->second.begin(), dit->second.end(),
                                start + static_cast<int>(t))) {
          all = false;
          break;
        }
      }
      if (all) match_starts.push_back(start);
    }
    if (!match_starts.empty()) result[doc] = std::move(match_starts);
  }
  return result;
}

Result<std::vector<std::string>> InvertedIndex::Search(
    const Query& query) const {
  MutexLock lock(&mu_);
  if (query.clauses.empty()) return Status::InvalidArgument("empty query");
  std::set<std::string> docs;
  for (size_t i = 0; i < query.clauses.size(); ++i) {
    auto matched = MatchClauseLocked(query.clauses[i]);
    if (!matched.ok()) return matched.status();
    std::set<std::string> clause_docs;
    for (const auto& [doc, positions] : matched.value()) {
      clause_docs.insert(doc);
    }
    if (i == 0) {
      docs = std::move(clause_docs);
    } else {
      std::set<std::string> intersection;
      std::set_intersection(docs.begin(), docs.end(), clause_docs.begin(),
                            clause_docs.end(),
                            std::inserter(intersection, intersection.end()));
      docs = std::move(intersection);
    }
    if (docs.empty()) break;
  }
  return std::vector<std::string>(docs.begin(), docs.end());
}

int64_t InvertedIndex::document_count() const {
  MutexLock lock(&mu_);
  return static_cast<int64_t>(doc_terms_.size());
}

int64_t InvertedIndex::term_count() const {
  MutexLock lock(&mu_);
  return static_cast<int64_t>(postings_.size());
}

}  // namespace lidi::invidx
