#ifndef LIDI_SQLSTORE_DATABASE_H_
#define LIDI_SQLSTORE_DATABASE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "common/sync.h"
#include "io/arena.h"
#include "io/file.h"
#include "io/group_commit.h"
#include "io/submission_queue.h"
#include "obs/metrics.h"

namespace lidi::sqlstore {

/// A row: column name -> value bytes. Schema-light — Espresso stores the
/// serialized document in a `val` column plus metadata columns (Table IV.1);
/// Databus ships whole post-image rows.
using Row = std::map<std::string, std::string>;

/// Serialized row codec (length-prefixed column/value pairs).
void EncodeRow(const Row& row, std::string* out);
Result<Row> DecodeRow(Slice input);

/// One change within a transaction.
struct Change {
  enum class Op : uint8_t { kInsert = 0, kUpdate = 1, kDelete = 2 };
  Op op = Op::kInsert;
  std::string table;
  std::string primary_key;
  /// Post-image row, empty for deletes.
  Row row;
  /// Logical partition of the primary key; -1 when the database is
  /// un-partitioned. Espresso shards its binlog per partition (IV.B).
  int partition = -1;
};

/// A committed transaction in the binlog: the paper's "transaction envelope"
/// with commit order and atomic boundaries (Section III.B: capture
/// transaction boundaries, the commit order, and all changes).
struct CommittedTransaction {
  int64_t scn = 0;  // commit sequence number, dense and increasing
  std::vector<Change> changes;
};

/// Durability knobs for the binlog (the MySQL-binlog stand-in the Databus
/// pipeline tails, Section III.B).
struct BinlogOptions {
  /// When non-empty, every committed transaction is appended to
  /// "<data_dir>/binlog.seg" before its SCN is acknowledged, and a new
  /// Binlog replays the file on construction (torn trailing records are
  /// truncated). Empty = in-memory only.
  std::string data_dir;
  /// Filesystem writes go through; null = the process-wide fd-based POSIX
  /// fs. Tests inject io::MemFs / io::FaultFs here.
  io::Fs* fs = nullptr;
  /// Default kAlways — the sync_binlog=1 stance: an acknowledged commit is
  /// crash-durable. Source-of-truth stores pay the fsync; the paper's
  /// pipeline depends on the binlog never losing acknowledged commits.
  io::SyncPolicy sync = io::SyncPolicy::kAlways;
  int64_t sync_interval_bytes = 1 << 20;
  /// Group commit (kAlways only): concurrent committers share one covering
  /// fdatasync instead of paying one each — the first waiter leads the sync,
  /// the rest park and are acknowledged when the leader's sync covers their
  /// record (DESIGN.md §7). Acked-commit-loss semantics are unchanged: an
  /// SCN is still only acknowledged after a covering fdatasync. Ignored
  /// unless sync == kAlways; incompatible with (and disabled by)
  /// legacy_advance_on_failed_write.
  bool group_commit = false;
  /// A leader syncs as soon as this many staged-but-unsynced bytes are
  /// waiting (or immediately, when it is the only committer).
  int64_t group_max_batch_bytes = 1 << 20;
  /// > 0: a leader without a full batch parks up to this long for
  /// piggybackers before syncing. 0 (default) = never wait on the clock.
  int64_t group_max_wait_ms = 0;
  /// Registry for the durability instruments ("io.sync.count",
  /// "io.write.failed", "io.recovery.torn_truncations", labeled
  /// layer=sqlstore.binlog). Null = not instrumented.
  obs::MetricsRegistry* metrics = nullptr;
  /// TEST-ONLY. Re-introduces the historical persisted_bytes bug (fixed in
  /// the durable-I/O PR): a failed append advances the acknowledged-bytes
  /// frontier without rolling the file back, so later appends bury the torn
  /// record and crash recovery silently stops before every later acked
  /// commit. Exists so the simulation harness can demonstrate its
  /// no-acked-commit-lost invariant re-finding a real, previously shipped
  /// bug (DESIGN.md §9). Never set outside tests.
  bool legacy_advance_on_failed_write = false;
};

/// The commit-ordered replication log. Replayable from any SCN — the
/// property Databus relies on to keep relays stateless (Section III.D).
class Binlog {
 public:
  Binlog() : Binlog(BinlogOptions{}) {}
  explicit Binlog(BinlogOptions options);

  /// Appends a transaction, assigning the next SCN. In persistent mode the
  /// encoded record reaches the file (and, per the sync policy, stable
  /// storage) *before* the SCN is assigned; a failed persist returns the
  /// I/O error, assigns no SCN, and leaves the log exactly as it was.
  Result<int64_t> Append(std::vector<Change> changes);

  /// Transactions with scn > from_scn, up to max_count. `from_scn = 0`
  /// replays from the beginning.
  std::vector<CommittedTransaction> ReadAfter(int64_t from_scn,
                                              int64_t max_count) const;

  int64_t LastScn() const;
  int64_t TransactionCount() const;

  /// Highest SCN covered by a successful fdatasync — the commit the binlog
  /// promises survives a power loss. Tracks LastScn() under kAlways, and in
  /// in-memory mode (nothing to survive a crash with).
  int64_t DurableScn() const;

  /// Non-OK when construction-time replay hit a problem it refuses to paper
  /// over (unreadable file, failed torn-tail truncation), or when a failed
  /// append could not be rolled off the file — after which further appends
  /// are refused rather than buried behind unacknowledged bytes.
  Status recovery_status() const;

  /// Number of ReadAfter calls served — the "load on the source" metric the
  /// consumer-isolation bench (E9) reports: it must not grow with the number
  /// of downstream Databus consumers.
  int64_t ReadCalls() const;

 private:
  /// One staged-but-not-yet-durable transaction (group mode): promoted into
  /// log_ when a covering group sync lands, dropped (with the file rolled
  /// back) when the sync fails.
  struct Pending {
    CommittedTransaction txn;
    /// File offset one past this transaction's record — durable once
    /// synced_bytes_ reaches it.
    int64_t end_bytes = 0;
  };

  std::string FilePath() const;
  bool group_mode() const { return group_ != nullptr; }
  /// Writes (no sync) one encoded record, advancing persisted_bytes_; on
  /// failure rolls the file back to the last acknowledged byte.
  Status StageLocked(const CommittedTransaction& txn) LIDI_REQUIRES(mu_);
  Status PersistLocked(const CommittedTransaction& txn) LIDI_REQUIRES(mu_);
  /// Group-commit sync body (called by the committer with mu_ free): one
  /// covering fdatasync, then promote covered pending transactions — or, on
  /// failure, roll the file back to the durable frontier and drop the
  /// in-flight batch so no waiter is falsely acknowledged.
  Result<int64_t> GroupSyncNow() LIDI_EXCLUDES(mu_);
  void RecoverLocked() LIDI_REQUIRES(mu_);

  const BinlogOptions options_;
  // tsa-ok: set once during construction; null = in-memory only.
  io::Fs* fs_ = nullptr;
  obs::Counter* sync_count_ = nullptr;
  obs::Counter* write_failed_ = nullptr;
  obs::Counter* torn_truncations_ = nullptr;

  /// Non-null iff group commit is active (fs-backed, kAlways, group_commit
  /// set, legacy bug knob off). Its mutex is a leaf under mu_.
  // tsa-ok: set once during construction; the committer is internally
  // synchronized.
  std::unique_ptr<io::GroupCommitter> group_;

  mutable Mutex mu_{"sqlstore.binlog"};
  /// Acknowledged-durable transactions. In group mode a transaction sits in
  /// pending_ between its write and its covering sync, so readers
  /// (ReadAfter / LastScn — i.e. replication) only ever see durable commits.
  std::vector<CommittedTransaction> log_ LIDI_GUARDED_BY(mu_);
  std::vector<Pending> pending_ LIDI_GUARDED_BY(mu_);
  int64_t next_scn_ LIDI_GUARDED_BY(mu_) = 1;
  int64_t durable_scn_ LIDI_GUARDED_BY(mu_) = 0;
  /// Bytes of acknowledged records in the file (rollback target).
  int64_t persisted_bytes_ LIDI_GUARDED_BY(mu_) = 0;
  /// Bytes covered by a successful fdatasync (group-mode rollback target:
  /// everything past it is indeterminate after a failed sync).
  int64_t synced_bytes_ LIDI_GUARDED_BY(mu_) = 0;
  int64_t unsynced_bytes_ LIDI_GUARDED_BY(mu_) = 0;
  /// Set when the file holds bytes we could not take back (failed rollback
  /// truncate) — appending past them would bury unacknowledged data.
  bool damaged_ LIDI_GUARDED_BY(mu_) = false;
  Status recovery_status_ LIDI_GUARDED_BY(mu_);
  /// shared_ptr: the group leader copies the handle under mu_ and syncs it
  /// with mu_ released, racing rollback paths that file_.reset().
  std::shared_ptr<io::WritableFile> file_ LIDI_GUARDED_BY(mu_);
  /// Slab for record-encode scratch buffers (append hot path).
  io::RecordArena arena_ LIDI_GUARDED_BY(mu_);
  /// Staging ring for record writes (io_uring shape; see io/submission_queue.h).
  io::SubmissionQueue sq_ LIDI_GUARDED_BY(mu_);
  mutable int64_t read_calls_ LIDI_GUARDED_BY(mu_) = 0;
};

/// Row-level trigger (the *other* capture approach of Section III.C; also
/// the in-server processing the paper contrasts with Databus' user-space
/// processing). Fired synchronously inside commit.
using Trigger = std::function<void(const Change& change, int64_t scn)>;

/// Callback invoked before a commit is acknowledged — the semi-synchronous
/// replication hook (Section IV.B Robustness: "Each change is written to two
/// places before being committed -- the local MySQL binlog and the Databus
/// relay"). Returning non-OK fails the commit.
using SemiSyncCallback =
    std::function<Status(const CommittedTransaction& txn)>;

/// A transactional, binlogged row store — the primary-database substrate
/// standing in for Oracle/MySQL (see DESIGN.md). Transactions are atomic
/// and serialized by a commit lock, giving the strong commit ordering the
/// Databus pipeline captures. Thread-safe.
class Database {
 public:
  explicit Database(std::string name, BinlogOptions binlog_options = {})
      : name_(std::move(name)), binlog_(std::move(binlog_options)) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const std::string& name() const { return name_; }

  Status CreateTable(const std::string& table);
  bool HasTable(const std::string& table) const;
  std::vector<std::string> Tables() const;

  /// Sets the partition function applied to primary keys (nullptr = no
  /// partitioning). Affects Change::partition for subsequent commits.
  void SetPartitionFunction(std::function<int(Slice)> fn);

  /// Registers a trigger fired (synchronously) for every committed change.
  void AddTrigger(Trigger trigger);

  /// Installs the semi-sync commit hook.
  void SetSemiSyncCallback(SemiSyncCallback callback);

  /// A read-modify-write unit. Writes are buffered until Commit, which
  /// atomically applies them, appends one binlog transaction and fires
  /// triggers/semi-sync. Not thread-safe itself; one per thread.
  class Transaction {
   public:
    explicit Transaction(Database* db) : db_(db) {}

    /// Buffers an insert-or-update of `row` under `primary_key`.
    void Put(const std::string& table, const std::string& primary_key,
             Row row);
    void Delete(const std::string& table, const std::string& primary_key);

    /// Atomically applies all buffered changes. Returns the assigned SCN.
    /// Fails (and applies nothing) if any table is missing or the semi-sync
    /// hook rejects. The transaction must not be reused after Commit.
    Result<int64_t> Commit();

    /// Discards buffered changes.
    void Abort() { changes_.clear(); }

    int64_t change_count() const {
      return static_cast<int64_t>(changes_.size());
    }

   private:
    Database* db_;
    std::vector<Change> changes_;
  };

  Transaction Begin() { return Transaction(this); }

  /// Convenience single-row transactional write.
  Result<int64_t> Put(const std::string& table, const std::string& primary_key,
                      Row row);
  Result<int64_t> Delete(const std::string& table,
                         const std::string& primary_key);

  /// Point read. NotFound if the row or table is absent.
  Result<Row> Get(const std::string& table,
                  const std::string& primary_key) const;

  /// Ordered scan of a table. Visitor returns false to stop.
  Status Scan(const std::string& table,
              const std::function<bool(const std::string& primary_key,
                                       const Row& row)>& visitor) const;

  int64_t RowCount(const std::string& table) const;

  const Binlog& binlog() const { return binlog_; }

  /// Crash-restart entry point: rebuilds the in-memory tables from the
  /// transactions the binlog recovered on construction (construct with the
  /// same data_dir, then call this once, before serving). Creates missing
  /// tables. Triggers and semi-sync hooks are NOT fired — every replayed
  /// change was acknowledged in a previous life. Returns rows applied.
  int64_t ReplayBinlog();

 private:
  Result<int64_t> CommitChanges(std::vector<Change>* changes);

  const std::string name_;
  /// Lock order: commit_mu_ -> mu_ -> binlog_.mu_ (Append). mu_ is never
  /// held across the binlog append, triggers, or the semi-sync hook.
  mutable Mutex mu_{"sqlstore.database"};
  std::map<std::string, std::map<std::string, Row>> tables_
      LIDI_GUARDED_BY(mu_);
  std::function<int(Slice)> partition_fn_ LIDI_GUARDED_BY(mu_);
  std::vector<Trigger> triggers_ LIDI_GUARDED_BY(mu_);
  SemiSyncCallback semi_sync_ LIDI_GUARDED_BY(mu_);
  // tsa-ok: Binlog is internally synchronized (its own mutex, a leaf in
  // the commit lock order documented above).
  Binlog binlog_;
  Mutex commit_mu_{
      "sqlstore.commit"};  // serializes commits -> strict commit order
};

}  // namespace lidi::sqlstore

#endif  // LIDI_SQLSTORE_DATABASE_H_
