#include "sqlstore/database.h"

#include "common/coding.h"

namespace lidi::sqlstore {

void EncodeRow(const Row& row, std::string* out) {
  PutVarint64(out, row.size());
  for (const auto& [column, value] : row) {
    PutLengthPrefixed(out, column);
    PutLengthPrefixed(out, value);
  }
}

Result<Row> DecodeRow(Slice input) {
  uint64_t count;
  if (!GetVarint64(&input, &count)) return Status::Corruption("truncated row");
  Row row;
  for (uint64_t i = 0; i < count; ++i) {
    Slice column, value;
    if (!GetLengthPrefixed(&input, &column) ||
        !GetLengthPrefixed(&input, &value)) {
      return Status::Corruption("truncated row column");
    }
    row[column.ToString()] = value.ToString();
  }
  return row;
}

int64_t Binlog::Append(std::vector<Change> changes) {
  std::lock_guard<std::mutex> lock(mu_);
  CommittedTransaction txn;
  txn.scn = next_scn_++;
  txn.changes = std::move(changes);
  log_.push_back(std::move(txn));
  return log_.back().scn;
}

std::vector<CommittedTransaction> Binlog::ReadAfter(int64_t from_scn,
                                                    int64_t max_count) const {
  std::lock_guard<std::mutex> lock(mu_);
  ++read_calls_;
  std::vector<CommittedTransaction> out;
  // SCNs are dense starting at 1, so the offset is direct.
  int64_t start_index = from_scn;  // scn N lives at index N-1; read after it
  for (int64_t i = start_index;
       i < static_cast<int64_t>(log_.size()) &&
       static_cast<int64_t>(out.size()) < max_count;
       ++i) {
    out.push_back(log_[i]);
  }
  return out;
}

int64_t Binlog::LastScn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_.empty() ? 0 : log_.back().scn;
}

int64_t Binlog::ReadCalls() const {
  std::lock_guard<std::mutex> lock(mu_);
  return read_calls_;
}

int64_t Binlog::TransactionCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(log_.size());
}

Status Database::CreateTable(const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(table) > 0) return Status::AlreadyExists(table);
  tables_[table];
  return Status::OK();
}

bool Database::HasTable(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(table) > 0;
}

std::vector<std::string> Database::Tables() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, rows] : tables_) out.push_back(name);
  return out;
}

void Database::SetPartitionFunction(std::function<int(Slice)> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  partition_fn_ = std::move(fn);
}

void Database::AddTrigger(Trigger trigger) {
  std::lock_guard<std::mutex> lock(mu_);
  triggers_.push_back(std::move(trigger));
}

void Database::SetSemiSyncCallback(SemiSyncCallback callback) {
  std::lock_guard<std::mutex> lock(mu_);
  semi_sync_ = std::move(callback);
}

void Database::Transaction::Put(const std::string& table,
                                const std::string& primary_key, Row row) {
  Change change;
  change.table = table;
  change.primary_key = primary_key;
  change.row = std::move(row);
  change.op = Change::Op::kUpdate;  // resolved to insert/update at commit
  changes_.push_back(std::move(change));
}

void Database::Transaction::Delete(const std::string& table,
                                   const std::string& primary_key) {
  Change change;
  change.op = Change::Op::kDelete;
  change.table = table;
  change.primary_key = primary_key;
  changes_.push_back(std::move(change));
}

Result<int64_t> Database::Transaction::Commit() {
  return db_->CommitChanges(&changes_);
}

Result<int64_t> Database::Put(const std::string& table,
                              const std::string& primary_key, Row row) {
  Transaction txn = Begin();
  txn.Put(table, primary_key, std::move(row));
  return txn.Commit();
}

Result<int64_t> Database::Delete(const std::string& table,
                                 const std::string& primary_key) {
  Transaction txn = Begin();
  txn.Delete(table, primary_key);
  return txn.Commit();
}

Result<int64_t> Database::CommitChanges(std::vector<Change>* changes) {
  // The commit lock serializes transactions, making binlog order the commit
  // order (timeline consistency downstream depends on this).
  std::lock_guard<std::mutex> commit_lock(commit_mu_);

  std::vector<Trigger> triggers;
  SemiSyncCallback semi_sync;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Validate before mutating: all-or-nothing.
    for (Change& change : *changes) {
      auto it = tables_.find(change.table);
      if (it == tables_.end()) {
        return Status::NotFound("no table " + change.table);
      }
      if (change.op != Change::Op::kDelete) {
        change.op = it->second.count(change.primary_key) > 0
                        ? Change::Op::kUpdate
                        : Change::Op::kInsert;
      }
      change.partition =
          partition_fn_ ? partition_fn_(change.primary_key) : -1;
    }
    for (const Change& change : *changes) {
      auto& rows = tables_[change.table];
      if (change.op == Change::Op::kDelete) {
        rows.erase(change.primary_key);
      } else {
        rows[change.primary_key] = change.row;
      }
    }
    triggers = triggers_;
    semi_sync = semi_sync_;
  }

  const int64_t scn = binlog_.Append(*changes);

  CommittedTransaction txn;
  txn.scn = scn;
  txn.changes = *changes;
  if (semi_sync) {
    Status s = semi_sync(txn);
    if (!s.ok()) {
      // The write reached the binlog but not the second location; the paper's
      // durability contract is violated, surface it to the committer.
      return Status::Unavailable("semi-sync replication failed: " +
                                 s.message());
    }
  }
  for (const Trigger& trigger : triggers) {
    for (const Change& change : txn.changes) trigger(change, scn);
  }
  changes->clear();
  return scn;
}

Result<Row> Database::Get(const std::string& table,
                          const std::string& primary_key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no table " + table);
  auto rit = it->second.find(primary_key);
  if (rit == it->second.end()) return Status::NotFound(primary_key);
  return rit->second;
}

Status Database::Scan(
    const std::string& table,
    const std::function<bool(const std::string&, const Row&)>& visitor) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no table " + table);
  for (const auto& [pk, row] : it->second) {
    if (!visitor(pk, row)) break;
  }
  return Status::OK();
}

int64_t Database::RowCount(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(table);
  return it == tables_.end() ? 0 : static_cast<int64_t>(it->second.size());
}

}  // namespace lidi::sqlstore
