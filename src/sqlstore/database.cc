#include "sqlstore/database.h"

#include <algorithm>

#include "common/coding.h"
#include "common/hash.h"

namespace lidi::sqlstore {

void EncodeRow(const Row& row, std::string* out) {
  PutVarint64(out, row.size());
  for (const auto& [column, value] : row) {
    PutLengthPrefixed(out, column);
    PutLengthPrefixed(out, value);
  }
}

Result<Row> DecodeRow(Slice input) {
  uint64_t count;
  if (!GetVarint64(&input, &count)) return Status::Corruption("truncated row");
  Row row;
  for (uint64_t i = 0; i < count; ++i) {
    Slice column, value;
    if (!GetLengthPrefixed(&input, &column) ||
        !GetLengthPrefixed(&input, &value)) {
      return Status::Corruption("truncated row column");
    }
    row[column.ToString()] = value.ToString();
  }
  return row;
}

namespace {

// Binlog file record:
//   fixed32 body length
//   fixed32 crc (over body)
//   body: varint scn, varint change count, then per change:
//         u8 op, zigzag partition, LP table, LP primary key, LP encoded row
void EncodeTransaction(const CommittedTransaction& txn, std::string* out) {
  std::string body;
  PutVarint64(&body, static_cast<uint64_t>(txn.scn));
  PutVarint64(&body, txn.changes.size());
  for (const Change& change : txn.changes) {
    body.push_back(static_cast<char>(change.op));
    PutZigZag64(&body, change.partition);
    PutLengthPrefixed(&body, change.table);
    PutLengthPrefixed(&body, change.primary_key);
    std::string row_bytes;
    EncodeRow(change.row, &row_bytes);
    PutLengthPrefixed(&body, row_bytes);
  }
  PutFixed32(out, static_cast<uint32_t>(body.size()));
  PutFixed32(out, Crc32(body));
  out->append(body);
}

bool DecodeTransactionBody(Slice body, CommittedTransaction* txn) {
  uint64_t scn, count;
  if (!GetVarint64(&body, &scn) || !GetVarint64(&body, &count)) return false;
  txn->scn = static_cast<int64_t>(scn);
  txn->changes.clear();
  for (uint64_t i = 0; i < count; ++i) {
    if (body.empty()) return false;
    Change change;
    const uint8_t op = static_cast<uint8_t>(body[0]);
    if (op > static_cast<uint8_t>(Change::Op::kDelete)) return false;
    change.op = static_cast<Change::Op>(op);
    body.RemovePrefix(1);
    int64_t partition;
    Slice table, pk, row_bytes;
    if (!GetZigZag64(&body, &partition) ||
        !GetLengthPrefixed(&body, &table) || !GetLengthPrefixed(&body, &pk) ||
        !GetLengthPrefixed(&body, &row_bytes)) {
      return false;
    }
    change.partition = static_cast<int>(partition);
    change.table = table.ToString();
    change.primary_key = pk.ToString();
    auto row = DecodeRow(row_bytes);
    if (!row.ok()) return false;
    change.row = std::move(row.value());
    txn->changes.push_back(std::move(change));
  }
  return body.empty();
}

}  // namespace

Binlog::Binlog(BinlogOptions options)
    : options_(std::move(options)),
      fs_(options_.data_dir.empty()
              ? nullptr
              : (options_.fs != nullptr ? options_.fs : io::DefaultFs())) {
  if (options_.metrics != nullptr) {
    const obs::Labels labels{{"layer", "sqlstore.binlog"}};
    sync_count_ = options_.metrics->GetCounter("io.sync.count", labels);
    write_failed_ = options_.metrics->GetCounter("io.write.failed", labels);
    torn_truncations_ =
        options_.metrics->GetCounter("io.recovery.torn_truncations", labels);
  }
  if (fs_ != nullptr) {
    MutexLock lock(&mu_);
    RecoverLocked();
  }
  if (fs_ != nullptr && options_.sync == io::SyncPolicy::kAlways &&
      options_.group_commit && !options_.legacy_advance_on_failed_write) {
    io::GroupCommitOptions group_options;
    group_options.max_batch_bytes = options_.group_max_batch_bytes;
    group_options.max_wait_ms = options_.group_max_wait_ms;
    group_options.metrics = options_.metrics;
    group_options.layer = "sqlstore.binlog";
    group_ = std::make_unique<io::GroupCommitter>(
        [this] { return GroupSyncNow(); }, std::move(group_options));
  }
}

std::string Binlog::FilePath() const { return options_.data_dir + "/binlog.seg"; }

/// Replays the binlog file: CRC-validated records extend the in-memory log;
/// the scan stops at the first torn or corrupt record (or an SCN breaking
/// the dense order) and truncates the file there, so the next append lands
/// right after the last intact transaction.
void Binlog::RecoverLocked() {
  Status s = fs_->CreateDirs(options_.data_dir);
  if (!s.ok()) {
    recovery_status_ = s;
    damaged_ = true;
    return;
  }
  const std::string path = FilePath();
  if (!fs_->FileExists(path)) return;
  std::string data;
  s = fs_->ReadFile(path, &data);
  if (!s.ok()) {
    recovery_status_ = s;
    damaged_ = true;  // the file has bytes we cannot see; never append blind
    return;
  }
  size_t offset = 0;
  while (true) {
    Slice in(data.data() + offset, data.size() - offset);
    uint32_t length, crc;
    if (!GetFixed32(&in, &length) || !GetFixed32(&in, &crc)) break;
    if (in.size() < length) break;  // torn tail
    Slice body(in.data(), length);
    if (Crc32(body) != crc) break;  // torn or corrupt record
    CommittedTransaction txn;
    if (!DecodeTransactionBody(body, &txn)) break;
    if (txn.scn != next_scn_) break;  // dense commit order violated
    log_.push_back(std::move(txn));
    next_scn_++;
    offset += 8 + length;
  }
  if (offset < data.size()) {
    if (torn_truncations_ != nullptr) torn_truncations_->Increment();
    Status t = fs_->TruncateFile(path, static_cast<int64_t>(offset));
    if (!t.ok()) {
      recovery_status_ = t;
      if (write_failed_ != nullptr) write_failed_->Increment();
      damaged_ = true;  // garbage stays past offset; appends must not follow
    }
  }
  persisted_bytes_ = static_cast<int64_t>(offset);
  synced_bytes_ = persisted_bytes_;
  durable_scn_ = next_scn_ - 1;  // everything replayed is on stable storage
}

/// Write-only half of the persist: encodes into an arena-leased scratch,
/// stages the record through the submission ring, and advances
/// persisted_bytes_ on full acceptance. On failure the file is rolled back
/// to the last acknowledged byte (or, if even that fails, the binlog
/// declares itself damaged and refuses all further appends — the loud
/// alternative to silently burying an unacknowledged record).
Status Binlog::StageLocked(const CommittedTransaction& txn) {
  if (damaged_) {
    return Status::IOError("binlog damaged (unacked bytes on disk): " +
                           recovery_status_.message());
  }
  io::RecordArena::Scratch record(&arena_);
  EncodeTransaction(txn, record.get());
  if (file_ == nullptr) {
    auto file = fs_->OpenAppend(FilePath());
    if (!file.ok()) {
      if (write_failed_ != nullptr) write_failed_->Increment();
      return file.status();
    }
    file_ = std::move(file.value());
  }
  // One-record chain through the ring today; the shape a real io_uring
  // backend (and multi-record batches) plugs into.
  sq_.StageAppend(file_.get(), Slice(*record), static_cast<uint64_t>(txn.scn));
  sq_.Submit();
  io::Cqe cqe;
  int64_t accepted = 0;
  Status s;
  while (sq_.Reap(&cqe)) {
    accepted += cqe.accepted;
    if (!cqe.status.ok() && s.ok()) s = cqe.status;
  }
  if (s.ok() && accepted < static_cast<int64_t>(record->size())) {
    s = Status::IOError("short binlog write");
  }
  if (!s.ok()) {
    if (write_failed_ != nullptr) write_failed_->Increment();
    if (options_.legacy_advance_on_failed_write) {
      // The re-introduced bug: pretend the record landed. The file holds a
      // torn prefix that the next append will bury; recovery stops there.
      persisted_bytes_ += static_cast<int64_t>(record->size());
      return s;
    }
    file_.reset();
    unsynced_bytes_ = std::max<int64_t>(0, unsynced_bytes_ - accepted);
    Status t = fs_->TruncateFile(FilePath(), persisted_bytes_);
    if (!t.ok()) {
      damaged_ = true;
      if (recovery_status_.ok()) recovery_status_ = t;
    }
    return s;
  }
  unsynced_bytes_ += static_cast<int64_t>(record->size());
  persisted_bytes_ += static_cast<int64_t>(record->size());
  return Status::OK();
}

/// All-or-nothing persist of one transaction record (non-group path): the
/// write via StageLocked, then the policy-mandated inline sync. A failed
/// sync rolls the freshly written record back off the file too — the record
/// must not surface after a restart when its commit reported failure.
Status Binlog::PersistLocked(const CommittedTransaction& txn) {
  if (fs_ == nullptr) return Status::OK();
  const int64_t record_start = persisted_bytes_;
  Status s = StageLocked(txn);
  if (!s.ok()) return s;
  const int64_t record_bytes = persisted_bytes_ - record_start;
  const bool sync_due =
      options_.sync == io::SyncPolicy::kAlways ||
      (options_.sync == io::SyncPolicy::kInterval &&
       unsynced_bytes_ >= options_.sync_interval_bytes);
  if (!sync_due) return Status::OK();
  // sync-choke-point: inline per-commit fdatasync (non-group kAlways, and
  // interval-policy threshold syncs).
  s = file_->Sync();
  if (s.ok()) {
    if (sync_count_ != nullptr) sync_count_->Increment();
    unsynced_bytes_ = 0;
    synced_bytes_ = persisted_bytes_;
    durable_scn_ = txn.scn;
    return Status::OK();
  }
  if (write_failed_ != nullptr) write_failed_->Increment();
  if (options_.legacy_advance_on_failed_write) return s;
  file_.reset();
  persisted_bytes_ = record_start;
  unsynced_bytes_ = std::max<int64_t>(0, unsynced_bytes_ - record_bytes);
  Status t = fs_->TruncateFile(FilePath(), persisted_bytes_);
  if (!t.ok()) {
    damaged_ = true;
    if (recovery_status_.ok()) recovery_status_ = t;
  }
  return s;
}

Result<int64_t> Binlog::Append(std::vector<Change> changes) {
  if (!group_mode()) {
    MutexLock lock(&mu_);
    CommittedTransaction txn;
    txn.scn = next_scn_;  // assigned for real only if the persist succeeds
    txn.changes = std::move(changes);
    Status s = PersistLocked(txn);
    if (!s.ok()) return s;
    next_scn_++;
    log_.push_back(std::move(txn));
    if (fs_ == nullptr) durable_scn_ = log_.back().scn;
    return log_.back().scn;
  }
  // Group commit: write the record under mu_, then hand the fdatasync to
  // the committer with mu_ RELEASED — concurrent committers stage into the
  // same batch while the leader's sync is in flight, and one covering sync
  // acknowledges them all. The epoch is captured BEFORE staging: if a
  // failed group sync rolls the file back at any point after this capture,
  // SyncTo refuses to acknowledge (see io/group_commit.h — false errors are
  // safe, false acks are not).
  const uint64_t staged_epoch = group_->epoch();
  int64_t scn = 0;
  int64_t target = 0;
  {
    MutexLock lock(&mu_);
    CommittedTransaction txn;
    txn.scn = next_scn_;
    txn.changes = std::move(changes);
    Status s = StageLocked(txn);
    if (!s.ok()) return s;
    scn = txn.scn;
    next_scn_++;
    pending_.push_back(Pending{std::move(txn), persisted_bytes_});
    target = persisted_bytes_;
  }
  Status s = group_->SyncTo(target, staged_epoch);
  if (!s.ok()) return s;
  return scn;
}

Result<int64_t> Binlog::GroupSyncNow() {
  std::shared_ptr<io::WritableFile> file;
  int64_t covered = 0;
  {
    MutexLock lock(&mu_);
    file = file_;
    covered = persisted_bytes_;
    if (file == nullptr || covered <= synced_bytes_) return synced_bytes_;
  }
  // sync-choke-point: the group leader's one covering fdatasync — the only
  // sync the group-commit path ever issues, with mu_ released so committers
  // keep staging the next batch.
  Status s = file->Sync();
  MutexLock lock(&mu_);
  if (s.ok()) {
    if (sync_count_ != nullptr) sync_count_->Increment();
    synced_bytes_ = std::max(synced_bytes_, covered);
    unsynced_bytes_ = std::max<int64_t>(0, persisted_bytes_ - synced_bytes_);
    // Promote covered pending transactions, in stage order — log_ stays
    // dense and holds only durable commits.
    size_t promoted = 0;
    while (promoted < pending_.size() &&
           pending_[promoted].end_bytes <= synced_bytes_) {
      ++promoted;
    }
    for (size_t i = 0; i < promoted; ++i) {
      durable_scn_ = pending_[i].txn.scn;
      log_.push_back(std::move(pending_[i].txn));
    }
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<int64_t>(promoted));
    return synced_bytes_;
  }
  // Failed group sync: every byte past the last covering sync is
  // indeterminate on disk. Roll the file back to the durable frontier and
  // drop the in-flight batch — the committer bumps its epoch, so every
  // staged waiter gets an error instead of a false acknowledgement.
  if (write_failed_ != nullptr) write_failed_->Increment();
  file_.reset();
  Status t = fs_->TruncateFile(FilePath(), synced_bytes_);
  if (!t.ok()) {
    damaged_ = true;
    if (recovery_status_.ok()) recovery_status_ = t;
  }
  persisted_bytes_ = synced_bytes_;
  unsynced_bytes_ = 0;
  pending_.clear();
  next_scn_ = log_.empty() ? 1 : log_.back().scn + 1;
  return s;
}

int64_t Binlog::DurableScn() const {
  MutexLock lock(&mu_);
  return durable_scn_;
}

Status Binlog::recovery_status() const {
  MutexLock lock(&mu_);
  return recovery_status_;
}

std::vector<CommittedTransaction> Binlog::ReadAfter(int64_t from_scn,
                                                    int64_t max_count) const {
  MutexLock lock(&mu_);
  ++read_calls_;
  std::vector<CommittedTransaction> out;
  // SCNs are dense starting at 1, so the offset is direct.
  int64_t start_index = from_scn;  // scn N lives at index N-1; read after it
  for (int64_t i = start_index;
       i < static_cast<int64_t>(log_.size()) &&
       static_cast<int64_t>(out.size()) < max_count;
       ++i) {
    out.push_back(log_[i]);
  }
  return out;
}

int64_t Binlog::LastScn() const {
  MutexLock lock(&mu_);
  return log_.empty() ? 0 : log_.back().scn;
}

int64_t Binlog::ReadCalls() const {
  MutexLock lock(&mu_);
  return read_calls_;
}

int64_t Binlog::TransactionCount() const {
  MutexLock lock(&mu_);
  return static_cast<int64_t>(log_.size());
}

Status Database::CreateTable(const std::string& table) {
  MutexLock lock(&mu_);
  if (tables_.count(table) > 0) return Status::AlreadyExists(table);
  tables_[table];
  return Status::OK();
}

bool Database::HasTable(const std::string& table) const {
  MutexLock lock(&mu_);
  return tables_.count(table) > 0;
}

std::vector<std::string> Database::Tables() const {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  for (const auto& [name, rows] : tables_) out.push_back(name);
  return out;
}

void Database::SetPartitionFunction(std::function<int(Slice)> fn) {
  MutexLock lock(&mu_);
  partition_fn_ = std::move(fn);
}

void Database::AddTrigger(Trigger trigger) {
  MutexLock lock(&mu_);
  triggers_.push_back(std::move(trigger));
}

void Database::SetSemiSyncCallback(SemiSyncCallback callback) {
  MutexLock lock(&mu_);
  semi_sync_ = std::move(callback);
}

void Database::Transaction::Put(const std::string& table,
                                const std::string& primary_key, Row row) {
  Change change;
  change.table = table;
  change.primary_key = primary_key;
  change.row = std::move(row);
  change.op = Change::Op::kUpdate;  // resolved to insert/update at commit
  changes_.push_back(std::move(change));
}

void Database::Transaction::Delete(const std::string& table,
                                   const std::string& primary_key) {
  Change change;
  change.op = Change::Op::kDelete;
  change.table = table;
  change.primary_key = primary_key;
  changes_.push_back(std::move(change));
}

Result<int64_t> Database::Transaction::Commit() {
  return db_->CommitChanges(&changes_);
}

Result<int64_t> Database::Put(const std::string& table,
                              const std::string& primary_key, Row row) {
  Transaction txn = Begin();
  txn.Put(table, primary_key, std::move(row));
  return txn.Commit();
}

Result<int64_t> Database::Delete(const std::string& table,
                                 const std::string& primary_key) {
  Transaction txn = Begin();
  txn.Delete(table, primary_key);
  return txn.Commit();
}

int64_t Database::ReplayBinlog() {
  // Serialize against live commits so replay cannot interleave with them.
  MutexLock commit_lock(&commit_mu_);
  int64_t applied = 0;
  // SCNs are dense from 1; pull everything the recovery scan accepted.
  const auto transactions = binlog_.ReadAfter(0, binlog_.TransactionCount());
  MutexLock lock(&mu_);
  for (const auto& txn : transactions) {
    for (const auto& change : txn.changes) {
      auto& table = tables_[change.table];  // creates missing tables
      if (change.op == Change::Op::kDelete) {
        table.erase(change.primary_key);
      } else {
        table[change.primary_key] = change.row;
      }
      ++applied;
    }
  }
  return applied;
}

Result<int64_t> Database::CommitChanges(std::vector<Change>* changes) {
  // The commit lock serializes transactions, making binlog order the commit
  // order (timeline consistency downstream depends on this).
  MutexLock commit_lock(&commit_mu_);

  std::vector<Trigger> triggers;
  SemiSyncCallback semi_sync;
  {
    MutexLock lock(&mu_);
    // Validate before mutating: all-or-nothing.
    for (Change& change : *changes) {
      auto it = tables_.find(change.table);
      if (it == tables_.end()) {
        return Status::NotFound("no table " + change.table);
      }
      if (change.op != Change::Op::kDelete) {
        change.op = it->second.count(change.primary_key) > 0
                        ? Change::Op::kUpdate
                        : Change::Op::kInsert;
      }
      change.partition =
          partition_fn_ ? partition_fn_(change.primary_key) : -1;
    }
    triggers = triggers_;
    semi_sync = semi_sync_;
  }

  // Binlog first: if the durable record cannot be written, the commit fails
  // with the tables untouched — rows and binlog never disagree. (The commit
  // lock keeps other transactions from interleaving between the append and
  // the table apply below.)
  const auto appended = binlog_.Append(*changes);
  if (!appended.ok()) {
    return Status::Unavailable("binlog append failed: " +
                               appended.status().message());
  }
  const int64_t scn = appended.value();

  {
    MutexLock lock(&mu_);
    for (const Change& change : *changes) {
      auto& rows = tables_[change.table];
      if (change.op == Change::Op::kDelete) {
        rows.erase(change.primary_key);
      } else {
        rows[change.primary_key] = change.row;
      }
    }
  }

  CommittedTransaction txn;
  txn.scn = scn;
  txn.changes = *changes;
  if (semi_sync) {
    Status s = semi_sync(txn);
    if (!s.ok()) {
      // The write reached the binlog but not the second location; the paper's
      // durability contract is violated, surface it to the committer.
      return Status::Unavailable("semi-sync replication failed: " +
                                 s.message());
    }
  }
  for (const Trigger& trigger : triggers) {
    for (const Change& change : txn.changes) trigger(change, scn);
  }
  changes->clear();
  return scn;
}

Result<Row> Database::Get(const std::string& table,
                          const std::string& primary_key) const {
  MutexLock lock(&mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no table " + table);
  auto rit = it->second.find(primary_key);
  if (rit == it->second.end()) return Status::NotFound(primary_key);
  return rit->second;
}

Status Database::Scan(
    const std::string& table,
    const std::function<bool(const std::string&, const Row&)>& visitor) const {
  // Snapshot the table, then visit without the lock: a visitor is allowed
  // to call back into the database (Get, Put, ...), which would self-
  // deadlock if mu_ were held across the callback.
  std::map<std::string, Row> snapshot;
  {
    MutexLock lock(&mu_);
    auto it = tables_.find(table);
    if (it == tables_.end()) return Status::NotFound("no table " + table);
    snapshot = it->second;
  }
  for (const auto& [pk, row] : snapshot) {
    if (!visitor(pk, row)) break;
  }
  return Status::OK();
}

int64_t Database::RowCount(const std::string& table) const {
  MutexLock lock(&mu_);
  auto it = tables_.find(table);
  return it == tables_.end() ? 0 : static_cast<int64_t>(it->second.size());
}

}  // namespace lidi::sqlstore
