#include "net/frame.h"

#include <zlib.h>

#include <cstring>
#include <limits>

namespace lidi::net {

namespace {

void PutU16(std::string* out, uint16_t v) {
  char b[2] = {static_cast<char>(v & 0xff), static_cast<char>(v >> 8)};
  out->append(b, 2);
}

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  out->append(b, 8);
}

uint16_t GetU16(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint16_t>(u[0] | (u[1] << 8));
}

uint32_t GetU32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  for (int i = 7; i >= 0; --i) v = (v << 8) | u[i];
  return v;
}

uint32_t Crc(uint32_t seed, const char* data, size_t n) {
  return static_cast<uint32_t>(
      crc32(seed, reinterpret_cast<const Bytef*>(data), static_cast<uInt>(n)));
}

}  // namespace

EncodedFrame EncodeFrame(const Frame& frame, Slice payload) {
  EncodedFrame out;
  const size_t strings = frame.from.size() + frame.to.size() +
                         frame.method.size();
  const size_t body = kFrameFixedHeader + strings + payload.size() + 4;

  out.head.reserve(4 + kFrameFixedHeader + strings);
  PutU32(&out.head, static_cast<uint32_t>(body));
  PutU32(&out.head, kFrameMagic);
  out.head.push_back(static_cast<char>(kFrameVersion));
  out.head.push_back(static_cast<char>(frame.type));
  PutU16(&out.head, 0);  // flags
  PutU64(&out.head, frame.correlation_id);
  PutU64(&out.head, frame.trace_id);
  PutU64(&out.head, frame.span_id);
  PutU64(&out.head, static_cast<uint64_t>(frame.deadline_micros));
  PutU32(&out.head, static_cast<uint32_t>(frame.status_code));
  PutU16(&out.head, static_cast<uint16_t>(frame.from.size()));
  PutU16(&out.head, static_cast<uint16_t>(frame.to.size()));
  PutU16(&out.head, static_cast<uint16_t>(frame.method.size()));
  out.head.append(frame.from);
  out.head.append(frame.to);
  out.head.append(frame.method);

  uint32_t crc = Crc(0, out.head.data() + 4, out.head.size() - 4);
  crc = Crc(crc, payload.data(), payload.size());
  PutU32(&out.tail, crc);
  return out;
}

std::string EncodeFrameToString(const Frame& frame, Slice payload) {
  EncodedFrame e = EncodeFrame(frame, payload);
  std::string wire;
  wire.reserve(e.wire_size(payload.size()));
  wire.append(e.head);
  wire.append(payload.data(), payload.size());
  wire.append(e.tail);
  return wire;
}

DecodeStatus DecodeFrame(Slice buf, size_t max_frame_bytes, Frame* frame,
                         size_t* consumed, std::string* error) {
  if (buf.size() < 4) return DecodeStatus::kNeedMore;
  const uint64_t body = GetU32(buf.data());
  if (body < kFrameFixedHeader + 4) {
    *error = "frame shorter than fixed header";
    return DecodeStatus::kError;
  }
  if (body > max_frame_bytes) {
    *error = "frame of " + std::to_string(body) + " bytes exceeds limit of " +
             std::to_string(max_frame_bytes);
    return DecodeStatus::kError;
  }
  if (buf.size() < 4 + body) return DecodeStatus::kNeedMore;

  const char* p = buf.data() + 4;
  if (GetU32(p) != kFrameMagic) {
    *error = "bad frame magic";
    return DecodeStatus::kError;
  }
  const uint8_t version = static_cast<uint8_t>(p[4]);
  if (version != kFrameVersion) {
    *error = "unsupported frame version " + std::to_string(version);
    return DecodeStatus::kError;
  }
  const uint8_t type = static_cast<uint8_t>(p[5]);
  if (type != Frame::kRequest && type != Frame::kResponse) {
    *error = "unknown frame type " + std::to_string(type);
    return DecodeStatus::kError;
  }

  const uint32_t wire_crc = GetU32(p + body - 4);
  const uint32_t crc = Crc(0, p, body - 4);
  if (crc != wire_crc) {
    *error = "frame CRC mismatch";
    return DecodeStatus::kError;
  }

  frame->type = type;
  // p[6..7] flags (reserved, ignored).
  frame->correlation_id = GetU64(p + 8);
  frame->trace_id = GetU64(p + 16);
  frame->span_id = GetU64(p + 24);
  frame->deadline_micros = static_cast<int64_t>(GetU64(p + 32));
  frame->status_code = static_cast<Code>(GetU32(p + 40));
  const size_t from_len = GetU16(p + 44);
  const size_t to_len = GetU16(p + 46);
  const size_t method_len = GetU16(p + 48);
  const size_t strings = from_len + to_len + method_len;
  if (kFrameFixedHeader + strings + 4 > body) {
    *error = "frame string lengths exceed frame body";
    return DecodeStatus::kError;
  }
  const char* s = p + kFrameFixedHeader;
  frame->from.assign(s, from_len);
  frame->to.assign(s + from_len, to_len);
  frame->method.assign(s + from_len + to_len, method_len);
  const char* payload = s + strings;
  const size_t payload_len = body - kFrameFixedHeader - strings - 4;
  frame->payload.assign(payload, payload_len);
  *consumed = 4 + body;
  return DecodeStatus::kOk;
}

Status StatusFromWire(Code code, std::string message) {
  switch (code) {
    case Code::kOk:
      return Status::OK();
    case Code::kNotFound:
      return Status::NotFound(std::move(message));
    case Code::kAlreadyExists:
      return Status::AlreadyExists(std::move(message));
    case Code::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case Code::kCorruption:
      return Status::Corruption(std::move(message));
    case Code::kIOError:
      return Status::IOError(std::move(message));
    case Code::kTimeout:
      return Status::Timeout(std::move(message));
    case Code::kUnavailable:
      return Status::Unavailable(std::move(message));
    case Code::kObsoleteVersion:
      return Status::ObsoleteVersion(std::move(message));
    case Code::kInsufficientNodes:
      return Status::InsufficientNodes(std::move(message));
    case Code::kNotSupported:
      return Status::NotSupported(std::move(message));
    case Code::kAborted:
      return Status::Aborted(std::move(message));
    case Code::kInternal:
      return Status::Internal(std::move(message));
    case Code::kOverloaded:
      return Status::Overloaded(std::move(message));
  }
  return Status::Internal("unknown wire status code: " + std::move(message));
}

}  // namespace lidi::net
