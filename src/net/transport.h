#ifndef LIDI_NET_TRANSPORT_H_
#define LIDI_NET_TRANSPORT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/buffer.h"
#include "common/slice.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace lidi::net {

/// Node address, e.g. "voldemort-node-3" or "relay-1". All lidi tiers
/// communicate through Transport::Call rather than direct object references
/// so that tests can inject the transient failures the paper calls prevalent
/// in production datacenters (Section II.A, [FLP+10]). Numbered tier nodes
/// build theirs through the typed factory in net/address.h so both backends
/// resolve them uniformly.
using Address = std::string;

/// A per-method RPC handler: takes the serialized request, produces the
/// serialized response or an error.
using Handler = std::function<Result<std::string>(Slice request)>;

/// A zero-copy RPC handler: the response is a pinned view into storage the
/// handler owns (e.g. a log segment buffer), so serving it moves no payload
/// bytes in-process. The transport analogue of the paper's sendfile path
/// (V.B): the broker hands the "socket" its file-channel bytes directly.
/// This is the primary handler kind; string Handlers are adapted onto it.
using PayloadHandler = std::function<Result<PinnedSlice>(Slice request)>;

/// Per-call options: the caller's trace context (the RPC is recorded as a
/// span under it, and nested calls the handler places inherit it) and an
/// absolute deadline in the transport clock's microseconds (0 = none; the
/// tighter of this and the trace's own deadline budget wins).
struct CallOptions {
  obs::TraceContext* trace = nullptr;
  int64_t deadline_micros = 0;
};

/// Counters describing traffic through one endpoint. The Databus fan-out
/// bench (E9) uses the source database's counters to show consumer count
/// does not increase source load.
///
/// This struct is a *view*: the counters live in the transport's
/// obs::MetricsRegistry ("net.calls_sent{endpoint=...}" et al.) and
/// GetStats materializes them, so the same numbers appear in
/// MetricsRegistry::Snapshot() and here.
struct EndpointStats {
  int64_t calls_received = 0;
  int64_t calls_sent = 0;
  int64_t bytes_received = 0;
  int64_t bytes_sent = 0;
};

/// The transport abstraction every tier is wired against (DESIGN.md §10).
///
/// Two backends implement it behind one caller-facing API:
///  - net::Network (net/network.h): the deterministic in-process simulated
///    transport — handlers run synchronously in the caller's thread, faults
///    are injected from a seeded RNG, and the sim harness replays byte-
///    identical traces from a seed.
///  - net::TcpTransport (net/tcp_transport.h): a real epoll reactor over
///    nonblocking localhost TCP sockets with a length-prefixed framing
///    codec, per-peer connection pooling, and a handler worker pool.
///
/// API shape: the payload-view path (CallPayload/RegisterPayload, moving
/// PinnedSlices) is the primary surface and the only virtual dispatch
/// path; the owned-string path (Call/Register) is a thin non-virtual
/// wrapper over it, so fault injection, stats, deadline enforcement, and
/// span recording exist exactly once per backend.
///
/// Error contract, identical on both Call paths and both backends:
///  - Unavailable — destination down/unreachable/disconnected, or the
///    transport has been Shutdown();
///  - Timeout    — the call's deadline budget is exhausted (before or
///    during the call);
///  - NotFound   — no endpoint or no such method at the endpoint;
///  - Overloaded — the backend's bounded dispatch queue shed the request
///    before any handler work (see each backend's dispatch-limit option);
///  - otherwise the handler's own result.
class Transport {
 public:
  virtual ~Transport() = default;

  /// The registry RPC metrics and spans land in. Components default to this
  /// registry for their own instruments, unifying export.
  virtual obs::MetricsRegistry* metrics() const = 0;

  /// Registers a zero-copy handler for (address, method). Re-registering
  /// replaces (either kind — there is one handler table).
  virtual void RegisterPayload(const Address& addr, const std::string& method,
                               PayloadHandler handler) = 0;

  /// Removes an endpoint entirely (all its methods).
  virtual void Unregister(const Address& addr) = 0;

  /// Invokes `method` on `to`; the response payload is pinned, not copied
  /// in-process (over TCP it degrades to one deserialize copy per side).
  virtual Result<PinnedSlice> CallPayload(const Address& from,
                                          const Address& to,
                                          const std::string& method,
                                          Slice request,
                                          const CallOptions& options) = 0;

  /// Stops dispatch: every subsequent Call/CallPayload (string or payload
  /// route, either backend) fails Unavailable("transport shut down").
  /// Idempotent. Handlers stay registered; there is no Restart.
  virtual void Shutdown() = 0;

  virtual EndpointStats GetStats(const Address& addr) const = 0;
  virtual void ResetStats() = 0;

  /// Total number of calls placed since construction/ResetStats.
  virtual int64_t total_calls() const = 0;

  // --- non-virtual convenience surface (one dispatch path underneath) ---

  /// Registers an owned-string handler: adapted onto the payload table by
  /// moving the handler's string into a pinned buffer (no byte copy).
  void Register(const Address& addr, const std::string& method,
                Handler handler);

  /// Owned-string call: CallPayload plus one materializing copy of the
  /// response bytes. Callers on a hot path should use CallPayload.
  Result<std::string> Call(const Address& from, const Address& to,
                           const std::string& method, Slice request,
                           const CallOptions& options);
  Result<std::string> Call(const Address& from, const Address& to,
                           const std::string& method, Slice request) {
    return Call(from, to, method, request, CallOptions{});
  }

  Result<PinnedSlice> CallPayload(const Address& from, const Address& to,
                                  const std::string& method, Slice request) {
    return CallPayload(from, to, method, request, CallOptions{});
  }
};

/// Identity of the caller whose request the current thread is dispatching:
/// the `from` address of the innermost in-flight handler invocation on this
/// thread (carried by the frame header over TCP, the call arguments in-sim),
/// or "" outside a handler. Serving tiers use this as the client key for
/// per-client quotas (common/overload.h) — identical on both backends, so
/// quota decisions are backend-independent.
const Address& CallerIdentity();

namespace internal {

/// RAII swap of the ambient caller identity around a handler invocation
/// (both backends; same carrier pattern as AmbientTraceScope below).
class CallerScope {
 public:
  explicit CallerScope(const Address& from);
  ~CallerScope();

  CallerScope(const CallerScope&) = delete;
  CallerScope& operator=(const CallerScope&) = delete;

 private:
  Address saved_;
};

/// Ambient trace context for nested calls: handlers run synchronously in
/// the dispatching thread (the caller's thread in-sim, a worker thread over
/// TCP), so a thread-local is exactly the right carrier. While a handler
/// runs, the ambient context is the span of the call that invoked it; any
/// call the handler places without explicit CallOptions::trace attaches
/// there (and inherits the deadline budget). Zero trace_id = none.
const obs::TraceContext& AmbientTrace();

/// RAII swap of the ambient context around a handler invocation.
class AmbientTraceScope {
 public:
  explicit AmbientTraceScope(const obs::TraceContext& ctx);
  ~AmbientTraceScope();

  AmbientTraceScope(const AmbientTraceScope&) = delete;
  AmbientTraceScope& operator=(const AmbientTraceScope&) = delete;

 private:
  obs::TraceContext saved_;
};

/// The tighter of two absolute deadlines (0 = none).
int64_t MinDeadline(int64_t a, int64_t b);

/// Span setup shared by both backends: resolves the parent (explicit trace
/// option, else the ambient context of the enclosing handler, else a fresh
/// root trace), stamps ids/name/peer/start, and computes the effective
/// deadline (the tighter of the option's and the parent's budget).
struct CallSpan {
  obs::SpanRecord span;
  int64_t deadline_micros = 0;

  static CallSpan Begin(const CallOptions& options, const Address& to,
                        const std::string& method, size_t request_bytes,
                        int64_t now_micros);

  /// Child context nested calls placed by the handler should inherit.
  obs::TraceContext ChildContext() const {
    return obs::TraceContext{span.trace_id, span.span_id, deadline_micros};
  }

  /// Stamps outcome/bytes/duration and records the span.
  void Finish(const Status& status, size_t response_bytes, int64_t now_micros,
              obs::MetricsRegistry* metrics);
};

}  // namespace internal

}  // namespace lidi::net

#endif  // LIDI_NET_TRANSPORT_H_
