#ifndef LIDI_NET_TCP_TRANSPORT_H_
#define LIDI_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/overload.h"
#include "common/sync.h"
#include "net/frame.h"
#include "net/transport.h"

namespace lidi::net {

struct TcpTransportOptions {
  /// Interface listeners bind to and pooled connections dial. Localhost by
  /// default: the bench topology runs every tier in one process over real
  /// kernel sockets.
  std::string bind_host = "127.0.0.1";

  /// Epoll reactor threads. Each owns one epoll instance; listeners and
  /// connections are sharded across them round-robin.
  int reactor_threads = 1;

  /// Handler worker threads. Request frames are executed here, never on a
  /// reactor thread, so a handler that places nested calls cannot deadlock
  /// the event loop that must deliver its responses.
  int worker_threads = 4;

  /// Client-side pooled connections per destination address.
  int connections_per_peer = 2;

  /// Frames above this are a protocol error (connection poisoned).
  size_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Synchronous connect budget per attempt.
  int64_t connect_timeout_millis = 1000;

  /// Calls with no deadline still complete or fail within this bound.
  int64_t default_call_timeout_millis = 10'000;

  /// Reconnect backoff after a failed dial: initial doubles per consecutive
  /// failure up to max; attempts inside the window fast-fail Unavailable.
  int64_t reconnect_backoff_initial_millis = 5;
  int64_t reconnect_backoff_max_millis = 500;

  /// Bounded request dispatch: maximum admitted request frames in flight
  /// (queued for a worker or executing in one). When the budget is
  /// exhausted the reactor replies Overloaded("dispatch queue full at
  /// <to>") immediately — reject-before-work, the worker queue stays
  /// bounded — and increments "net.dispatch.shed{endpoint=<to>}".
  /// Byte-identical behavior to the sim backend's max_dispatch_inflight
  /// (transport_parity_test). 0 = unbounded.
  int64_t max_dispatch_inflight = 0;
};

/// Real-socket backend of net::Transport (DESIGN.md §10): an epoll reactor
/// pool over nonblocking localhost TCP with the net/frame.h codec.
///
/// Shape (the synkafka broker/connection state machine, sync-call-over-
/// async): callers serialize a request frame, enqueue it on a pooled
/// per-peer connection, and park on the connection's CondVar; reactor
/// threads move bytes and match response frames to pending calls by
/// correlation id. Server-side, complete request frames are handed to a
/// worker pool that runs the registered handler and streams the response
/// back (a pinned payload is written as its own iovec-style chunk — the
/// zero-copy fetch path costs one deserialize copy per side, never more).
///
/// What sim guarantees that this backend does not: determinism (kernel
/// scheduling and socket readiness order are real), virtual time, and
/// seeded fault injection. What both guarantee identically: the Transport
/// error contract, trace-span/deadline propagation (through the frame
/// header here, the ambient thread-local in-sim), and endpoint stats.
///
/// Lifecycle: RegisterPayload(addr, ...) binds one listener per address
/// (port 0 = kernel-assigned, resolvable via ListenPort); Shutdown() stops
/// dispatch; the destructor joins every thread. Callers must have returned
/// before the transport is destroyed.
class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpTransportOptions options = {},
                        obs::MetricsRegistry* metrics = nullptr,
                        const Clock* clock = nullptr);
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  obs::MetricsRegistry* metrics() const override { return metrics_; }

  void RegisterPayload(const Address& addr, const std::string& method,
                       PayloadHandler handler) override;

  void Unregister(const Address& addr) override;

  using Transport::Call;
  using Transport::CallPayload;

  Result<PinnedSlice> CallPayload(const Address& from, const Address& to,
                                  const std::string& method, Slice request,
                                  const CallOptions& options) override;

  void Shutdown() override;

  EndpointStats GetStats(const Address& addr) const override;
  void ResetStats() override;
  int64_t total_calls() const override { return total_calls_.load(); }

  /// The kernel-assigned port `addr`'s listener accepts on (0 if `addr` has
  /// no registered handlers). Lets a second process — or a raw test socket —
  /// dial this endpoint.
  uint16_t ListenPort(const Address& addr) const;

  /// Maps a destination address served by another process/transport to
  /// host:port, for cross-process topologies.
  void AddStaticPeer(const Address& addr, const std::string& host,
                     uint16_t port);

  /// Test/chaos hook: hard-closes every pooled connection to `peer`, as a
  /// peer crash would. In-flight calls on those connections fail
  /// Unavailable; the next call redials (subject to backoff).
  void DropConnections(const Address& peer);

 private:
  struct FdSource;
  struct Listener;
  struct Connection;
  struct PendingCall;
  struct OutChunk;
  struct Reactor;
  struct PeerPool;
  struct Work;

  /// Cached per-endpoint registry counters (same backing scheme as the sim
  /// backend: EndpointStats is a view over the registry).
  struct EndpointInstruments {
    obs::Counter* calls_received = nullptr;
    obs::Counter* calls_sent = nullptr;
    obs::Counter* bytes_received = nullptr;
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* dispatch_shed = nullptr;
  };

  EndpointInstruments* InstrumentsLocked(const Address& addr)
      LIDI_REQUIRES(state_mu_);
  obs::LatencyHistogram* MethodLatency(const std::string& method);

  /// Resolves `to` to host:port — local listener first, then static peers.
  Status Resolve(const Address& to, std::string* host, uint16_t* port) const;

  /// Returns an open pooled connection to `to`, dialing if needed
  /// (nonblocking connect + poll, bounded by the tighter of the connect
  /// budget and `deadline_micros`). Applies reconnect backoff.
  Result<std::shared_ptr<Connection>> GetConnection(const Address& to,
                                                    int64_t deadline_micros);

  std::shared_ptr<Connection> DialLocked(const Address& to,
                                         const std::string& host,
                                         uint16_t port,
                                         int64_t deadline_micros,
                                         Status* error);

  void ReactorLoop(Reactor* reactor);
  void WorkerLoop();
  void HandleRequest(const std::shared_ptr<Connection>& conn, Frame frame);
  void ReadConn(Reactor* reactor, const std::shared_ptr<Connection>& conn);
  void ReapConn(Reactor* reactor, const std::shared_ptr<Connection>& conn,
                const Status& status);
  void AcceptAll(Reactor* reactor, const std::shared_ptr<Listener>& listener);
  void SendFrame(const std::shared_ptr<Connection>& conn, EncodedFrame frame,
                 PinnedSlice payload);
  void StopThreads();

  const TcpTransportOptions options_;
  obs::MetricsRegistry* metrics_;  // never null
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  const Clock* const clock_;

  /// Transport state: handler table, listeners, peer pools, stats caches.
  /// Never held across a handler invocation or a blocking socket op (dial
  /// happens with it released).
  mutable Mutex state_mu_{"net.tcp.state", lockrank::kNetTcpState};
  std::map<Address, std::map<std::string, PayloadHandler>> handlers_
      LIDI_GUARDED_BY(state_mu_);
  std::map<Address, std::shared_ptr<Listener>> listeners_
      LIDI_GUARDED_BY(state_mu_);
  std::map<Address, std::pair<std::string, uint16_t>> static_peers_
      LIDI_GUARDED_BY(state_mu_);
  std::map<Address, PeerPool> pools_ LIDI_GUARDED_BY(state_mu_);
  std::map<Address, EndpointInstruments> stats_ LIDI_GUARDED_BY(state_mu_);
  std::map<std::string, obs::LatencyHistogram*> method_latency_
      LIDI_GUARDED_BY(state_mu_);  // cache
  bool shutdown_ LIDI_GUARDED_BY(state_mu_) = false;

  // tsa-ok: populated once during construction; each Reactor has its own
  // mutex for the state its thread shares with callers.
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::atomic<size_t> next_reactor_{0};

  /// Worker queue: request frames waiting for a handler thread.
  Mutex queue_mu_{"net.tcp.queue", lockrank::kNetTcpQueue};
  CondVar queue_cv_;
  std::deque<Work> queue_ LIDI_GUARDED_BY(queue_mu_);
  bool stopping_ LIDI_GUARDED_BY(queue_mu_) = false;
  // tsa-ok: spawned in the constructor, joined in Stop/destructor; worker
  // threads never touch the vector itself.
  std::vector<std::thread> workers_;

  std::atomic<uint64_t> next_correlation_{1};
  std::atomic<int64_t> total_calls_{0};
  std::atomic<bool> threads_stopped_{false};

  /// Bounded request dispatch (options_.max_dispatch_inflight): a reactor
  /// takes a slot before enqueueing a request frame; the worker releases it
  /// after the handler's response is sent. Lock-free.
  InflightLimiter dispatch_limiter_;
};

}  // namespace lidi::net

#endif  // LIDI_NET_TCP_TRANSPORT_H_
