#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

namespace lidi::net {

namespace {

constexpr int kSourceWake = 0;
constexpr int kSourceListener = 1;
constexpr int kSourceConn = 2;

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

/// One registered epoll interest: a wake eventfd, a listener, or a
/// connection. epoll_event.data.ptr points here; the owning reactor's
/// sources map holds the shared_ptr that keeps it alive until the fd is
/// deregistered.
struct TcpTransport::FdSource {
  int kind;
  int fd = -1;
  virtual ~FdSource() = default;
};

struct TcpTransport::Listener : FdSource {
  Address addr;
  uint16_t port = 0;
  Reactor* reactor = nullptr;
};

/// A parked synchronous call: filled in by the reactor when the matching
/// response frame arrives (or the connection dies), then claimed by the
/// caller. All fields are guarded by the owning connection's mu.
struct TcpTransport::PendingCall {
  bool done = false;
  Status status = Status::OK();
  std::string payload;
};

/// One queued outbound frame: head | payload | tail on the wire. The
/// payload rides as a PinnedSlice so a broker's segment bytes are never
/// copied into the outbox (the sendfile-shaped half of the TCP path).
struct TcpTransport::OutChunk {
  std::string head;
  PinnedSlice payload;
  std::string tail;
  size_t pos = 0;

  size_t size() const {
    return head.size() + payload.size() + tail.size();
  }
};

struct TcpTransport::Connection : FdSource {
  Reactor* reactor = nullptr;
  Address peer;           // destination address (client conns only)
  bool is_client = false;

  Mutex mu{"net.tcp.conn", lockrank::kNetTcpConn};
  CondVar cv;
  std::deque<OutChunk> outbox LIDI_GUARDED_BY(mu);
  std::map<uint64_t, PendingCall> pending LIDI_GUARDED_BY(mu);
  bool closed LIDI_GUARDED_BY(mu) = false;
  Status close_status LIDI_GUARDED_BY(mu) = Status::OK();
  bool want_write LIDI_GUARDED_BY(mu) = false;

  /// Reactor-thread-only receive buffer (no lock).
  std::string inbuf;

  /// Fails every parked call and marks the connection dead. The fd itself
  /// is closed only by the owning reactor (or final teardown), so the fd
  /// number cannot be reused while epoll events for it are in flight.
  void CloseLocked(const Status& status) LIDI_REQUIRES(mu) {
    if (closed) return;
    closed = true;
    close_status = status;
    for (auto& [corr, call] : pending) {
      if (call.done) continue;
      call.done = true;
      call.status = status;
    }
    cv.NotifyAll();
  }

  /// Writes as much of the outbox as the socket accepts. Returns false on
  /// a fatal socket error (the connection is CloseLocked'd); leftover
  /// bytes arm EPOLLOUT via want_write.
  bool FlushLocked() LIDI_REQUIRES(mu) {
    while (!outbox.empty()) {
      OutChunk& chunk = outbox.front();
      // The chunk's three segments, addressed by a single running offset.
      const struct {
        const char* data;
        size_t size;
      } segments[3] = {{chunk.head.data(), chunk.head.size()},
                       {chunk.payload.data(), chunk.payload.size()},
                       {chunk.tail.data(), chunk.tail.size()}};
      size_t base = 0;
      bool chunk_done = true;
      for (const auto& segment : segments) {
        if (chunk.pos >= base + segment.size) {
          base += segment.size;
          continue;
        }
        const size_t off = chunk.pos - base;
        const ssize_t n = ::send(fd, segment.data + off, segment.size - off,
                                 MSG_NOSIGNAL);
        if (n > 0) {
          chunk.pos += static_cast<size_t>(n);
          if (chunk.pos < base + segment.size) {
            chunk_done = false;  // short write: socket buffer is full
            break;
          }
          base += segment.size;
          continue;
        }
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
          chunk_done = false;
          break;
        }
        if (n < 0 && errno == EINTR) {
          chunk_done = false;
          break;  // retry on the next writable event
        }
        CloseLocked(Status::Unavailable(Errno("send")));
        ::shutdown(fd, SHUT_RDWR);  // kick the reactor to reap the fd
        return false;
      }
      if (!chunk_done) {
        ArmWriteLocked();
        return true;
      }
      outbox.pop_front();
    }
    return true;
  }

  void ArmWriteLocked() LIDI_REQUIRES(mu);
};

/// One epoll loop: owns an epoll instance, a wake eventfd, and the sources
/// registered with it. Other threads may epoll_ctl fds in (kernel-safe) but
/// only the reactor thread (or final single-threaded teardown) closes them.
struct TcpTransport::Reactor {
  int epfd = -1;
  std::shared_ptr<FdSource> wake;
  std::thread thread;
  std::atomic<bool> stop{false};

  Mutex mu{"net.tcp.reactor", lockrank::kNetTcpReactor};
  std::map<FdSource*, std::shared_ptr<FdSource>> sources LIDI_GUARDED_BY(mu);
  /// Sources other threads want closed (listener teardown, dropped pools);
  /// the reactor drains this after each wake so fd close stays single-owner.
  std::vector<std::shared_ptr<FdSource>> to_close LIDI_GUARDED_BY(mu);

  void AddSource(std::shared_ptr<FdSource> source, uint32_t events) {
    epoll_event ev{};
    ev.events = events;
    ev.data.ptr = source.get();
    {
      MutexLock lock(&mu);
      sources[source.get()] = source;
    }
    ::epoll_ctl(epfd, EPOLL_CTL_ADD, source->fd, &ev);
  }

  void RequestClose(std::shared_ptr<FdSource> source) {
    {
      MutexLock lock(&mu);
      to_close.push_back(std::move(source));
    }
    Wake();
  }

  void Wake() {
    uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake->fd, &one, sizeof(one));
  }

  void RemoveAndClose(FdSource* source) {
    ::epoll_ctl(epfd, EPOLL_CTL_DEL, source->fd, nullptr);
    ::close(source->fd);
    source->fd = -1;
    MutexLock lock(&mu);
    sources.erase(source);
  }
};

void TcpTransport::Connection::ArmWriteLocked() {
  if (want_write || closed) return;
  want_write = true;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT;
  ev.data.ptr = static_cast<FdSource*>(this);
  ::epoll_ctl(reactor->epfd, EPOLL_CTL_MOD, fd, &ev);
}

struct TcpTransport::PeerPool {
  std::vector<std::shared_ptr<Connection>> conns;
  size_t next = 0;
  int consecutive_failures = 0;
  int64_t not_before_micros = 0;
};

struct TcpTransport::Work {
  std::shared_ptr<Connection> conn;
  Frame frame;
};

TcpTransport::TcpTransport(TcpTransportOptions options,
                           obs::MetricsRegistry* metrics, const Clock* clock)
    : options_(options),
      clock_(clock != nullptr ? clock : SystemClock::Default()),
      dispatch_limiter_(options.max_dispatch_inflight) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>(clock_);
    metrics_ = owned_metrics_.get();
  } else {
    metrics_ = metrics;
  }

  const int n_reactors = std::max(1, options_.reactor_threads);
  reactors_.reserve(static_cast<size_t>(n_reactors));
  for (int i = 0; i < n_reactors; ++i) {
    auto reactor = std::make_unique<Reactor>();
    reactor->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    auto wake = std::make_shared<FdSource>();
    wake->kind = kSourceWake;
    wake->fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    reactor->wake = wake;
    reactor->AddSource(wake, EPOLLIN);
    reactors_.push_back(std::move(reactor));
  }
  for (auto& reactor : reactors_) {
    Reactor* r = reactor.get();
    r->thread = std::thread([this, r] { ReactorLoop(r); });
  }
  const int n_workers = std::max(1, options_.worker_threads);
  workers_.reserve(static_cast<size_t>(n_workers));
  for (int i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TcpTransport::~TcpTransport() {
  Shutdown();
  StopThreads();
}

void TcpTransport::Shutdown() {
  MutexLock lock(&state_mu_);
  shutdown_ = true;
}

void TcpTransport::StopThreads() {
  if (threads_stopped_.exchange(true)) return;
  {
    MutexLock lock(&queue_mu_);
    stopping_ = true;
    queue_cv_.NotifyAll();
  }
  for (auto& worker : workers_) worker.join();
  for (auto& reactor : reactors_) {
    reactor->stop.store(true);
    reactor->Wake();
    reactor->thread.join();
  }
  // Single-threaded from here: fail every parked call, then close every fd.
  for (auto& reactor : reactors_) {
    std::vector<std::shared_ptr<FdSource>> sources;
    {
      MutexLock lock(&reactor->mu);
      for (auto& [ptr, source] : reactor->sources) sources.push_back(source);
      reactor->sources.clear();
      reactor->to_close.clear();
    }
    for (auto& source : sources) {
      if (source->kind == kSourceConn) {
        auto* conn = static_cast<Connection*>(source.get());
        MutexLock lock(&conn->mu);
        conn->CloseLocked(Status::Unavailable("transport shut down"));
      }
      if (source->fd >= 0) ::close(source->fd);
      source->fd = -1;
    }
    ::close(reactor->epfd);
  }
  MutexLock lock(&state_mu_);
  listeners_.clear();
  pools_.clear();
}

// --- registration ----------------------------------------------------------

void TcpTransport::RegisterPayload(const Address& addr,
                                   const std::string& method,
                                   PayloadHandler handler) {
  MutexLock lock(&state_mu_);
  handlers_[addr][method] = std::move(handler);
  if (listeners_.count(addr) > 0) return;

  auto listener = std::make_shared<Listener>();
  listener->kind = kSourceListener;
  listener->addr = addr;
  listener->fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (listener->fd < 0) return;  // calls to addr will fail Unavailable
  int one = 1;
  ::setsockopt(listener->fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_port = 0;  // kernel-assigned; resolved via the listener map
  ::inet_pton(AF_INET, options_.bind_host.c_str(), &sin.sin_addr);
  if (::bind(listener->fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin)) <
          0 ||
      ::listen(listener->fd, 128) < 0) {
    ::close(listener->fd);
    return;
  }
  socklen_t len = sizeof(sin);
  ::getsockname(listener->fd, reinterpret_cast<sockaddr*>(&sin), &len);
  listener->port = ntohs(sin.sin_port);

  Reactor* reactor =
      reactors_[next_reactor_.fetch_add(1) % reactors_.size()].get();
  listener->reactor = reactor;
  reactor->AddSource(listener, EPOLLIN);
  listeners_[addr] = std::move(listener);
}

void TcpTransport::Unregister(const Address& addr) {
  std::shared_ptr<Listener> listener;
  {
    MutexLock lock(&state_mu_);
    handlers_.erase(addr);
    auto it = listeners_.find(addr);
    if (it != listeners_.end()) {
      listener = it->second;
      listeners_.erase(it);
    }
  }
  // The reactor owns the fd close so in-flight epoll events can't touch a
  // reused descriptor.
  if (listener != nullptr) listener->reactor->RequestClose(listener);
}

uint16_t TcpTransport::ListenPort(const Address& addr) const {
  MutexLock lock(&state_mu_);
  auto it = listeners_.find(addr);
  return it == listeners_.end() ? 0 : it->second->port;
}

void TcpTransport::AddStaticPeer(const Address& addr, const std::string& host,
                                 uint16_t port) {
  MutexLock lock(&state_mu_);
  static_peers_[addr] = {host, port};
}

void TcpTransport::DropConnections(const Address& peer) {
  std::vector<std::shared_ptr<Connection>> dropped;
  {
    MutexLock lock(&state_mu_);
    auto it = pools_.find(peer);
    if (it == pools_.end()) return;
    dropped = std::move(it->second.conns);
    it->second.conns.clear();
  }
  for (auto& conn : dropped) {
    {
      MutexLock lock(&conn->mu);
      conn->CloseLocked(Status::Unavailable("connection dropped"));
    }
    conn->reactor->RequestClose(conn);
  }
}

// --- stats -----------------------------------------------------------------

TcpTransport::EndpointInstruments* TcpTransport::InstrumentsLocked(
    const Address& addr) {
  auto it = stats_.find(addr);
  if (it != stats_.end()) return &it->second;
  EndpointInstruments inst;
  const obs::Labels labels{{"endpoint", addr}};
  inst.calls_received = metrics_->GetCounter("net.calls_received", labels);
  inst.calls_sent = metrics_->GetCounter("net.calls_sent", labels);
  inst.bytes_received = metrics_->GetCounter("net.bytes_received", labels);
  inst.bytes_sent = metrics_->GetCounter("net.bytes_sent", labels);
  inst.dispatch_shed = metrics_->GetCounter("net.dispatch.shed", labels);
  return &stats_.emplace(addr, inst).first->second;
}

obs::LatencyHistogram* TcpTransport::MethodLatency(const std::string& method) {
  MutexLock lock(&state_mu_);
  auto [it, inserted] = method_latency_.try_emplace(method, nullptr);
  if (inserted) {
    it->second =
        metrics_->GetHistogram("net.call_micros", {{"method", method}});
  }
  return it->second;
}

EndpointStats TcpTransport::GetStats(const Address& addr) const {
  MutexLock lock(&state_mu_);
  auto it = stats_.find(addr);
  if (it == stats_.end()) return EndpointStats{};
  EndpointStats out;
  out.calls_received = it->second.calls_received->Value();
  out.calls_sent = it->second.calls_sent->Value();
  out.bytes_received = it->second.bytes_received->Value();
  out.bytes_sent = it->second.bytes_sent->Value();
  return out;
}

void TcpTransport::ResetStats() {
  MutexLock lock(&state_mu_);
  for (auto& [addr, inst] : stats_) {
    inst.calls_received->Reset();
    inst.calls_sent->Reset();
    inst.bytes_received->Reset();
    inst.bytes_sent->Reset();
  }
  total_calls_ = 0;
}

// --- client path -----------------------------------------------------------

Status TcpTransport::Resolve(const Address& to, std::string* host,
                             uint16_t* port) const {
  MutexLock lock(&state_mu_);
  auto it = listeners_.find(to);
  if (it != listeners_.end()) {
    *host = options_.bind_host;
    *port = it->second->port;
    return Status::OK();
  }
  auto peer = static_peers_.find(to);
  if (peer != static_peers_.end()) {
    *host = peer->second.first;
    *port = peer->second.second;
    return Status::OK();
  }
  return Status::NotFound("no endpoint: " + to);
}

std::shared_ptr<TcpTransport::Connection> TcpTransport::DialLocked(
    const Address& to, const std::string& host, uint16_t port,
    int64_t deadline_micros, Status* error) {
  // Runs with no transport lock held (the name refers to the caller having
  // claimed the dial slot): a slow connect must not stall other callers.
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    *error = Status::Unavailable(Errno("socket"));
    return nullptr;
  }
  SetNoDelay(fd);
  sockaddr_in sin{};
  sin.sin_family = AF_INET;
  sin.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1) {
    ::close(fd);
    *error = Status::InvalidArgument("unparseable peer host: " + host);
    return nullptr;
  }
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&sin), sizeof(sin));
  if (rc < 0 && errno == EINPROGRESS) {
    int64_t budget_millis = options_.connect_timeout_millis;
    if (deadline_micros != 0) {
      const int64_t remaining =
          (deadline_micros - clock_->NowMicros()) / 1000;
      budget_millis = std::min(budget_millis, std::max<int64_t>(remaining, 1));
    }
    pollfd pfd{fd, POLLOUT, 0};
    rc = ::poll(&pfd, 1, static_cast<int>(budget_millis));
    if (rc <= 0) {
      ::close(fd);
      *error = Status::Unavailable("connect to " + to + " timed out");
      return nullptr;
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
    rc = so_error == 0 ? 0 : -1;
    errno = so_error;
  }
  if (rc < 0) {
    ::close(fd);
    *error = Status::Unavailable("connect to " + to + " failed: " +
                                 std::strerror(errno));
    return nullptr;
  }

  auto conn = std::make_shared<Connection>();
  conn->kind = kSourceConn;
  conn->fd = fd;
  conn->peer = to;
  conn->is_client = true;
  conn->reactor =
      reactors_[next_reactor_.fetch_add(1) % reactors_.size()].get();
  conn->reactor->AddSource(conn, EPOLLIN);
  return conn;
}

Result<std::shared_ptr<TcpTransport::Connection>> TcpTransport::GetConnection(
    const Address& to, int64_t deadline_micros) {
  std::string host;
  uint16_t port = 0;
  {
    MutexLock lock(&state_mu_);
    PeerPool& pool = pools_[to];
    // Prune connections the reactor has reaped.
    auto& conns = pool.conns;
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const std::shared_ptr<Connection>& c) {
                                 MutexLock conn_lock(&c->mu);
                                 return c->closed;
                               }),
                conns.end());
    if (!conns.empty()) {
      const bool pool_full =
          conns.size() >=
          static_cast<size_t>(std::max(1, options_.connections_per_peer));
      // During a dial-backoff window, live connections keep serving.
      if (pool_full || pool.not_before_micros > clock_->NowMicros()) {
        pool.next = (pool.next + 1) % conns.size();
        return conns[pool.next];
      }
    }
    if (pool.not_before_micros > clock_->NowMicros()) {
      return Status::Unavailable("connect backoff for " + to);
    }
  }

  Status resolve = Resolve(to, &host, &port);
  if (!resolve.ok()) return resolve;

  Status dial_error = Status::OK();
  std::shared_ptr<Connection> conn =
      DialLocked(to, host, port, deadline_micros, &dial_error);

  MutexLock lock(&state_mu_);
  PeerPool& pool = pools_[to];
  if (conn == nullptr) {
    pool.consecutive_failures++;
    const int64_t backoff = std::min(
        options_.reconnect_backoff_initial_millis
            << std::min(pool.consecutive_failures - 1, 10),
        options_.reconnect_backoff_max_millis);
    pool.not_before_micros = clock_->NowMicros() + backoff * 1000;
    return dial_error;
  }
  pool.consecutive_failures = 0;
  pool.not_before_micros = 0;
  pool.conns.push_back(conn);
  return conn;
}

Result<PinnedSlice> TcpTransport::CallPayload(const Address& from,
                                              const Address& to,
                                              const std::string& method,
                                              Slice request,
                                              const CallOptions& options) {
  internal::CallSpan call = internal::CallSpan::Begin(
      options, to, method, request.size(), clock_->NowMicros());
  obs::LatencyHistogram* latency = MethodLatency(method);

  Status s = Status::OK();
  std::string payload;
  do {
    {
      MutexLock lock(&state_mu_);
      if (shutdown_) {
        s = Status::Unavailable("transport shut down");
        break;
      }
      total_calls_.fetch_add(1, std::memory_order_relaxed);
      EndpointInstruments* sender = InstrumentsLocked(from);
      sender->calls_sent->Increment();
      sender->bytes_sent->Add(static_cast<int64_t>(request.size()));
    }
    if (call.deadline_micros != 0 &&
        clock_->NowMicros() > call.deadline_micros) {
      s = Status::Timeout("deadline budget exhausted calling " + to);
      break;
    }

    auto conn_result = GetConnection(to, call.deadline_micros);
    if (!conn_result.ok()) {
      s = conn_result.status();
      break;
    }
    std::shared_ptr<Connection> conn = std::move(conn_result.value());

    Frame frame;
    frame.type = Frame::kRequest;
    frame.correlation_id = next_correlation_.fetch_add(1);
    const obs::TraceContext child = call.ChildContext();
    frame.trace_id = child.trace_id;
    frame.span_id = child.span_id;
    frame.deadline_micros = call.deadline_micros;
    frame.from = from;
    frame.to = to;
    frame.method = method;
    EncodedFrame encoded = EncodeFrame(frame, request);

    // Every call still completes within the default budget even with no
    // deadline — a dead peer must not park the caller forever.
    const int64_t effective_deadline = internal::MinDeadline(
        call.deadline_micros,
        call.span.start_micros + options_.default_call_timeout_millis * 1000);

    {
      MutexLock lock(&conn->mu);
      if (conn->closed) {
        s = conn->close_status;
        break;
      }
      conn->pending.emplace(frame.correlation_id, PendingCall{});
      OutChunk chunk;
      chunk.head = std::move(encoded.head);
      // The request bytes are borrowed from the caller; the one sanctioned
      // serialize copy of the TCP path pins them for the outbox, so a
      // timed-out caller can return while the frame is still queued.
      chunk.payload = PinnedSlice::Copy(request);
      chunk.tail = std::move(encoded.tail);
      conn->outbox.push_back(std::move(chunk));
      if (!conn->FlushLocked()) {
        auto it = conn->pending.find(frame.correlation_id);
        s = it != conn->pending.end() && it->second.done
                ? it->second.status
                : conn->close_status;
        conn->pending.erase(frame.correlation_id);
        break;
      }

      while (true) {
        auto it = conn->pending.find(frame.correlation_id);
        if (it == conn->pending.end()) {
          s = Status::Internal("pending call vanished");
          break;
        }
        if (it->second.done) {
          s = it->second.status;
          payload = std::move(it->second.payload);
          conn->pending.erase(it);
          break;
        }
        const int64_t remaining_millis =
            (effective_deadline - clock_->NowMicros()) / 1000;
        if (remaining_millis <= 0) {
          conn->pending.erase(it);
          s = Status::Timeout("deadline budget exhausted calling " + to);
          break;
        }
        conn->cv.WaitFor(&conn->mu,
                         std::chrono::milliseconds(remaining_millis));
      }
    }
  } while (false);

  const int64_t end_micros = clock_->NowMicros();
  latency->Record(end_micros - call.span.start_micros);
  const size_t response_bytes = payload.size();
  call.Finish(s, response_bytes, end_micros, metrics_);
  if (!s.ok()) return s;
  return PinnedSlice::Own(std::move(payload));
}

// --- server path -----------------------------------------------------------

void TcpTransport::SendFrame(const std::shared_ptr<Connection>& conn,
                             EncodedFrame frame, PinnedSlice payload) {
  MutexLock lock(&conn->mu);
  if (conn->closed) return;
  OutChunk chunk;
  chunk.head = std::move(frame.head);
  chunk.payload = std::move(payload);
  chunk.tail = std::move(frame.tail);
  conn->outbox.push_back(std::move(chunk));
  conn->FlushLocked();
}

void TcpTransport::HandleRequest(const std::shared_ptr<Connection>& conn,
                                 Frame request) {
  Status s = Status::OK();
  PinnedSlice response;

  PayloadHandler handler;
  {
    MutexLock lock(&state_mu_);
    if (shutdown_) {
      s = Status::Unavailable("transport shut down");
    } else if (request.deadline_micros != 0 &&
               clock_->NowMicros() > request.deadline_micros) {
      s = Status::Timeout("deadline budget exhausted calling " + request.to);
    } else {
      auto node_it = handlers_.find(request.to);
      if (node_it == handlers_.end()) {
        s = Status::NotFound("no endpoint: " + request.to);
      } else {
        auto method_it = node_it->second.find(request.method);
        if (method_it == node_it->second.end()) {
          s = Status::NotFound("no method " + request.method + " at " +
                               request.to);
        } else {
          handler = method_it->second;
          EndpointInstruments* receiver = InstrumentsLocked(request.to);
          receiver->calls_received->Increment();
          receiver->bytes_received->Add(
              static_cast<int64_t>(request.payload.size()));
        }
      }
    }
  }

  if (s.ok() && handler) {
    // The handler runs on this worker with the caller's trace ambient, so
    // nested calls it places parent under the caller's span and inherit
    // the deadline budget — exactly the sim backend's contract.
    internal::AmbientTraceScope ambient(obs::TraceContext{
        request.trace_id, request.span_id, request.deadline_micros});
    internal::CallerScope caller(request.from);
    auto result = handler(Slice(request.payload));
    if (result.ok()) {
      response = std::move(result.value());
    } else {
      s = result.status();
    }
  }

  Frame reply;
  reply.type = Frame::kResponse;
  reply.correlation_id = request.correlation_id;
  reply.trace_id = request.trace_id;
  reply.span_id = request.span_id;
  reply.status_code = s.code();
  // Error responses carry the message in the payload (StatusFromWire).
  PinnedSlice payload =
      s.ok() ? std::move(response) : PinnedSlice::Own(s.message());
  EncodedFrame encoded = EncodeFrame(reply, payload.slice());
  SendFrame(conn, std::move(encoded), std::move(payload));
}

void TcpTransport::WorkerLoop() {
  while (true) {
    Work work;
    {
      MutexLock lock(&queue_mu_);
      while (queue_.empty() && !stopping_) queue_cv_.Wait(&queue_mu_);
      if (queue_.empty() && stopping_) return;
      work = std::move(queue_.front());
      queue_.pop_front();
    }
    HandleRequest(work.conn, std::move(work.frame));
    // The admission slot taken by the reactor covers queue wait plus the
    // handler's whole run; release it only once the response is on its way.
    dispatch_limiter_.Exit();
  }
}

// --- reactor ---------------------------------------------------------------

void TcpTransport::AcceptAll(Reactor* reactor,
                             const std::shared_ptr<Listener>& listener) {
  while (true) {
    const int fd = ::accept4(listener->fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN, or the listener is being torn down
    SetNoDelay(fd);
    auto conn = std::make_shared<Connection>();
    conn->kind = kSourceConn;
    conn->fd = fd;
    conn->is_client = false;
    conn->reactor = reactor;
    reactor->AddSource(conn, EPOLLIN);
  }
}

void TcpTransport::ReapConn(Reactor* reactor,
                            const std::shared_ptr<Connection>& conn,
                            const Status& status) {
  {
    MutexLock lock(&conn->mu);
    conn->CloseLocked(status);
  }
  reactor->RemoveAndClose(conn.get());
}

void TcpTransport::ReadConn(Reactor* reactor,
                            const std::shared_ptr<Connection>& conn) {
  char buf[64 << 10];
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->inbuf.append(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      ReapConn(reactor, conn, Status::Unavailable("peer disconnected"));
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    ReapConn(reactor, conn, Status::Unavailable(Errno("recv")));
    return;
  }

  size_t off = 0;
  while (true) {
    Frame frame;
    size_t consumed = 0;
    std::string error;
    const DecodeStatus ds =
        DecodeFrame(Slice(conn->inbuf.data() + off, conn->inbuf.size() - off),
                    options_.max_frame_bytes, &frame, &consumed, &error);
    if (ds == DecodeStatus::kNeedMore) break;
    if (ds == DecodeStatus::kError) {
      ReapConn(reactor, conn, Status::Corruption("protocol error: " + error));
      return;
    }
    off += consumed;
    if (frame.type == Frame::kRequest) {
      // Bounded dispatch: reject-before-work. A request that cannot take an
      // admission slot never reaches the worker queue — the reactor replies
      // Overloaded right here, so the queue depth stays bounded no matter
      // how fast clients push.
      if (!dispatch_limiter_.TryEnter()) {
        {
          MutexLock lock(&state_mu_);
          InstrumentsLocked(frame.to)->dispatch_shed->Increment();
        }
        const Status shed = Status::Overloaded("dispatch queue full at " +
                                               frame.to);
        Frame reply;
        reply.type = Frame::kResponse;
        reply.correlation_id = frame.correlation_id;
        reply.trace_id = frame.trace_id;
        reply.span_id = frame.span_id;
        reply.status_code = shed.code();
        PinnedSlice payload = PinnedSlice::Own(shed.message());
        EncodedFrame encoded = EncodeFrame(reply, payload.slice());
        SendFrame(conn, std::move(encoded), std::move(payload));
        continue;
      }
      MutexLock lock(&queue_mu_);
      queue_.push_back(Work{conn, std::move(frame)});
      queue_cv_.NotifyOne();
    } else {
      MutexLock lock(&conn->mu);
      auto it = conn->pending.find(frame.correlation_id);
      if (it != conn->pending.end() && !it->second.done) {
        it->second.done = true;
        it->second.status =
            StatusFromWire(frame.status_code,
                           frame.status_code == Code::kOk
                               ? std::string()
                               : std::move(frame.payload));
        if (frame.status_code == Code::kOk) {
          it->second.payload = std::move(frame.payload);
        }
        conn->cv.NotifyAll();
      }
      // else: the caller timed out and abandoned the call; drop the frame.
    }
  }
  conn->inbuf.erase(0, off);
}

void TcpTransport::ReactorLoop(Reactor* reactor) {
  epoll_event events[64];
  while (!reactor->stop.load()) {
    const int n = ::epoll_wait(reactor->epfd, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    for (int i = 0; i < n; ++i) {
      auto* source = static_cast<FdSource*>(events[i].data.ptr);
      std::shared_ptr<FdSource> pinned;
      {
        MutexLock lock(&reactor->mu);
        auto it = reactor->sources.find(source);
        if (it == reactor->sources.end()) continue;  // already reaped
        pinned = it->second;
      }
      if (source->kind == kSourceWake) {
        uint64_t drained;
        while (::read(source->fd, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (source->kind == kSourceListener) {
        AcceptAll(reactor,
                  std::static_pointer_cast<Listener>(pinned));
        continue;
      }
      auto conn = std::static_pointer_cast<Connection>(pinned);
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        ReapConn(reactor, conn, Status::Unavailable("peer disconnected"));
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) {
        MutexLock lock(&conn->mu);
        if (!conn->closed && conn->FlushLocked() && conn->outbox.empty() &&
            conn->want_write) {
          conn->want_write = false;
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.ptr = source;
          ::epoll_ctl(reactor->epfd, EPOLL_CTL_MOD, conn->fd, &ev);
        }
      }
      if ((events[i].events & EPOLLIN) != 0) {
        ReadConn(reactor, conn);
      }
    }
    // Drain deferred closes (listener teardown, dropped pools).
    std::vector<std::shared_ptr<FdSource>> to_close;
    {
      MutexLock lock(&reactor->mu);
      to_close.swap(reactor->to_close);
    }
    for (auto& source : to_close) {
      if (source->fd >= 0) reactor->RemoveAndClose(source.get());
    }
  }
}

}  // namespace lidi::net
