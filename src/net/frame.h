#ifndef LIDI_NET_FRAME_H_
#define LIDI_NET_FRAME_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace lidi::net {

/// Binary framing codec of the TCP transport backend (DESIGN.md §10).
///
/// Wire layout, little-endian, one frame per RPC message:
///
///   u32 frame_len        bytes that follow this field (header..crc)
///   u32 magic            0x4C444631 ("LDF1")
///   u8  version          kFrameVersion
///   u8  type             1 = request, 2 = response
///   u16 flags            reserved (0)
///   u64 correlation_id   matches a response to its pending call
///   u64 trace_id         Dapper-style trace propagation (obs/trace.h)
///   u64 span_id          the caller's span; the handler's ambient parent
///   i64 deadline_micros  absolute deadline (0 = none)
///   i32 status_code      lidi::Code (responses; 0/kOk in requests)
///   u16 from_len, to_len, method_len   (0 in responses)
///   bytes from | to | method | payload
///   u32 crc32            over magic..payload (zlib crc32)
///
/// The trailing CRC lets the sender stream a pinned payload (header bytes,
/// then the payload slice, then the 4-byte tail) without concatenating —
/// the zero-copy fetch path degrades to exactly one serialize copy per
/// side, never two.
struct Frame {
  static constexpr uint8_t kRequest = 1;
  static constexpr uint8_t kResponse = 2;

  uint8_t type = kRequest;
  uint64_t correlation_id = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  int64_t deadline_micros = 0;
  Code status_code = Code::kOk;  // responses only
  std::string from;              // requests only
  std::string to;                // requests only
  std::string method;            // requests only
  std::string payload;
};

inline constexpr uint32_t kFrameMagic = 0x4C444631;  // "LDF1"
inline constexpr uint8_t kFrameVersion = 1;

/// Fixed bytes between frame_len and the variable strings.
inline constexpr size_t kFrameFixedHeader = 4 + 1 + 1 + 2 + 8 + 8 + 8 + 8 + 4 +
                                            2 + 2 + 2;

/// Default cap a decoder enforces on frame_len. Oversized frames are a
/// protocol error (the connection is poisoned), not an allocation.
inline constexpr size_t kDefaultMaxFrameBytes = 16u << 20;

/// An encoded frame in two pieces: the wire bytes are head | payload | tail.
/// `head` holds frame_len through the end of the method string; `tail` holds
/// the CRC. The payload travels as the caller's own slice, uncopied.
struct EncodedFrame {
  std::string head;
  std::string tail;

  size_t wire_size(size_t payload_size) const {
    return head.size() + payload_size + tail.size();
  }
};

/// Encodes `frame`'s header fields around `payload` (which is NOT copied —
/// the caller writes head, payload, tail in order). frame.payload is
/// ignored; the slice is authoritative.
EncodedFrame EncodeFrame(const Frame& frame, Slice payload);

/// Convenience for tests and small messages: the full contiguous wire image.
std::string EncodeFrameToString(const Frame& frame, Slice payload);

enum class DecodeStatus {
  kOk,        // one frame decoded; *consumed bytes were used
  kNeedMore,  // buf holds a torn (incomplete) frame; read more bytes
  kError,     // corrupt or oversized frame; poison the connection
};

/// Decodes the first frame in `buf`. On kOk fills *frame (payload copied
/// out of the buffer — the receive side's one copy) and *consumed. On
/// kError fills *error; the stream cannot be resynchronized and the
/// connection must be closed.
DecodeStatus DecodeFrame(Slice buf, size_t max_frame_bytes, Frame* frame,
                         size_t* consumed, std::string* error);

/// Reconstructs a Status from a response frame's (status_code, payload)
/// pair — error responses carry the message in the payload. Unknown codes
/// map to Internal so a newer peer cannot make an older one misbehave.
Status StatusFromWire(Code code, std::string message);

}  // namespace lidi::net

#endif  // LIDI_NET_FRAME_H_
