#ifndef LIDI_NET_ADDRESS_H_
#define LIDI_NET_ADDRESS_H_

#include "net/transport.h"

namespace lidi::net {

/// Numbered tiers of the deployment. The typed address factory below
/// replaces the ad-hoc per-tier helpers (VoldemortAddress, BrokerAddress,
/// hand-built "voldemort-" + id strings) that used to be scattered across
/// src/voldemort, src/kafka and src/sim, so both transport backends resolve
/// node identity uniformly: the sim backend keys its handler table on the
/// canonical string, and the TCP backend maps the same string to a
/// listener port at RegisterPayload time.
///
/// Free-form addresses (client names, relay names, Espresso storage-node
/// names chosen by the deployment) remain plain strings; the factory covers
/// the tiers whose nodes are identified by a dense integer id.
enum class Tier {
  kVoldemort,         // "voldemort-<id>"
  kKafkaBroker,       // "kafka-broker-<id>"
  kEspressoNode,      // "espresso-node-<id>"
  kDatabusRelay,      // "relay-<id>"
  kDatabusBootstrap,  // "bootstrap-<id>"
};

/// Canonical address prefix of a tier (everything before the node id).
const char* TierPrefix(Tier tier);

/// Canonical address of node `node_id` in `tier`. The strings are stable
/// wire/trace identifiers — sim seed replay depends on them — so they must
/// never change for an existing tier.
Address MakeAddress(Tier tier, int node_id);

/// Inverse of MakeAddress: true iff `addr` is a canonical tier address,
/// with the tier and id stored through the out-params. Free-form addresses
/// (e.g. client names) return false.
bool ParseAddress(const Address& addr, Tier* tier, int* node_id);

}  // namespace lidi::net

#endif  // LIDI_NET_ADDRESS_H_
