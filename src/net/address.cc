#include "net/address.h"

#include <cstdlib>
#include <cstring>

namespace lidi::net {

namespace {

constexpr Tier kAllTiers[] = {Tier::kVoldemort, Tier::kKafkaBroker,
                              Tier::kEspressoNode, Tier::kDatabusRelay,
                              Tier::kDatabusBootstrap};

}  // namespace

const char* TierPrefix(Tier tier) {
  switch (tier) {
    case Tier::kVoldemort:
      return "voldemort-";
    case Tier::kKafkaBroker:
      return "kafka-broker-";
    case Tier::kEspressoNode:
      return "espresso-node-";
    case Tier::kDatabusRelay:
      return "relay-";
    case Tier::kDatabusBootstrap:
      return "bootstrap-";
  }
  return "";
}

Address MakeAddress(Tier tier, int node_id) {
  return TierPrefix(tier) + std::to_string(node_id);
}

bool ParseAddress(const Address& addr, Tier* tier, int* node_id) {
  // "kafka-broker-" must be tried before any prefix it could shadow; the
  // table order is fine because no prefix is a prefix of another.
  for (Tier candidate : kAllTiers) {
    const char* prefix = TierPrefix(candidate);
    const size_t prefix_len = std::strlen(prefix);
    if (addr.size() <= prefix_len ||
        addr.compare(0, prefix_len, prefix) != 0) {
      continue;
    }
    const char* digits = addr.c_str() + prefix_len;
    char* end = nullptr;
    const long id = std::strtol(digits, &end, 10);
    if (end == digits || *end != '\0' || id < 0) return false;
    if (tier != nullptr) *tier = candidate;
    if (node_id != nullptr) *node_id = static_cast<int>(id);
    return true;
  }
  return false;
}

}  // namespace lidi::net
