#ifndef LIDI_NET_NETWORK_H_
#define LIDI_NET_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"

namespace lidi::net {

/// Node address, e.g. "voldemort-node-3" or "relay-1". All lidi tiers
/// communicate through Network::Call rather than direct object references so
/// that tests can inject the transient failures the paper calls prevalent in
/// production datacenters (Section II.A, [FLP+10]).
using Address = std::string;

/// A per-method RPC handler: takes the serialized request, produces the
/// serialized response or an error.
using Handler = std::function<Result<std::string>(Slice request)>;

/// A zero-copy RPC handler: the response is a pinned view into storage the
/// handler owns (e.g. a log segment buffer), so serving it moves no payload
/// bytes. The simulated-transport analogue of the paper's sendfile path
/// (V.B): the broker hands the "socket" its file-channel bytes directly.
using PayloadHandler = std::function<Result<PinnedSlice>(Slice request)>;

/// Counters describing traffic through one endpoint. The Databus fan-out
/// bench (E9) uses the source database's counters to show consumer count
/// does not increase source load.
struct EndpointStats {
  int64_t calls_received = 0;
  int64_t calls_sent = 0;
  int64_t bytes_received = 0;
  int64_t bytes_sent = 0;
};

/// In-process simulated cluster transport.
///
/// Substitution note (see DESIGN.md): stands in for the production RPC
/// stack. Handlers run synchronously in the caller's thread; failure modes
/// (drops, latency, partitions, crashed nodes) are injected deterministically
/// from a seeded RNG. Thread-safe.
///
/// Two call paths exist per method: the owned-string path (Call/Register)
/// and the payload-view path (CallPayload/RegisterPayload). Either caller
/// works against either handler kind; the transport adapts, copying only
/// when an owned string is demanded from a pinned view or vice versa.
class Network {
 public:
  explicit Network(uint64_t fault_seed = 42) : rng_(fault_seed) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers a handler for (address, method). Re-registering replaces.
  void Register(const Address& addr, const std::string& method, Handler handler);

  /// Registers a zero-copy handler for (address, method). Re-registering
  /// replaces (either kind).
  void RegisterPayload(const Address& addr, const std::string& method,
                       PayloadHandler handler);

  /// Removes an endpoint entirely (all its methods).
  void Unregister(const Address& addr);

  /// Invokes `method` on `to`. Returns:
  ///  - Unavailable if the destination is down, unreachable (partition),
  ///    or the fault injector dropped the message;
  ///  - NotFound if no handler is registered;
  ///  - otherwise the handler's result.
  Result<std::string> Call(const Address& from, const Address& to,
                           const std::string& method, Slice request);

  /// Zero-copy variant of Call: the response payload is pinned, not copied.
  /// A string handler's response is wrapped (moved) into a pinned buffer,
  /// so this path never copies payload bytes regardless of handler kind.
  Result<PinnedSlice> CallPayload(const Address& from, const Address& to,
                                  const std::string& method, Slice request);

  // --- fault injection ---

  /// Marks a node down (crash). Calls to it fail Unavailable; its handlers
  /// stay registered so SetNodeUp models a restart.
  void SetNodeDown(const Address& addr);
  void SetNodeUp(const Address& addr);
  bool IsNodeUp(const Address& addr) const;

  /// Probability in [0,1] that any given call is dropped.
  void SetDropProbability(double p);

  /// Splits the cluster: traffic between `side_a` members and everyone else
  /// is blocked. Heal() removes the partition.
  void PartitionOff(const std::set<Address>& side_a);
  void Heal();

  EndpointStats GetStats(const Address& addr) const;
  void ResetStats();

  /// Total number of calls placed since construction/ResetStats.
  int64_t total_calls() const { return total_calls_.load(); }

 private:
  /// A registered method: exactly one of the two handler kinds is set.
  struct Endpoint {
    Handler handler;
    PayloadHandler payload_handler;
  };

  /// Fault-injection and stats bookkeeping shared by both call paths.
  /// Returns a non-OK status if the call must fail, otherwise copies the
  /// endpoint entry into *out.
  Status Route(const Address& from, const Address& to,
               const std::string& method, Slice request, Endpoint* out);

  mutable std::mutex mu_;
  std::map<Address, std::map<std::string, Endpoint>> handlers_;
  std::set<Address> down_;
  std::set<Address> partition_a_;
  bool partitioned_ = false;
  double drop_probability_ = 0;
  Random rng_;
  std::map<Address, EndpointStats> stats_;
  std::atomic<int64_t> total_calls_{0};
};

}  // namespace lidi::net

#endif  // LIDI_NET_NETWORK_H_
