#ifndef LIDI_NET_NETWORK_H_
#define LIDI_NET_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/sync.h"
#include "common/clock.h"
#include "common/random.h"
#include "common/slice.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace lidi::net {

/// Node address, e.g. "voldemort-node-3" or "relay-1". All lidi tiers
/// communicate through Network::Call rather than direct object references so
/// that tests can inject the transient failures the paper calls prevalent in
/// production datacenters (Section II.A, [FLP+10]).
using Address = std::string;

/// A per-method RPC handler: takes the serialized request, produces the
/// serialized response or an error.
using Handler = std::function<Result<std::string>(Slice request)>;

/// A zero-copy RPC handler: the response is a pinned view into storage the
/// handler owns (e.g. a log segment buffer), so serving it moves no payload
/// bytes. The simulated-transport analogue of the paper's sendfile path
/// (V.B): the broker hands the "socket" its file-channel bytes directly.
using PayloadHandler = std::function<Result<PinnedSlice>(Slice request)>;

/// Per-call options: the caller's trace context (the RPC is recorded as a
/// span under it, and nested calls the handler places inherit it) and an
/// absolute deadline in the transport clock's microseconds (0 = none; the
/// tighter of this and the trace's own deadline budget wins).
struct CallOptions {
  obs::TraceContext* trace = nullptr;
  int64_t deadline_micros = 0;
};

/// Counters describing traffic through one endpoint. The Databus fan-out
/// bench (E9) uses the source database's counters to show consumer count
/// does not increase source load.
///
/// This struct is a *view*: the counters live in the Network's
/// obs::MetricsRegistry ("net.calls_sent{endpoint=...}" et al.) and
/// GetStats materializes them, so the same numbers appear in
/// MetricsRegistry::Snapshot() and here.
struct EndpointStats {
  int64_t calls_received = 0;
  int64_t calls_sent = 0;
  int64_t bytes_received = 0;
  int64_t bytes_sent = 0;
};

/// In-process simulated cluster transport.
///
/// Substitution note (see DESIGN.md): stands in for the production RPC
/// stack. Handlers run synchronously in the caller's thread; failure modes
/// (drops, latency, partitions, crashed nodes) are injected deterministically
/// from a seeded RNG. Thread-safe.
///
/// Two call paths exist per method: the owned-string path (Call/Register)
/// and the payload-view path (CallPayload/RegisterPayload). Either caller
/// works against either handler kind; the transport adapts, copying only
/// when an owned string is demanded from a pinned view or vice versa. Both
/// are thin wrappers over one private Dispatch path, so fault injection,
/// stats, deadline enforcement, and span recording exist exactly once.
///
/// Observability: the Network owns (or is handed) the obs::MetricsRegistry
/// that every component talking through it uses by default — pass one
/// registry to the Network and the whole deployment exports through a single
/// Snapshot(). Each call records a span; handlers that place nested calls
/// get those recorded under the caller's span automatically (an ambient
/// per-thread trace context, since handlers run in the caller's thread).
class Network {
 public:
  explicit Network(uint64_t fault_seed = 42,
                   obs::MetricsRegistry* metrics = nullptr,
                   const Clock* clock = nullptr);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// The registry RPC metrics and spans land in. Components default to this
  /// registry for their own instruments, unifying export.
  obs::MetricsRegistry* metrics() const { return metrics_; }

  /// Registers a handler for (address, method). Re-registering replaces.
  void Register(const Address& addr, const std::string& method, Handler handler);

  /// Registers a zero-copy handler for (address, method). Re-registering
  /// replaces (either kind).
  void RegisterPayload(const Address& addr, const std::string& method,
                       PayloadHandler handler);

  /// Removes an endpoint entirely (all its methods).
  void Unregister(const Address& addr);

  /// Invokes `method` on `to`. Returns:
  ///  - Unavailable if the destination is down, unreachable (partition),
  ///    or the fault injector dropped the message;
  ///  - Timeout if the call's deadline budget is already exhausted;
  ///  - NotFound if no handler is registered;
  ///  - otherwise the handler's result.
  Result<std::string> Call(const Address& from, const Address& to,
                           const std::string& method, Slice request,
                           const CallOptions& options);
  Result<std::string> Call(const Address& from, const Address& to,
                           const std::string& method, Slice request) {
    return Call(from, to, method, request, CallOptions{});
  }

  /// Zero-copy variant of Call: the response payload is pinned, not copied.
  /// A string handler's response is wrapped (moved) into a pinned buffer,
  /// so this path never copies payload bytes regardless of handler kind.
  Result<PinnedSlice> CallPayload(const Address& from, const Address& to,
                                  const std::string& method, Slice request,
                                  const CallOptions& options);
  Result<PinnedSlice> CallPayload(const Address& from, const Address& to,
                                  const std::string& method, Slice request) {
    return CallPayload(from, to, method, request, CallOptions{});
  }

  // --- fault injection ---

  /// Marks a node down (crash). Calls to it fail Unavailable; its handlers
  /// stay registered so SetNodeUp models a restart.
  void SetNodeDown(const Address& addr);
  void SetNodeUp(const Address& addr);
  bool IsNodeUp(const Address& addr) const;

  /// Probability in [0,1] that any given call is dropped.
  void SetDropProbability(double p);

  /// Splits the cluster: traffic between `side_a` members and everyone else
  /// is blocked. Heal() removes the partition and then runs every heal
  /// listener (outside the lock).
  void PartitionOff(const std::set<Address>& side_a);
  void Heal();
  bool IsPartitioned() const;

  /// Registers a callback invoked after every Heal() — the hook failure
  /// detectors use to probe banned nodes immediately instead of sitting out
  /// the rest of their ban interval (see voldemort::FailureDetector::
  /// ProbeBannedNow). Listeners must outlive the network or be removed by
  /// re-registering via ClearHealListeners.
  void AddHealListener(std::function<void()> listener);
  void ClearHealListeners();

  // --- deterministic simulation hooks (src/sim) ---

  /// Virtual-time stepping: every dispatched call advances `clock` by
  /// `base_step_micros` (plus the current delay burst, seeded per call).
  /// This is how the simulation harness makes time a pure function of the
  /// message sequence — retention windows, failure-detector bans and
  /// deadlines all move deterministically with traffic, never with the wall
  /// clock. Pass nullptr to disable.
  void EnableVirtualTimeStepping(ManualClock* clock, int64_t base_step_micros);

  /// Extra per-call delay in [0, extra_micros], drawn from the seeded RNG,
  /// while a burst is active. 0 = calm. Only meaningful with virtual-time
  /// stepping enabled.
  void SetDelayBurst(int64_t extra_micros);

  EndpointStats GetStats(const Address& addr) const;
  void ResetStats();

  /// Total number of calls placed since construction/ResetStats.
  int64_t total_calls() const { return total_calls_.load(); }

 private:
  /// A registered method: exactly one of the two handler kinds is set.
  struct Endpoint {
    Handler handler;
    PayloadHandler payload_handler;
  };

  /// Cached per-endpoint registry counters (the backing store of
  /// EndpointStats).
  struct EndpointInstruments {
    obs::Counter* calls_received = nullptr;
    obs::Counter* calls_sent = nullptr;
    obs::Counter* bytes_received = nullptr;
    obs::Counter* bytes_sent = nullptr;
  };

  /// A handler's response before the caller chose its representation:
  /// exactly one of `owned` (string handler) or `view` (payload handler) is
  /// meaningful. Call/CallPayload convert — each copying only in the one
  /// cross-kind direction it always copied in.
  struct RawResponse {
    bool is_pinned = false;
    std::string owned;
    PinnedSlice view;

    size_t size() const { return is_pinned ? view.size() : owned.size(); }
  };

  /// The single dispatch path: deadline budget, fault injection, endpoint
  /// stats, handler invocation, and span recording all live here and only
  /// here.
  Result<RawResponse> Dispatch(const Address& from, const Address& to,
                               const std::string& method, Slice request,
                               const CallOptions& options);

  /// Fault-injection and stats bookkeeping (under mu_). Returns a non-OK
  /// status if the call must fail, otherwise copies the endpoint entry into
  /// *out.
  Status Route(const Address& from, const Address& to,
               const std::string& method, Slice request,
               int64_t deadline_micros, Endpoint* out);

  EndpointInstruments* InstrumentsLocked(const Address& addr)
      LIDI_REQUIRES(mu_);

  obs::MetricsRegistry* metrics_;                    // never null
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  const Clock* const clock_;

  /// Outermost lock in the system (rank kNetEndpoints): handlers run with
  /// it released, but registry instruments are created under it, so it
  /// orders before the obs locks and every subsystem lock taken by a
  /// handler must rank above it.
  mutable Mutex mu_{"net.endpoints", lockrank::kNetEndpoints};
  std::map<Address, std::map<std::string, Endpoint>> handlers_
      LIDI_GUARDED_BY(mu_);
  std::set<Address> down_ LIDI_GUARDED_BY(mu_);
  std::set<Address> partition_a_ LIDI_GUARDED_BY(mu_);
  bool partitioned_ LIDI_GUARDED_BY(mu_) = false;
  double drop_probability_ LIDI_GUARDED_BY(mu_) = 0;
  ManualClock* step_clock_ LIDI_GUARDED_BY(mu_) = nullptr;
  int64_t step_micros_ LIDI_GUARDED_BY(mu_) = 0;
  int64_t delay_burst_micros_ LIDI_GUARDED_BY(mu_) = 0;
  std::vector<std::function<void()>> heal_listeners_ LIDI_GUARDED_BY(mu_);
  Random rng_ LIDI_GUARDED_BY(mu_);
  std::map<Address, EndpointInstruments> stats_ LIDI_GUARDED_BY(mu_);
  std::map<std::string, obs::LatencyHistogram*> method_latency_
      LIDI_GUARDED_BY(mu_);  // cache
  std::atomic<int64_t> total_calls_{0};
};

}  // namespace lidi::net

#endif  // LIDI_NET_NETWORK_H_
