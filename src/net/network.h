#ifndef LIDI_NET_NETWORK_H_
#define LIDI_NET_NETWORK_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/overload.h"
#include "common/random.h"
#include "common/sync.h"
#include "net/transport.h"
#include "obs/metrics.h"

namespace lidi::net {

/// In-process simulated cluster transport: the deterministic backend of the
/// net::Transport interface (see transport.h for the API contract).
///
/// Substitution note (see DESIGN.md §10): stands in for the production RPC
/// stack. Handlers run synchronously in the caller's thread; failure modes
/// (drops, latency, partitions, crashed nodes) are injected deterministically
/// from a seeded RNG, so the sim harness (src/sim) replays byte-identical
/// traces from a seed. Thread-safe.
///
/// Observability: the Network owns (or is handed) the obs::MetricsRegistry
/// that every component talking through it uses by default — pass one
/// registry to the Network and the whole deployment exports through a single
/// Snapshot(). Each call records a span; handlers that place nested calls
/// get those recorded under the caller's span automatically (an ambient
/// per-thread trace context, since handlers run in the caller's thread).
class Network final : public Transport {
 public:
  /// `max_dispatch_inflight` bounds concurrent admitted dispatches — the
  /// sim analogue of the TCP backend's bounded request queue (nested calls
  /// placed by handlers hold slots too, so the bound must exceed the
  /// deepest call chain times expected concurrency). 0 = unbounded. A call
  /// refused admission fails Overloaded("dispatch queue full at <to>") and
  /// increments "net.dispatch.shed{endpoint=<to>}" — byte-identical to the
  /// TCP backend (transport_parity_test).
  explicit Network(uint64_t fault_seed = 42,
                   obs::MetricsRegistry* metrics = nullptr,
                   const Clock* clock = nullptr,
                   int64_t max_dispatch_inflight = 0);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  obs::MetricsRegistry* metrics() const override { return metrics_; }

  void RegisterPayload(const Address& addr, const std::string& method,
                       PayloadHandler handler) override;

  void Unregister(const Address& addr) override;

  using Transport::Call;
  using Transport::CallPayload;

  /// Zero-copy call: the response payload is pinned, not copied. A string
  /// handler's response was wrapped (moved) into a pinned buffer at
  /// registration time, so this path never copies payload bytes regardless
  /// of handler kind.
  Result<PinnedSlice> CallPayload(const Address& from, const Address& to,
                                  const std::string& method, Slice request,
                                  const CallOptions& options) override;

  void Shutdown() override;

  // --- fault injection ---

  /// Marks a node down (crash). Calls to it fail Unavailable; its handlers
  /// stay registered so SetNodeUp models a restart.
  void SetNodeDown(const Address& addr);
  void SetNodeUp(const Address& addr);
  bool IsNodeUp(const Address& addr) const;

  /// Probability in [0,1] that any given call is dropped.
  void SetDropProbability(double p);

  /// Splits the cluster: traffic between `side_a` members and everyone else
  /// is blocked. Heal() removes the partition and then runs every heal
  /// listener (outside the lock).
  void PartitionOff(const std::set<Address>& side_a);
  void Heal();
  bool IsPartitioned() const;

  /// Registers a callback invoked after every Heal() — the hook failure
  /// detectors use to probe banned nodes immediately instead of sitting out
  /// the rest of their ban interval (see voldemort::FailureDetector::
  /// ProbeBannedNow). Listeners must outlive the network or be removed by
  /// re-registering via ClearHealListeners.
  void AddHealListener(std::function<void()> listener);
  void ClearHealListeners();

  // --- deterministic simulation hooks (src/sim) ---

  /// Virtual-time stepping: every dispatched call advances `clock` by
  /// `base_step_micros` (plus the current delay burst, seeded per call).
  /// This is how the simulation harness makes time a pure function of the
  /// message sequence — retention windows, failure-detector bans and
  /// deadlines all move deterministically with traffic, never with the wall
  /// clock. Pass nullptr to disable.
  void EnableVirtualTimeStepping(ManualClock* clock, int64_t base_step_micros);

  /// Extra per-call delay in [0, extra_micros], drawn from the seeded RNG,
  /// while a burst is active. 0 = calm. Only meaningful with virtual-time
  /// stepping enabled.
  void SetDelayBurst(int64_t extra_micros);

  EndpointStats GetStats(const Address& addr) const override;
  void ResetStats() override;

  int64_t total_calls() const override { return total_calls_.load(); }

 private:
  /// Cached per-endpoint registry counters (the backing store of
  /// EndpointStats).
  struct EndpointInstruments {
    obs::Counter* calls_received = nullptr;
    obs::Counter* calls_sent = nullptr;
    obs::Counter* bytes_received = nullptr;
    obs::Counter* bytes_sent = nullptr;
    obs::Counter* dispatch_shed = nullptr;
  };

  /// Fault-injection and stats bookkeeping (under mu_). Returns a non-OK
  /// status if the call must fail, otherwise copies the method's handler
  /// into *out. On success *admitted is true and the caller owns one
  /// dispatch_limiter_ slot (released after the handler returns).
  Status Route(const Address& from, const Address& to,
               const std::string& method, Slice request,
               int64_t deadline_micros, PayloadHandler* out, bool* admitted);

  EndpointInstruments* InstrumentsLocked(const Address& addr)
      LIDI_REQUIRES(mu_);

  obs::MetricsRegistry* metrics_;                    // never null
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  const Clock* const clock_;

  /// Outermost lock in the system (rank kNetEndpoints): handlers run with
  /// it released, but registry instruments are created under it, so it
  /// orders before the obs locks and every subsystem lock taken by a
  /// handler must rank above it.
  mutable Mutex mu_{"net.endpoints", lockrank::kNetEndpoints};
  std::map<Address, std::map<std::string, PayloadHandler>> handlers_
      LIDI_GUARDED_BY(mu_);
  bool shutdown_ LIDI_GUARDED_BY(mu_) = false;
  std::set<Address> down_ LIDI_GUARDED_BY(mu_);
  std::set<Address> partition_a_ LIDI_GUARDED_BY(mu_);
  bool partitioned_ LIDI_GUARDED_BY(mu_) = false;
  double drop_probability_ LIDI_GUARDED_BY(mu_) = 0;
  ManualClock* step_clock_ LIDI_GUARDED_BY(mu_) = nullptr;
  int64_t step_micros_ LIDI_GUARDED_BY(mu_) = 0;
  int64_t delay_burst_micros_ LIDI_GUARDED_BY(mu_) = 0;
  std::vector<std::function<void()>> heal_listeners_ LIDI_GUARDED_BY(mu_);
  Random rng_ LIDI_GUARDED_BY(mu_);
  std::map<Address, EndpointInstruments> stats_ LIDI_GUARDED_BY(mu_);
  std::map<std::string, obs::LatencyHistogram*> method_latency_
      LIDI_GUARDED_BY(mu_);  // cache
  std::atomic<int64_t> total_calls_{0};
  InflightLimiter dispatch_limiter_;  // lock-free; checked inside Route
};

/// The interface-era name for the deterministic backend; `Network` remains
/// the primary spelling across the sim harness and tests.
using SimTransport = Network;

}  // namespace lidi::net

#endif  // LIDI_NET_NETWORK_H_
