#include "net/network.h"

namespace lidi::net {

void Network::Register(const Address& addr, const std::string& method,
                       Handler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[addr][method] = Endpoint{std::move(handler), nullptr};
}

void Network::RegisterPayload(const Address& addr, const std::string& method,
                              PayloadHandler handler) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_[addr][method] = Endpoint{nullptr, std::move(handler)};
}

void Network::Unregister(const Address& addr) {
  std::lock_guard<std::mutex> lock(mu_);
  handlers_.erase(addr);
}

Status Network::Route(const Address& from, const Address& to,
                      const std::string& method, Slice request,
                      Endpoint* out) {
  std::lock_guard<std::mutex> lock(mu_);
  total_calls_.fetch_add(1, std::memory_order_relaxed);
  stats_[from].calls_sent++;
  stats_[from].bytes_sent += static_cast<int64_t>(request.size());

  if (down_.count(to) > 0) {
    return Status::Unavailable("node down: " + to);
  }
  if (partitioned_) {
    const bool from_a = partition_a_.count(from) > 0;
    const bool to_a = partition_a_.count(to) > 0;
    if (from_a != to_a) {
      return Status::Unavailable("network partition between " + from + " and " +
                                 to);
    }
  }
  if (drop_probability_ > 0 && rng_.Bernoulli(drop_probability_)) {
    return Status::Timeout("message dropped by fault injector");
  }
  auto node_it = handlers_.find(to);
  if (node_it == handlers_.end()) {
    return Status::NotFound("no endpoint: " + to);
  }
  auto method_it = node_it->second.find(method);
  if (method_it == node_it->second.end()) {
    return Status::NotFound("no method " + method + " at " + to);
  }
  *out = method_it->second;
  stats_[to].calls_received++;
  stats_[to].bytes_received += static_cast<int64_t>(request.size());
  return Status::OK();
}

Result<std::string> Network::Call(const Address& from, const Address& to,
                                  const std::string& method, Slice request) {
  Endpoint endpoint;
  Status s = Route(from, to, method, request, &endpoint);
  if (!s.ok()) return s;
  // Invoke outside the lock so handlers can place nested calls.
  if (endpoint.payload_handler) {
    auto pinned = endpoint.payload_handler(request);
    if (!pinned.ok()) return pinned.status();
    return pinned.value().ToString();  // owned-string caller: one copy
  }
  return endpoint.handler(request);
}

Result<PinnedSlice> Network::CallPayload(const Address& from,
                                         const Address& to,
                                         const std::string& method,
                                         Slice request) {
  Endpoint endpoint;
  Status s = Route(from, to, method, request, &endpoint);
  if (!s.ok()) return s;
  // Invoke outside the lock so handlers can place nested calls.
  if (endpoint.payload_handler) {
    return endpoint.payload_handler(request);
  }
  auto response = endpoint.handler(request);
  if (!response.ok()) return response.status();
  // Move the handler's owned string into a pinned buffer: no byte copy.
  return PinnedSlice::Own(std::move(response.value()));
}

void Network::SetNodeDown(const Address& addr) {
  std::lock_guard<std::mutex> lock(mu_);
  down_.insert(addr);
}

void Network::SetNodeUp(const Address& addr) {
  std::lock_guard<std::mutex> lock(mu_);
  down_.erase(addr);
}

bool Network::IsNodeUp(const Address& addr) const {
  std::lock_guard<std::mutex> lock(mu_);
  return down_.count(addr) == 0;
}

void Network::SetDropProbability(double p) {
  std::lock_guard<std::mutex> lock(mu_);
  drop_probability_ = p;
}

void Network::PartitionOff(const std::set<Address>& side_a) {
  std::lock_guard<std::mutex> lock(mu_);
  partition_a_ = side_a;
  partitioned_ = true;
}

void Network::Heal() {
  std::lock_guard<std::mutex> lock(mu_);
  partitioned_ = false;
  partition_a_.clear();
}

EndpointStats Network::GetStats(const Address& addr) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(addr);
  return it == stats_.end() ? EndpointStats{} : it->second;
}

void Network::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.clear();
  total_calls_ = 0;
}

}  // namespace lidi::net
