#include "net/network.h"

#include <algorithm>

namespace lidi::net {

Network::Network(uint64_t fault_seed, obs::MetricsRegistry* metrics,
                 const Clock* clock, int64_t max_dispatch_inflight)
    : clock_(clock != nullptr ? clock : SystemClock::Default()),
      rng_(fault_seed),
      dispatch_limiter_(max_dispatch_inflight) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>(clock_);
    metrics_ = owned_metrics_.get();
  } else {
    metrics_ = metrics;
  }
}

void Network::RegisterPayload(const Address& addr, const std::string& method,
                              PayloadHandler handler) {
  MutexLock lock(&mu_);
  handlers_[addr][method] = std::move(handler);
}

void Network::Unregister(const Address& addr) {
  MutexLock lock(&mu_);
  handlers_.erase(addr);
}

void Network::Shutdown() {
  MutexLock lock(&mu_);
  shutdown_ = true;
}

Network::EndpointInstruments* Network::InstrumentsLocked(const Address& addr) {
  auto it = stats_.find(addr);
  if (it != stats_.end()) return &it->second;
  EndpointInstruments inst;
  const obs::Labels labels{{"endpoint", addr}};
  inst.calls_received = metrics_->GetCounter("net.calls_received", labels);
  inst.calls_sent = metrics_->GetCounter("net.calls_sent", labels);
  inst.bytes_received = metrics_->GetCounter("net.bytes_received", labels);
  inst.bytes_sent = metrics_->GetCounter("net.bytes_sent", labels);
  inst.dispatch_shed = metrics_->GetCounter("net.dispatch.shed", labels);
  return &stats_.emplace(addr, inst).first->second;
}

Status Network::Route(const Address& from, const Address& to,
                      const std::string& method, Slice request,
                      int64_t deadline_micros, PayloadHandler* out,
                      bool* admitted) {
  *admitted = false;
  MutexLock lock(&mu_);
  if (shutdown_) {
    return Status::Unavailable("transport shut down");
  }
  total_calls_.fetch_add(1, std::memory_order_relaxed);
  EndpointInstruments* sender = InstrumentsLocked(from);
  sender->calls_sent->Increment();
  sender->bytes_sent->Add(static_cast<int64_t>(request.size()));

  // Virtual time: the message in flight is what moves the clock. Stepping
  // before the deadline check means a delay burst can time calls out, which
  // is exactly the failure mode the burst models.
  if (step_clock_ != nullptr) {
    int64_t step = step_micros_;
    if (delay_burst_micros_ > 0) {
      step += static_cast<int64_t>(
          rng_.Uniform(static_cast<uint64_t>(delay_burst_micros_) + 1));
    }
    step_clock_->AdvanceMicros(step);
  }

  if (deadline_micros != 0 && clock_->NowMicros() > deadline_micros) {
    return Status::Timeout("deadline budget exhausted calling " + to);
  }
  if (down_.count(to) > 0) {
    return Status::Unavailable("node down: " + to);
  }
  if (partitioned_) {
    const bool from_a = partition_a_.count(from) > 0;
    const bool to_a = partition_a_.count(to) > 0;
    if (from_a != to_a) {
      return Status::Unavailable("network partition between " + from + " and " +
                                 to);
    }
  }
  if (drop_probability_ > 0 && rng_.Bernoulli(drop_probability_)) {
    return Status::Timeout("message dropped by fault injector");
  }
  // Bounded dispatch: admission is checked before endpoint lookup — same
  // shed point as the TCP backend's reactor, which rejects before handing
  // the frame to a worker. A shed request never touches receiver stats.
  if (!dispatch_limiter_.TryEnter()) {
    InstrumentsLocked(to)->dispatch_shed->Increment();
    return Status::Overloaded("dispatch queue full at " + to);
  }
  *admitted = true;
  auto node_it = handlers_.find(to);
  if (node_it == handlers_.end()) {
    return Status::NotFound("no endpoint: " + to);
  }
  auto method_it = node_it->second.find(method);
  if (method_it == node_it->second.end()) {
    return Status::NotFound("no method " + method + " at " + to);
  }
  *out = method_it->second;
  EndpointInstruments* receiver = InstrumentsLocked(to);
  receiver->calls_received->Increment();
  receiver->bytes_received->Add(static_cast<int64_t>(request.size()));
  return Status::OK();
}

Result<PinnedSlice> Network::CallPayload(const Address& from,
                                         const Address& to,
                                         const std::string& method,
                                         Slice request,
                                         const CallOptions& options) {
  internal::CallSpan call = internal::CallSpan::Begin(
      options, to, method, request.size(), clock_->NowMicros());

  obs::LatencyHistogram* latency;
  PayloadHandler handler;
  bool admitted = false;
  Status s = Route(from, to, method, request, call.deadline_micros, &handler,
                   &admitted);
  {
    MutexLock lock(&mu_);
    auto [it, inserted] = method_latency_.try_emplace(method, nullptr);
    if (inserted) {
      it->second =
          metrics_->GetHistogram("net.call_micros", {{"method", method}});
    }
    latency = it->second;
  }

  PinnedSlice response;
  if (s.ok()) {
    // Invoke outside the lock so handlers can place nested calls; those
    // calls pick up this span as their parent via the ambient context.
    internal::AmbientTraceScope ambient(call.ChildContext());
    internal::CallerScope caller(from);
    auto pinned = handler(request);
    if (pinned.ok()) {
      response = std::move(pinned.value());
    } else {
      s = pinned.status();
    }
  }
  // The admission slot covers the handler's whole run (nested calls and
  // all) — that is what makes the in-flight count a queue-depth signal.
  if (admitted) dispatch_limiter_.Exit();

  const int64_t end_micros = clock_->NowMicros();
  latency->Record(end_micros - call.span.start_micros);
  call.Finish(s, response.size(), end_micros, metrics_);

  if (!s.ok()) return s;
  return response;
}

void Network::SetNodeDown(const Address& addr) {
  MutexLock lock(&mu_);
  down_.insert(addr);
}

void Network::SetNodeUp(const Address& addr) {
  MutexLock lock(&mu_);
  down_.erase(addr);
}

bool Network::IsNodeUp(const Address& addr) const {
  MutexLock lock(&mu_);
  return down_.count(addr) == 0;
}

void Network::SetDropProbability(double p) {
  MutexLock lock(&mu_);
  drop_probability_ = p;
}

void Network::PartitionOff(const std::set<Address>& side_a) {
  MutexLock lock(&mu_);
  partition_a_ = side_a;
  partitioned_ = true;
}

void Network::Heal() {
  std::vector<std::function<void()>> listeners;
  {
    MutexLock lock(&mu_);
    partitioned_ = false;
    partition_a_.clear();
    listeners = heal_listeners_;
  }
  // Outside the lock: listeners typically place calls (recovery probes).
  for (const auto& listener : listeners) listener();
}

bool Network::IsPartitioned() const {
  MutexLock lock(&mu_);
  return partitioned_;
}

void Network::AddHealListener(std::function<void()> listener) {
  MutexLock lock(&mu_);
  heal_listeners_.push_back(std::move(listener));
}

void Network::ClearHealListeners() {
  MutexLock lock(&mu_);
  heal_listeners_.clear();
}

void Network::EnableVirtualTimeStepping(ManualClock* clock,
                                        int64_t base_step_micros) {
  MutexLock lock(&mu_);
  step_clock_ = clock;
  step_micros_ = base_step_micros;
}

void Network::SetDelayBurst(int64_t extra_micros) {
  MutexLock lock(&mu_);
  delay_burst_micros_ = extra_micros;
}

EndpointStats Network::GetStats(const Address& addr) const {
  MutexLock lock(&mu_);
  auto it = stats_.find(addr);
  if (it == stats_.end()) return EndpointStats{};
  EndpointStats out;
  out.calls_received = it->second.calls_received->Value();
  out.calls_sent = it->second.calls_sent->Value();
  out.bytes_received = it->second.bytes_received->Value();
  out.bytes_sent = it->second.bytes_sent->Value();
  return out;
}

void Network::ResetStats() {
  MutexLock lock(&mu_);
  for (auto& [addr, inst] : stats_) {
    inst.calls_received->Reset();
    inst.calls_sent->Reset();
    inst.bytes_received->Reset();
    inst.bytes_sent->Reset();
  }
  total_calls_ = 0;
}

}  // namespace lidi::net
