#include "net/network.h"

#include <algorithm>

namespace lidi::net {

namespace {

/// Ambient trace context for nested calls: handlers run synchronously in the
/// caller's thread, so a thread-local is exactly the right carrier. While a
/// handler runs, the ambient context is the span of the call that invoked
/// it; any call the handler places without explicit CallOptions::trace
/// attaches there (and inherits the deadline budget). Zero trace_id = none.
thread_local obs::TraceContext t_ambient{};

/// RAII swap of the ambient context around a handler invocation.
class AmbientScope {
 public:
  explicit AmbientScope(const obs::TraceContext& ctx) : saved_(t_ambient) {
    t_ambient = ctx;
  }
  ~AmbientScope() { t_ambient = saved_; }

 private:
  obs::TraceContext saved_;
};

/// The tighter of two absolute deadlines (0 = none).
int64_t MinDeadline(int64_t a, int64_t b) {
  if (a == 0) return b;
  if (b == 0) return a;
  return std::min(a, b);
}

}  // namespace

Network::Network(uint64_t fault_seed, obs::MetricsRegistry* metrics,
                 const Clock* clock)
    : clock_(clock != nullptr ? clock : SystemClock::Default()),
      rng_(fault_seed) {
  if (metrics == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>(clock_);
    metrics_ = owned_metrics_.get();
  } else {
    metrics_ = metrics;
  }
}

void Network::Register(const Address& addr, const std::string& method,
                       Handler handler) {
  MutexLock lock(&mu_);
  handlers_[addr][method] = Endpoint{std::move(handler), nullptr};
}

void Network::RegisterPayload(const Address& addr, const std::string& method,
                              PayloadHandler handler) {
  MutexLock lock(&mu_);
  handlers_[addr][method] = Endpoint{nullptr, std::move(handler)};
}

void Network::Unregister(const Address& addr) {
  MutexLock lock(&mu_);
  handlers_.erase(addr);
}

Network::EndpointInstruments* Network::InstrumentsLocked(const Address& addr) {
  auto it = stats_.find(addr);
  if (it != stats_.end()) return &it->second;
  EndpointInstruments inst;
  const obs::Labels labels{{"endpoint", addr}};
  inst.calls_received = metrics_->GetCounter("net.calls_received", labels);
  inst.calls_sent = metrics_->GetCounter("net.calls_sent", labels);
  inst.bytes_received = metrics_->GetCounter("net.bytes_received", labels);
  inst.bytes_sent = metrics_->GetCounter("net.bytes_sent", labels);
  return &stats_.emplace(addr, inst).first->second;
}

Status Network::Route(const Address& from, const Address& to,
                      const std::string& method, Slice request,
                      int64_t deadline_micros, Endpoint* out) {
  MutexLock lock(&mu_);
  total_calls_.fetch_add(1, std::memory_order_relaxed);
  EndpointInstruments* sender = InstrumentsLocked(from);
  sender->calls_sent->Increment();
  sender->bytes_sent->Add(static_cast<int64_t>(request.size()));

  // Virtual time: the message in flight is what moves the clock. Stepping
  // before the deadline check means a delay burst can time calls out, which
  // is exactly the failure mode the burst models.
  if (step_clock_ != nullptr) {
    int64_t step = step_micros_;
    if (delay_burst_micros_ > 0) {
      step += static_cast<int64_t>(
          rng_.Uniform(static_cast<uint64_t>(delay_burst_micros_) + 1));
    }
    step_clock_->AdvanceMicros(step);
  }

  if (deadline_micros != 0 && clock_->NowMicros() > deadline_micros) {
    return Status::Timeout("deadline budget exhausted calling " + to);
  }
  if (down_.count(to) > 0) {
    return Status::Unavailable("node down: " + to);
  }
  if (partitioned_) {
    const bool from_a = partition_a_.count(from) > 0;
    const bool to_a = partition_a_.count(to) > 0;
    if (from_a != to_a) {
      return Status::Unavailable("network partition between " + from + " and " +
                                 to);
    }
  }
  if (drop_probability_ > 0 && rng_.Bernoulli(drop_probability_)) {
    return Status::Timeout("message dropped by fault injector");
  }
  auto node_it = handlers_.find(to);
  if (node_it == handlers_.end()) {
    return Status::NotFound("no endpoint: " + to);
  }
  auto method_it = node_it->second.find(method);
  if (method_it == node_it->second.end()) {
    return Status::NotFound("no method " + method + " at " + to);
  }
  *out = method_it->second;
  EndpointInstruments* receiver = InstrumentsLocked(to);
  receiver->calls_received->Increment();
  receiver->bytes_received->Add(static_cast<int64_t>(request.size()));
  return Status::OK();
}

Result<Network::RawResponse> Network::Dispatch(const Address& from,
                                               const Address& to,
                                               const std::string& method,
                                               Slice request,
                                               const CallOptions& options) {
  // Resolve the span's parent: explicit trace option, else the ambient
  // context of the enclosing handler, else a fresh root trace.
  const obs::TraceContext* parent =
      options.trace != nullptr
          ? options.trace
          : (t_ambient.trace_id != 0 ? &t_ambient : nullptr);

  obs::SpanRecord span;
  span.trace_id = parent != nullptr ? parent->trace_id : obs::NextTraceId();
  span.parent_span_id = parent != nullptr ? parent->span_id : 0;
  span.span_id = obs::NextSpanId();
  span.name = method;
  span.peer = to;
  span.start_micros = clock_->NowMicros();
  span.bytes_sent = static_cast<int64_t>(request.size());

  const int64_t deadline = MinDeadline(
      options.deadline_micros,
      parent != nullptr ? parent->deadline_micros : 0);

  obs::LatencyHistogram* latency;
  Endpoint endpoint;
  Status s = Route(from, to, method, request, deadline, &endpoint);
  {
    MutexLock lock(&mu_);
    auto [it, inserted] = method_latency_.try_emplace(method, nullptr);
    if (inserted) {
      it->second =
          metrics_->GetHistogram("net.call_micros", {{"method", method}});
    }
    latency = it->second;
  }

  RawResponse response;
  if (s.ok()) {
    // Invoke outside the lock so handlers can place nested calls; those
    // calls pick up this span as their parent via the ambient context.
    AmbientScope ambient(
        obs::TraceContext{span.trace_id, span.span_id, deadline});
    if (endpoint.payload_handler) {
      auto pinned = endpoint.payload_handler(request);
      if (pinned.ok()) {
        response.is_pinned = true;
        response.view = std::move(pinned.value());
      } else {
        s = pinned.status();
      }
    } else {
      auto owned = endpoint.handler(request);
      if (owned.ok()) {
        response.owned = std::move(owned.value());
      } else {
        s = owned.status();
      }
    }
  }

  span.outcome = s.code();
  span.bytes_received = s.ok() ? static_cast<int64_t>(response.size()) : 0;
  span.duration_micros = clock_->NowMicros() - span.start_micros;
  latency->Record(span.duration_micros);
  metrics_->RecordSpan(std::move(span));

  if (!s.ok()) return s;
  return response;
}

Result<std::string> Network::Call(const Address& from, const Address& to,
                                  const std::string& method, Slice request,
                                  const CallOptions& options) {
  auto response = Dispatch(from, to, method, request, options);
  if (!response.ok()) return response.status();
  if (response.value().is_pinned) {
    return response.value().view.ToString();  // owned-string caller: one copy
  }
  return std::move(response.value().owned);
}

Result<PinnedSlice> Network::CallPayload(const Address& from,
                                         const Address& to,
                                         const std::string& method,
                                         Slice request,
                                         const CallOptions& options) {
  auto response = Dispatch(from, to, method, request, options);
  if (!response.ok()) return response.status();
  if (response.value().is_pinned) {
    return std::move(response.value().view);
  }
  // Move the handler's owned string into a pinned buffer: no byte copy.
  return PinnedSlice::Own(std::move(response.value().owned));
}

void Network::SetNodeDown(const Address& addr) {
  MutexLock lock(&mu_);
  down_.insert(addr);
}

void Network::SetNodeUp(const Address& addr) {
  MutexLock lock(&mu_);
  down_.erase(addr);
}

bool Network::IsNodeUp(const Address& addr) const {
  MutexLock lock(&mu_);
  return down_.count(addr) == 0;
}

void Network::SetDropProbability(double p) {
  MutexLock lock(&mu_);
  drop_probability_ = p;
}

void Network::PartitionOff(const std::set<Address>& side_a) {
  MutexLock lock(&mu_);
  partition_a_ = side_a;
  partitioned_ = true;
}

void Network::Heal() {
  std::vector<std::function<void()>> listeners;
  {
    MutexLock lock(&mu_);
    partitioned_ = false;
    partition_a_.clear();
    listeners = heal_listeners_;
  }
  // Outside the lock: listeners typically place calls (recovery probes).
  for (const auto& listener : listeners) listener();
}

bool Network::IsPartitioned() const {
  MutexLock lock(&mu_);
  return partitioned_;
}

void Network::AddHealListener(std::function<void()> listener) {
  MutexLock lock(&mu_);
  heal_listeners_.push_back(std::move(listener));
}

void Network::ClearHealListeners() {
  MutexLock lock(&mu_);
  heal_listeners_.clear();
}

void Network::EnableVirtualTimeStepping(ManualClock* clock,
                                        int64_t base_step_micros) {
  MutexLock lock(&mu_);
  step_clock_ = clock;
  step_micros_ = base_step_micros;
}

void Network::SetDelayBurst(int64_t extra_micros) {
  MutexLock lock(&mu_);
  delay_burst_micros_ = extra_micros;
}

EndpointStats Network::GetStats(const Address& addr) const {
  MutexLock lock(&mu_);
  auto it = stats_.find(addr);
  if (it == stats_.end()) return EndpointStats{};
  EndpointStats out;
  out.calls_received = it->second.calls_received->Value();
  out.calls_sent = it->second.calls_sent->Value();
  out.bytes_received = it->second.bytes_received->Value();
  out.bytes_sent = it->second.bytes_sent->Value();
  return out;
}

void Network::ResetStats() {
  MutexLock lock(&mu_);
  for (auto& [addr, inst] : stats_) {
    inst.calls_received->Reset();
    inst.calls_sent->Reset();
    inst.bytes_received->Reset();
    inst.bytes_sent->Reset();
  }
  total_calls_ = 0;
}

}  // namespace lidi::net
