#include "net/transport.h"

#include <algorithm>
#include <utility>

namespace lidi::net {

namespace {
thread_local Address t_caller{};
}  // namespace

const Address& CallerIdentity() { return t_caller; }

namespace internal {

namespace {
thread_local obs::TraceContext t_ambient{};
}  // namespace

CallerScope::CallerScope(const Address& from) : saved_(t_caller) {
  t_caller = from;
}

CallerScope::~CallerScope() { t_caller = saved_; }

const obs::TraceContext& AmbientTrace() { return t_ambient; }

AmbientTraceScope::AmbientTraceScope(const obs::TraceContext& ctx)
    : saved_(t_ambient) {
  t_ambient = ctx;
}

AmbientTraceScope::~AmbientTraceScope() { t_ambient = saved_; }

int64_t MinDeadline(int64_t a, int64_t b) {
  if (a == 0) return b;
  if (b == 0) return a;
  return std::min(a, b);
}

CallSpan CallSpan::Begin(const CallOptions& options, const Address& to,
                         const std::string& method, size_t request_bytes,
                         int64_t now_micros) {
  const obs::TraceContext* parent =
      options.trace != nullptr
          ? options.trace
          : (t_ambient.trace_id != 0 ? &t_ambient : nullptr);

  CallSpan out;
  out.span.trace_id = parent != nullptr ? parent->trace_id : obs::NextTraceId();
  out.span.parent_span_id = parent != nullptr ? parent->span_id : 0;
  out.span.span_id = obs::NextSpanId();
  out.span.name = method;
  out.span.peer = to;
  out.span.start_micros = now_micros;
  out.span.bytes_sent = static_cast<int64_t>(request_bytes);
  out.deadline_micros =
      MinDeadline(options.deadline_micros,
                  parent != nullptr ? parent->deadline_micros : 0);
  return out;
}

void CallSpan::Finish(const Status& status, size_t response_bytes,
                      int64_t now_micros, obs::MetricsRegistry* metrics) {
  span.outcome = status.code();
  span.bytes_received = status.ok() ? static_cast<int64_t>(response_bytes) : 0;
  span.duration_micros = now_micros - span.start_micros;
  metrics->RecordSpan(std::move(span));
}

}  // namespace internal

void Transport::Register(const Address& addr, const std::string& method,
                         Handler handler) {
  RegisterPayload(addr, method,
                  [handler = std::move(handler)](Slice request)
                      -> Result<PinnedSlice> {
                    auto owned = handler(request);
                    if (!owned.ok()) return owned.status();
                    return PinnedSlice::Own(std::move(owned.value()));
                  });
}

Result<std::string> Transport::Call(const Address& from, const Address& to,
                                    const std::string& method, Slice request,
                                    const CallOptions& options) {
  auto response = CallPayload(from, to, method, request, options);
  if (!response.ok()) return response.status();
  return response.value().ToString();  // owned-string caller: one copy
}

}  // namespace lidi::net
