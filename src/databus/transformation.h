#ifndef LIDI_DATABUS_TRANSFORMATION_H_
#define LIDI_DATABUS_TRANSFORMATION_H_

#include <map>
#include <optional>
#include <set>
#include <string>

#include "databus/event.h"

namespace lidi::databus {

/// Declarative data transformations — the paper's named future work for
/// Databus (Section III.E: "Future work includes ... supporting declarative
/// data transformations"). A Transformation is applied by the client library
/// between the relay and the consumer's business logic, so subscribers can
/// reshape the change stream without writing imperative glue.
///
/// Spec grammar (semicolon-separated clauses, all optional):
///   project col1,col2,...      keep only the named row columns
///   rename old:new[,old:new]   rename row columns
///   where col=value            drop events whose row lacks col=value
///
/// e.g.  "project name,company; rename company:employer; where country=us"
///
/// Delete events pass through untouched (their payload is empty); `where`
/// filters apply only to upserts.
class Transformation {
 public:
  Transformation() = default;

  static Result<Transformation> Parse(const std::string& spec);

  /// Applies the transformation. Returns std::nullopt when the event is
  /// filtered out; otherwise the (possibly rewritten) event.
  Result<std::optional<Event>> Apply(const Event& event) const;

  bool empty() const {
    return projection_.empty() && renames_.empty() && filters_.empty();
  }

  const std::set<std::string>& projection() const { return projection_; }
  const std::map<std::string, std::string>& renames() const {
    return renames_;
  }

 private:
  std::set<std::string> projection_;
  std::map<std::string, std::string> renames_;  // old name -> new name
  std::map<std::string, std::string> filters_;  // column -> required value
};

}  // namespace lidi::databus

#endif  // LIDI_DATABUS_TRANSFORMATION_H_
