#ifndef LIDI_DATABUS_BOOTSTRAP_H_
#define LIDI_DATABUS_BOOTSTRAP_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "databus/event.h"
#include "databus/relay.h"
#include "net/transport.h"

namespace lidi::databus {

/// Result of a consistent-snapshot query: the live rows plus the sequence
/// number U of the last transaction applied — the client continues relay
/// consumption from U (paper Section III.C, Figure III.3).
struct SnapshotResult {
  std::vector<Event> rows;  // one upsert event per live key
  int64_t snapshot_scn = 0;
};

/// The Databus bootstrap server (paper Section III.C): listens to the relay
/// event stream and provides long-term storage serving arbitrary long
/// look-back queries, isolating the source database from those clients.
///
/// Internally keeps two storages, exactly as Figure III.3:
///  - Log storage: the LogWriter appends every relay event (append-only);
///  - Snapshot storage: the LogApplier folds log rows into last-event-per-key.
///
/// Query types:
///  - consolidated delta since T: only the LAST of multiple updates to the
///    same key is returned ("fast playback" of time);
///  - consistent snapshot at U: all live rows plus U for relay resumption.
///
/// RPC: "bootstrap.delta" (same request encoding as databus.read) and
/// "bootstrap.snapshot" (request = filter only).
///
/// Observability: relay pulls run under a "databus.bootstrap.poll" span;
/// fetched/applied volume is counted in "databus.bootstrap.events_fetched"
/// and "databus.bootstrap.rows_applied", labeled by server name.
class BootstrapServer {
 public:
  BootstrapServer(std::string name, net::Address relay, net::Transport* network);
  ~BootstrapServer();

  BootstrapServer(const BootstrapServer&) = delete;
  BootstrapServer& operator=(const BootstrapServer&) = delete;

  const net::Address& address() const { return name_; }

  /// LogWriter step: pulls new events from the relay into log storage.
  /// Returns events fetched.
  Result<int64_t> PollRelayOnce();

  /// LogApplier step: folds up to `max_rows` pending log rows into snapshot
  /// storage. Returns rows applied. (Separated from PollRelayOnce so tests
  /// can exercise the log/snapshot split; call both in a loop in practice.)
  int64_t ApplyLogOnce(int64_t max_rows = 1 << 20);

  /// Consolidated delta: last update per key with scn > since_scn, matching
  /// the filter. Served from snapshot storage (plus replayed log tail) so
  /// its cost is proportional to live keys, not to history length.
  Result<std::vector<Event>> ConsolidatedDelta(int64_t since_scn,
                                               const Filter& filter) const;

  /// Consistent snapshot: every live row and the scn to resume from.
  Result<SnapshotResult> ConsistentSnapshot(const Filter& filter) const;

  int64_t log_size() const;
  int64_t snapshot_keys() const;
  int64_t applied_scn() const;

 private:
  struct SnapshotEntry {
    int64_t scn = 0;
    Event last_event;  // the full last event (upsert or delete)
  };

  const std::string name_;
  const net::Address relay_;
  net::Transport* const network_;
  obs::MetricsRegistry* const metrics_;
  obs::Counter* const events_fetched_;
  obs::Counter* const rows_applied_;

  /// Never held across the relay pull (PollRelayOnce fetches unlocked).
  mutable Mutex mu_{"databus.bootstrap"};
  std::vector<Event> log_ LIDI_GUARDED_BY(mu_);   // append-only log storage
  std::map<std::pair<std::string, std::string>, SnapshotEntry> snapshot_
      LIDI_GUARDED_BY(mu_);                       // (source, key) -> last
  int64_t log_fetched_scn_ LIDI_GUARDED_BY(mu_) =
      0;                                          // high-water mark from relay
  size_t apply_cursor_ LIDI_GUARDED_BY(mu_) =
      0;                                          // log index applier reached
  int64_t applied_scn_ LIDI_GUARDED_BY(mu_) = 0;
};

}  // namespace lidi::databus

#endif  // LIDI_DATABUS_BOOTSTRAP_H_
