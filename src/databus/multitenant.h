#ifndef LIDI_DATABUS_MULTITENANT_H_
#define LIDI_DATABUS_MULTITENANT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "databus/relay.h"

namespace lidi::databus {

/// Multi-tenant relay hosting — the paper's named Databus future work
/// (Section III.E: "Future work includes ... multi-tenancy").
///
/// One relay process serves the change streams of many source databases
/// ("tenants"). Each tenant gets its own circular buffer and its own SCN
/// space (SCNs are per-source, so buffers cannot be merged), carved out of a
/// shared memory budget. The key tenancy property is isolation: a noisy
/// tenant can exhaust only its own buffer share, never evict a quiet
/// tenant's events.
///
/// Tenant streams are served under the address "<relay>/<tenant>" with the
/// ordinary databus.read protocol, so DatabusClient and BootstrapServer work
/// unchanged against a tenant stream.
class MultiTenantRelay {
 public:
  /// `total_buffer_events` is the process-wide buffer budget, divided
  /// evenly among tenants at AddTenant time (existing tenants keep their
  /// allocation; production systems would rebalance — documented trade-off).
  MultiTenantRelay(std::string name, net::Transport* network,
                   int64_t total_buffer_events = 1 << 20)
      : name_(std::move(name)),
        network_(network),
        total_buffer_events_(total_buffer_events) {}

  /// Registers a tenant database. Its stream is served at address
  /// "<relay-name>/<tenant>". AlreadyExists if the tenant is registered.
  Status AddTenant(const std::string& tenant, const sqlstore::Database* source);
  Status RemoveTenant(const std::string& tenant);

  /// Address a tenant's consumers connect to.
  std::string TenantAddress(const std::string& tenant) const {
    return name_ + "/" + tenant;
  }

  /// Polls every tenant's source. Returns total events ingested.
  Result<int64_t> PollAllOnce();

  std::vector<std::string> Tenants() const;
  int64_t BufferedEvents(const std::string& tenant) const;
  int64_t BufferShare() const;

 private:
  const std::string name_;
  net::Transport* const network_;
  const int64_t total_buffer_events_;

  mutable Mutex mu_{"databus.multitenant"};
  /// shared_ptr, not unique_ptr: PollAllOnce polls tenants with mu_
  /// released (a poll is an upstream RPC), so a concurrent RemoveTenant
  /// must not be able to destroy a relay mid-poll.
  std::map<std::string, std::shared_ptr<Relay>> tenants_
      LIDI_GUARDED_BY(mu_);
};

}  // namespace lidi::databus

#endif  // LIDI_DATABUS_MULTITENANT_H_
