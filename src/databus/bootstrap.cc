#include "databus/bootstrap.h"

#include <algorithm>

#include "common/coding.h"

namespace lidi::databus {

BootstrapServer::BootstrapServer(std::string name, net::Address relay,
                                 net::Transport* network)
    : name_(std::move(name)),
      relay_(std::move(relay)),
      network_(network),
      metrics_(network->metrics()),
      events_fetched_(metrics_->GetCounter("databus.bootstrap.events_fetched",
                                           {{"server", name_}})),
      rows_applied_(metrics_->GetCounter("databus.bootstrap.rows_applied",
                                         {{"server", name_}})) {
  network_->Register(name_, "bootstrap.delta", [this](Slice req) {
    int64_t since_scn, max_events;
    Filter filter;
    Status s = DecodeReadRequest(req, &since_scn, &max_events, &filter);
    if (!s.ok()) return Result<std::string>(s);
    auto events = ConsolidatedDelta(since_scn, filter);
    if (!events.ok()) return Result<std::string>(events.status());
    std::string out;
    EncodeEventList(events.value(), &out);
    return Result<std::string>(std::move(out));
  });
  network_->Register(name_, "bootstrap.snapshot", [this](Slice req) {
    Slice input = req;
    auto filter = Filter::DecodeFrom(&input);
    if (!filter.ok()) return Result<std::string>(filter.status());
    auto snapshot = ConsistentSnapshot(filter.value());
    if (!snapshot.ok()) return Result<std::string>(snapshot.status());
    std::string out;
    PutVarint64(&out, static_cast<uint64_t>(snapshot.value().snapshot_scn));
    EncodeEventList(snapshot.value().rows, &out);
    return Result<std::string>(std::move(out));
  });
}

BootstrapServer::~BootstrapServer() { network_->Unregister(name_); }

Result<int64_t> BootstrapServer::PollRelayOnce() {
  obs::ScopedSpan span(metrics_, "databus.bootstrap.poll");
  span.set_peer(relay_);
  int64_t since;
  {
    MutexLock lock(&mu_);
    since = log_fetched_scn_;
  }
  std::string request;
  EncodeReadRequest(since, /*max_events=*/1 << 16, Filter{}, &request);
  auto r = network_->Call(name_, relay_, "databus.read", request,
                          net::CallOptions{&span.context()});
  if (!r.ok()) {
    span.set_outcome(r.status());
    return r.status();
  }
  auto events = DecodeEventList(r.value());
  if (!events.ok()) {
    span.set_outcome(events.status());
    return events.status();
  }

  MutexLock lock(&mu_);
  for (Event& event : events.value()) {
    log_fetched_scn_ = std::max(log_fetched_scn_, event.scn);
    log_.push_back(std::move(event));
  }
  events_fetched_->Add(static_cast<int64_t>(events.value().size()));
  return static_cast<int64_t>(events.value().size());
}

int64_t BootstrapServer::ApplyLogOnce(int64_t max_rows) {
  MutexLock lock(&mu_);
  int64_t applied = 0;
  while (apply_cursor_ < log_.size() && applied < max_rows) {
    const Event& event = log_[apply_cursor_++];
    SnapshotEntry& entry = snapshot_[{event.source, event.key}];
    entry.scn = event.scn;
    entry.last_event = event;
    applied_scn_ = std::max(applied_scn_, event.scn);
    ++applied;
  }
  rows_applied_->Add(applied);
  return applied;
}

Result<std::vector<Event>> BootstrapServer::ConsolidatedDelta(
    int64_t since_scn, const Filter& filter) const {
  MutexLock lock(&mu_);
  // Serve from snapshot storage (last event per key), then overlay any log
  // tail the applier has not folded yet — the replay that guarantees
  // consistency while the (long) snapshot scan runs.
  std::map<std::pair<std::string, std::string>, Event> result;
  for (const auto& [key, entry] : snapshot_) {
    if (entry.scn > since_scn && filter.Matches(entry.last_event)) {
      result[key] = entry.last_event;
    }
  }
  for (size_t i = apply_cursor_; i < log_.size(); ++i) {
    const Event& event = log_[i];
    if (event.scn > since_scn && filter.Matches(event)) {
      result[{event.source, event.key}] = event;
    }
  }
  std::vector<Event> out;
  out.reserve(result.size());
  for (auto& [key, event] : result) out.push_back(std::move(event));
  // Deliver in scn order so consumer checkpoints advance monotonically.
  std::sort(out.begin(), out.end(),
            [](const Event& a, const Event& b) { return a.scn < b.scn; });
  return out;
}

Result<SnapshotResult> BootstrapServer::ConsistentSnapshot(
    const Filter& filter) const {
  MutexLock lock(&mu_);
  SnapshotResult result;
  // Live rows: snapshot entries overlaid with the unapplied log tail,
  // dropping deletes.
  std::map<std::pair<std::string, std::string>, Event> live;
  for (const auto& [key, entry] : snapshot_) {
    live[key] = entry.last_event;
  }
  int64_t max_scn = applied_scn_;
  for (size_t i = apply_cursor_; i < log_.size(); ++i) {
    const Event& event = log_[i];
    live[{event.source, event.key}] = event;
    max_scn = std::max(max_scn, event.scn);
  }
  for (auto& [key, event] : live) {
    if (event.op == Event::Op::kDelete) continue;
    if (!filter.Matches(event)) continue;
    result.rows.push_back(std::move(event));
  }
  std::sort(result.rows.begin(), result.rows.end(),
            [](const Event& a, const Event& b) { return a.scn < b.scn; });
  result.snapshot_scn = max_scn;
  return result;
}

int64_t BootstrapServer::log_size() const {
  MutexLock lock(&mu_);
  return static_cast<int64_t>(log_.size());
}

int64_t BootstrapServer::snapshot_keys() const {
  MutexLock lock(&mu_);
  return static_cast<int64_t>(snapshot_.size());
}

int64_t BootstrapServer::applied_scn() const {
  MutexLock lock(&mu_);
  return applied_scn_;
}

}  // namespace lidi::databus
