#include "databus/transformation.h"

#include <cctype>
#include <vector>

#include "sqlstore/database.h"

namespace lidi::databus {

namespace {

std::string Trim(const std::string& s) {
  size_t start = 0, end = s.size();
  while (start < end && std::isspace(static_cast<unsigned char>(s[start]))) {
    ++start;
  }
  while (end > start && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(start, end - start);
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (;;) {
    const size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(Trim(s.substr(start)));
      return out;
    }
    out.push_back(Trim(s.substr(start, pos - start)));
    start = pos + 1;
  }
}

}  // namespace

Result<Transformation> Transformation::Parse(const std::string& spec) {
  Transformation t;
  for (const std::string& clause : Split(spec, ';')) {
    if (clause.empty()) continue;
    if (clause.rfind("project ", 0) == 0) {
      for (const std::string& column : Split(clause.substr(8), ',')) {
        if (column.empty()) {
          return Status::InvalidArgument("empty column in project clause");
        }
        t.projection_.insert(column);
      }
    } else if (clause.rfind("rename ", 0) == 0) {
      for (const std::string& pair : Split(clause.substr(7), ',')) {
        const size_t colon = pair.find(':');
        if (colon == std::string::npos || colon == 0 ||
            colon + 1 == pair.size()) {
          return Status::InvalidArgument("rename needs old:new, got " + pair);
        }
        t.renames_[Trim(pair.substr(0, colon))] = Trim(pair.substr(colon + 1));
      }
    } else if (clause.rfind("where ", 0) == 0) {
      const std::string condition = clause.substr(6);
      const size_t eq = condition.find('=');
      if (eq == std::string::npos || eq == 0) {
        return Status::InvalidArgument("where needs col=value, got " +
                                       condition);
      }
      t.filters_[Trim(condition.substr(0, eq))] = Trim(condition.substr(eq + 1));
    } else {
      return Status::InvalidArgument("unknown clause: " + clause);
    }
  }
  return t;
}

Result<std::optional<Event>> Transformation::Apply(const Event& event) const {
  if (empty() || event.op == Event::Op::kDelete) return std::optional<Event>(event);
  auto row = sqlstore::DecodeRow(event.payload);
  if (!row.ok()) return row.status();

  for (const auto& [column, required] : filters_) {
    auto it = row.value().find(column);
    if (it == row.value().end() || it->second != required) {
      return std::optional<Event>(std::nullopt);  // filtered out
    }
  }

  sqlstore::Row out_row;
  for (const auto& [column, value] : row.value()) {
    if (!projection_.empty() && projection_.count(column) == 0) continue;
    auto rename = renames_.find(column);
    out_row[rename == renames_.end() ? column : rename->second] = value;
  }
  Event out = event;
  out.payload.clear();
  sqlstore::EncodeRow(out_row, &out.payload);
  return std::optional<Event>(std::move(out));
}

}  // namespace lidi::databus
