#ifndef LIDI_DATABUS_EVENT_H_
#define LIDI_DATABUS_EVENT_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace lidi::databus {

/// A Databus change-data-capture event (paper Section III.C): sequence
/// number in source-database commit order, metadata identifying the change,
/// and the serialized payload (the post-image row; Avro-encoded in
/// production, lidi ships sqlstore's portable row encoding — both are
/// source-independent binary formats).
struct Event {
  int64_t scn = 0;
  std::string source;  // table / logical source name
  std::string key;     // primary key of the changed row
  enum class Op : uint8_t { kUpsert = 0, kDelete = 1 } op = Op::kUpsert;
  int partition = -1;
  /// True on the last event of its transaction — the transaction envelope
  /// marker consumers use to respect atomic boundaries.
  bool end_of_txn = true;
  std::string payload;

  friend bool operator==(const Event& a, const Event& b) {
    return a.scn == b.scn && a.source == b.source && a.key == b.key &&
           a.op == b.op && a.partition == b.partition &&
           a.end_of_txn == b.end_of_txn && a.payload == b.payload;
  }
};

void EncodeEvent(const Event& event, std::string* out);
Result<Event> DecodeEvent(Slice* input);

void EncodeEventList(const std::vector<Event>& events, std::string* out);
Result<std::vector<Event>> DecodeEventList(Slice input);

/// Server-side filter pushed down to relays and bootstrap servers (Section
/// III.C: "Server-side filtering for support of multiple partitioning
/// schemes"). Empty sets / zero mod = no constraint.
struct Filter {
  std::set<std::string> sources;
  /// Mod-partitioning: deliver events where partition % mod_base is in
  /// mod_residues. mod_base == 0 disables.
  int mod_base = 0;
  std::set<int> mod_residues;

  bool Matches(const Event& event) const {
    if (!sources.empty() && sources.count(event.source) == 0) return false;
    if (mod_base > 0) {
      const int residue =
          event.partition >= 0 ? event.partition % mod_base : 0;
      if (mod_residues.count(residue) == 0) return false;
    }
    return true;
  }

  void EncodeTo(std::string* out) const;
  static Result<Filter> DecodeFrom(Slice* input);
};

}  // namespace lidi::databus

#endif  // LIDI_DATABUS_EVENT_H_
