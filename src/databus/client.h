#ifndef LIDI_DATABUS_CLIENT_H_
#define LIDI_DATABUS_CLIENT_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "databus/event.h"
#include "databus/relay.h"
#include "databus/transformation.h"
#include "net/transport.h"

namespace lidi::databus {

/// A Databus consumer: business logic invoked per event (push interface).
/// Returning non-OK triggers the client library's retry logic.
class Consumer {
 public:
  virtual ~Consumer() = default;
  virtual Status OnEvent(const Event& event) = 0;
  /// Called when the client's checkpoint advances (after a processed batch).
  virtual void OnCheckpoint(int64_t scn) {}
  /// Called when the client falls back to bootstrap (diagnostics).
  virtual void OnBootstrap(bool snapshot_phase) {}
};

/// Convenience adapter from a callable.
class CallbackConsumer : public Consumer {
 public:
  explicit CallbackConsumer(std::function<Status(const Event&)> fn)
      : fn_(std::move(fn)) {}
  Status OnEvent(const Event& event) override { return fn_(event); }

 private:
  std::function<Status(const Event&)> fn_;
};

struct ClientOptions {
  int64_t max_batch_events = 4096;
  /// Retries per event before the batch is abandoned (paper III.C: "Retry
  /// logic if consumers fail to process some events").
  int max_event_retries = 3;
  /// Server-side filter pushed down to relays/bootstrap servers.
  Filter filter;
  /// Declarative transformation applied client-side before the consumer
  /// sees events (projection / rename / where; see transformation.h).
  Transformation transformation;
};

/// The Databus client library (paper Section III.C): the glue between
/// relays/bootstrap servers and consumer business logic. Tracks progress in
/// the event stream (the consumer's state is its checkpoint SCN), pulls from
/// the relay, and switches to the bootstrap server automatically when the
/// relay no longer buffers the checkpoint — consuming either a consolidated
/// delta (some state) or a consistent snapshot (no state), then returning to
/// the relay.
class DatabusClient {
 public:
  DatabusClient(std::string name, net::Address relay, net::Address bootstrap,
                net::Transport* network, Consumer* consumer,
                ClientOptions options = {});

  /// One pull-process cycle. Returns the number of events delivered to the
  /// consumer. Transparently handles relay -> bootstrap -> relay switchover.
  Result<int64_t> PollOnce();

  /// Runs PollOnce until the stream is drained (returns 0 events).
  Result<int64_t> DrainToHead();

  int64_t checkpoint_scn() const { return checkpoint_scn_; }
  /// Restores a persisted checkpoint (consumers persist their own state).
  void RestoreCheckpoint(int64_t scn) { checkpoint_scn_ = scn; }

  int64_t bootstrap_switchovers() const { return bootstrap_switchovers_; }
  int64_t events_delivered() const { return events_delivered_; }
  int64_t events_skipped() const { return events_skipped_; }

 private:
  Result<int64_t> DeliverBatch(const std::vector<Event>& events);
  Result<int64_t> BootstrapAndResume();

  const std::string name_;
  const net::Address relay_;
  const net::Address bootstrap_;
  net::Transport* const network_;
  Consumer* const consumer_;
  const ClientOptions options_;

  int64_t checkpoint_scn_ = 0;
  bool has_state_ = false;  // false until the first successful consumption
  int64_t bootstrap_switchovers_ = 0;
  int64_t events_delivered_ = 0;
  int64_t events_skipped_ = 0;
};

}  // namespace lidi::databus

#endif  // LIDI_DATABUS_CLIENT_H_
