#ifndef LIDI_DATABUS_RELAY_H_
#define LIDI_DATABUS_RELAY_H_

#include <deque>
#include <memory>
#include <string>

#include "common/sync.h"
#include "databus/event.h"
#include "net/transport.h"
#include "sqlstore/database.h"

namespace lidi::databus {

struct RelayOptions {
  /// Circular-buffer capacity in events (production relays hold hundreds of
  /// millions in tens of GB; tests use small values to exercise eviction).
  int64_t buffer_capacity_events = 1 << 20;
  /// Max transactions ingested per poll.
  int64_t poll_batch_transactions = 1024;
};

/// The Databus relay (paper Section III.C): captures changes from the source
/// database (by consuming its replication log), serializes them to the
/// source-independent event format, and buffers them in an in-memory
/// circular buffer indexed by SCN.
///
/// The relay is stateless across restarts — it re-pulls from the source, the
/// source of truth, which is what keeps the relay tier simple (III.D).
/// Relays serve clients and bootstrap servers over the network, and can
/// chain off another relay instead of a database for replicated availability.
///
/// RPC: "databus.read" with request = {since_scn varint, max_events varint,
/// filter}; response = encoded event list. A read from an SCN older than the
/// buffer's tail fails NotFound — the client must bootstrap.
///
/// Observability: each pull runs under a "databus.relay.poll" span in the
/// network's registry (chained pulls carry the span across the upstream
/// hop); ingest/serve volume lands in "databus.relay.events_ingested" and
/// "databus.relay.events_served", labeled by relay name.
class Relay {
 public:
  /// A relay capturing directly from a source database.
  Relay(std::string relay_name, const sqlstore::Database* source,
        net::Transport* network, RelayOptions options = {});

  /// A chained relay pulling from an upstream relay's serve path.
  Relay(std::string relay_name, net::Address upstream_relay,
        net::Transport* network, RelayOptions options = {});

  ~Relay();

  Relay(const Relay&) = delete;
  Relay& operator=(const Relay&) = delete;

  const net::Address& address() const { return name_; }

  /// Ingests newly committed transactions from the source (or upstream
  /// relay). Returns the number of events ingested. Call from a poller
  /// thread in production; tests call it synchronously.
  Result<int64_t> PollOnce();

  /// Direct (in-process) read path; the RPC handler forwards here. Returns
  /// events with scn > since_scn matching the filter.
  Result<std::vector<Event>> ReadEvents(int64_t since_scn, int64_t max_events,
                                        const Filter& filter) const;

  /// Ingest an externally pushed transaction (used by Espresso storage
  /// nodes shipping their binlog into per-partition buffers, Section IV.B).
  void PushTransaction(const sqlstore::CommittedTransaction& txn);

  /// Adjusts the circular-buffer capacity at runtime (trimming the oldest
  /// events if shrinking). Used by the multi-tenant host to rebalance the
  /// shared budget when tenants come and go.
  void SetBufferCapacity(int64_t capacity_events);

  int64_t min_buffered_scn() const;
  int64_t max_buffered_scn() const;
  int64_t buffered_events() const;

 private:
  Relay(std::string relay_name, const sqlstore::Database* source,
        net::Address upstream, net::Transport* network, RelayOptions options);

  void AppendEventsLocked(std::vector<Event> events) LIDI_REQUIRES(mu_);

  const std::string name_;
  const sqlstore::Database* const source_;  // null for chained relays
  const net::Address upstream_;             // empty for direct relays
  net::Transport* const network_;
  RelayOptions options_ LIDI_GUARDED_BY(mu_);  // capacity adjustable at runtime
  obs::MetricsRegistry* const metrics_;
  obs::Counter* const events_ingested_;
  obs::Counter* const events_served_;

  /// Never held across the upstream pull (PollOnce snapshots the cursor,
  /// fetches unlocked, then merges) so serving consumers is never blocked
  /// behind a slow source.
  mutable Mutex mu_{"databus.relay"};
  std::deque<Event> buffer_ LIDI_GUARDED_BY(mu_);
  int64_t last_pulled_scn_ LIDI_GUARDED_BY(mu_) = 0;
};

/// Encodes/decodes the "databus.read" request.
void EncodeReadRequest(int64_t since_scn, int64_t max_events,
                       const Filter& filter, std::string* out);
Status DecodeReadRequest(Slice input, int64_t* since_scn, int64_t* max_events,
                         Filter* filter);

}  // namespace lidi::databus

#endif  // LIDI_DATABUS_RELAY_H_
