#include "databus/multitenant.h"

#include <algorithm>

namespace lidi::databus {

Status MultiTenantRelay::AddTenant(const std::string& tenant,
                                   const sqlstore::Database* source) {
  if (tenant.empty() || tenant.find('/') != std::string::npos) {
    return Status::InvalidArgument("bad tenant name: " + tenant);
  }
  MutexLock lock(&mu_);
  if (tenants_.count(tenant) > 0) return Status::AlreadyExists(tenant);
  RelayOptions options;
  // Equal share of the process budget per tenant: the isolation property.
  const int64_t share = std::max<int64_t>(
      1, total_buffer_events_ / static_cast<int64_t>(tenants_.size() + 1));
  options.buffer_capacity_events = share;
  options.poll_batch_transactions = std::max<int64_t>(1, share / 2);
  tenants_[tenant] = std::make_shared<Relay>(TenantAddress(tenant), source,
                                             network_, options);
  // Rebalance every tenant to the new equal share.
  for (auto& [name, relay] : tenants_) relay->SetBufferCapacity(share);
  return Status::OK();
}

Status MultiTenantRelay::RemoveTenant(const std::string& tenant) {
  MutexLock lock(&mu_);
  if (tenants_.erase(tenant) == 0) return Status::NotFound(tenant);
  if (!tenants_.empty()) {
    const int64_t share = std::max<int64_t>(
        1, total_buffer_events_ / static_cast<int64_t>(tenants_.size()));
    for (auto& [name, relay] : tenants_) relay->SetBufferCapacity(share);
  }
  return Status::OK();
}

Result<int64_t> MultiTenantRelay::PollAllOnce() {
  // Snapshot shared ownership, then poll unlocked: each poll is an
  // upstream RPC, and the shared_ptr keeps a relay alive even if
  // RemoveTenant races with the poll.
  std::vector<std::shared_ptr<Relay>> relays;
  {
    MutexLock lock(&mu_);
    for (auto& [name, relay] : tenants_) relays.push_back(relay);
  }
  int64_t total = 0;
  for (const auto& relay : relays) {
    auto n = relay->PollOnce();
    if (!n.ok()) return n;
    total += n.value();
  }
  return total;
}

std::vector<std::string> MultiTenantRelay::Tenants() const {
  MutexLock lock(&mu_);
  std::vector<std::string> out;
  for (const auto& [name, relay] : tenants_) out.push_back(name);
  return out;
}

int64_t MultiTenantRelay::BufferedEvents(const std::string& tenant) const {
  MutexLock lock(&mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second->buffered_events();
}

int64_t MultiTenantRelay::BufferShare() const {
  MutexLock lock(&mu_);
  return std::max<int64_t>(
      1, total_buffer_events_ / std::max<size_t>(1, tenants_.size()));
}

}  // namespace lidi::databus
