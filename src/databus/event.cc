#include "databus/event.h"

#include "common/coding.h"

namespace lidi::databus {

void EncodeEvent(const Event& event, std::string* out) {
  PutVarint64(out, static_cast<uint64_t>(event.scn));
  PutLengthPrefixed(out, event.source);
  PutLengthPrefixed(out, event.key);
  out->push_back(static_cast<char>(event.op));
  PutZigZag64(out, event.partition);
  out->push_back(event.end_of_txn ? 1 : 0);
  PutLengthPrefixed(out, event.payload);
}

Result<Event> DecodeEvent(Slice* input) {
  Event event;
  uint64_t scn;
  Slice source, key, payload;
  if (!GetVarint64(input, &scn) || !GetLengthPrefixed(input, &source) ||
      !GetLengthPrefixed(input, &key)) {
    return Status::Corruption("truncated event header");
  }
  if (input->empty()) return Status::Corruption("truncated event op");
  event.op = static_cast<Event::Op>((*input)[0]);
  input->RemovePrefix(1);
  int64_t partition;
  if (!GetZigZag64(input, &partition)) {
    return Status::Corruption("truncated event partition");
  }
  if (input->empty()) return Status::Corruption("truncated event txn marker");
  event.end_of_txn = (*input)[0] != 0;
  input->RemovePrefix(1);
  if (!GetLengthPrefixed(input, &payload)) {
    return Status::Corruption("truncated event payload");
  }
  event.scn = static_cast<int64_t>(scn);
  event.source = source.ToString();
  event.key = key.ToString();
  event.partition = static_cast<int>(partition);
  event.payload = payload.ToString();
  return event;
}

void EncodeEventList(const std::vector<Event>& events, std::string* out) {
  PutVarint64(out, events.size());
  for (const Event& e : events) EncodeEvent(e, out);
}

Result<std::vector<Event>> DecodeEventList(Slice input) {
  uint64_t count;
  if (!GetVarint64(&input, &count)) {
    return Status::Corruption("truncated event list");
  }
  std::vector<Event> out;
  out.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    auto e = DecodeEvent(&input);
    if (!e.ok()) return e.status();
    out.push_back(std::move(e.value()));
  }
  return out;
}

void Filter::EncodeTo(std::string* out) const {
  PutVarint64(out, sources.size());
  for (const std::string& s : sources) PutLengthPrefixed(out, s);
  PutVarint64(out, static_cast<uint64_t>(mod_base));
  PutVarint64(out, mod_residues.size());
  for (int r : mod_residues) PutVarint64(out, static_cast<uint64_t>(r));
}

Result<Filter> Filter::DecodeFrom(Slice* input) {
  Filter f;
  uint64_t source_count;
  if (!GetVarint64(input, &source_count)) {
    return Status::Corruption("truncated filter");
  }
  for (uint64_t i = 0; i < source_count; ++i) {
    Slice s;
    if (!GetLengthPrefixed(input, &s)) {
      return Status::Corruption("truncated filter source");
    }
    f.sources.insert(s.ToString());
  }
  uint64_t mod_base, residue_count;
  if (!GetVarint64(input, &mod_base) || !GetVarint64(input, &residue_count)) {
    return Status::Corruption("truncated filter mod");
  }
  f.mod_base = static_cast<int>(mod_base);
  for (uint64_t i = 0; i < residue_count; ++i) {
    uint64_t r;
    if (!GetVarint64(input, &r)) {
      return Status::Corruption("truncated filter residue");
    }
    f.mod_residues.insert(static_cast<int>(r));
  }
  return f;
}

}  // namespace lidi::databus
