#include "databus/client.h"

#include <algorithm>

#include "common/coding.h"

namespace lidi::databus {

DatabusClient::DatabusClient(std::string name, net::Address relay,
                             net::Address bootstrap, net::Transport* network,
                             Consumer* consumer, ClientOptions options)
    : name_(std::move(name)),
      relay_(std::move(relay)),
      bootstrap_(std::move(bootstrap)),
      network_(network),
      consumer_(consumer),
      options_(std::move(options)) {}

Result<int64_t> DatabusClient::DeliverBatch(const std::vector<Event>& events) {
  int64_t delivered = 0;
  for (const Event& event : events) {
    // Declarative transformation: reshape or drop before the consumer.
    const Event* to_deliver = &event;
    Event transformed;
    if (!options_.transformation.empty()) {
      auto result = options_.transformation.Apply(event);
      if (!result.ok()) return result.status();
      if (!result.value().has_value()) {
        // Filtered out; still advances the checkpoint.
        checkpoint_scn_ = std::max(checkpoint_scn_, event.scn);
        has_state_ = true;
        continue;
      }
      transformed = std::move(*result.value());
      to_deliver = &transformed;
    }
    Status s;
    for (int attempt = 0; attempt <= options_.max_event_retries; ++attempt) {
      s = consumer_->OnEvent(*to_deliver);
      if (s.ok()) break;
    }
    if (!s.ok()) {
      // The consumer kept failing; skip the event so the stream continues
      // (the alternative — halting — would wedge the pipeline).
      ++events_skipped_;
    } else {
      ++delivered;
      ++events_delivered_;
    }
    checkpoint_scn_ = std::max(checkpoint_scn_, event.scn);
    has_state_ = true;
  }
  if (!events.empty()) consumer_->OnCheckpoint(checkpoint_scn_);
  return delivered;
}

Result<int64_t> DatabusClient::BootstrapAndResume() {
  ++bootstrap_switchovers_;
  if (!has_state_ && checkpoint_scn_ == 0) {
    // No state at all: consistent snapshot at U, then resume from U.
    consumer_->OnBootstrap(/*snapshot_phase=*/true);
    std::string request;
    options_.filter.EncodeTo(&request);
    auto r = network_->Call(name_, bootstrap_, "bootstrap.snapshot", request);
    if (!r.ok()) return r.status();
    Slice input(r.value());
    uint64_t snapshot_scn;
    if (!GetVarint64(&input, &snapshot_scn)) {
      return Status::Corruption("bad snapshot response");
    }
    auto rows = DecodeEventList(input);
    if (!rows.ok()) return rows.status();
    auto delivered = DeliverBatch(rows.value());
    if (!delivered.ok()) return delivered;
    checkpoint_scn_ =
        std::max(checkpoint_scn_, static_cast<int64_t>(snapshot_scn));
    has_state_ = true;
    return delivered;
  }
  // Fallen behind the relay: consolidated delta since the checkpoint
  // ("fast playback" — only the last update per key).
  consumer_->OnBootstrap(/*snapshot_phase=*/false);
  std::string request;
  EncodeReadRequest(checkpoint_scn_, options_.max_batch_events,
                    options_.filter, &request);
  auto r = network_->Call(name_, bootstrap_, "bootstrap.delta", request);
  if (!r.ok()) return r.status();
  auto events = DecodeEventList(r.value());
  if (!events.ok()) return events.status();
  return DeliverBatch(events.value());
}

Result<int64_t> DatabusClient::PollOnce() {
  std::string request;
  EncodeReadRequest(checkpoint_scn_, options_.max_batch_events,
                    options_.filter, &request);
  auto r = network_->Call(name_, relay_, "databus.read", request);
  if (r.ok()) {
    auto events = DecodeEventList(r.value());
    if (!events.ok()) return events.status();
    if (events.value().empty() && !has_state_ && !bootstrap_.empty() &&
        checkpoint_scn_ == 0) {
      // Fresh consumer with an empty relay response: may still need the
      // snapshot (the relay buffer may start past history).
      return BootstrapAndResume();
    }
    return DeliverBatch(events.value());
  }
  if (r.status().IsNotFound() && !bootstrap_.empty()) {
    // The relay evicted our range: long look-back via the bootstrap server,
    // then subsequent polls resume from the relay.
    return BootstrapAndResume();
  }
  return r.status();
}

Result<int64_t> DatabusClient::DrainToHead() {
  int64_t total = 0;
  for (;;) {
    auto r = PollOnce();
    if (!r.ok()) return r;
    if (r.value() == 0) return total;
    total += r.value();
  }
}

}  // namespace lidi::databus
