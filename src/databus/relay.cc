#include "databus/relay.h"

#include <algorithm>

#include "common/coding.h"

namespace lidi::databus {

namespace {

std::vector<Event> TransactionToEvents(
    const sqlstore::CommittedTransaction& txn) {
  std::vector<Event> events;
  events.reserve(txn.changes.size());
  for (size_t i = 0; i < txn.changes.size(); ++i) {
    const sqlstore::Change& change = txn.changes[i];
    Event event;
    event.scn = txn.scn;
    event.source = change.table;
    event.key = change.primary_key;
    event.op = change.op == sqlstore::Change::Op::kDelete ? Event::Op::kDelete
                                                          : Event::Op::kUpsert;
    event.partition = change.partition;
    event.end_of_txn = i + 1 == txn.changes.size();
    if (change.op != sqlstore::Change::Op::kDelete) {
      sqlstore::EncodeRow(change.row, &event.payload);
    }
    events.push_back(std::move(event));
  }
  return events;
}

}  // namespace

void EncodeReadRequest(int64_t since_scn, int64_t max_events,
                       const Filter& filter, std::string* out) {
  PutVarint64(out, static_cast<uint64_t>(since_scn));
  PutVarint64(out, static_cast<uint64_t>(max_events));
  filter.EncodeTo(out);
}

Status DecodeReadRequest(Slice input, int64_t* since_scn, int64_t* max_events,
                         Filter* filter) {
  uint64_t scn, max;
  if (!GetVarint64(&input, &scn) || !GetVarint64(&input, &max)) {
    return Status::Corruption("truncated read request");
  }
  auto f = Filter::DecodeFrom(&input);
  if (!f.ok()) return f.status();
  *since_scn = static_cast<int64_t>(scn);
  *max_events = static_cast<int64_t>(max);
  *filter = std::move(f.value());
  return Status::OK();
}

Relay::Relay(std::string relay_name, const sqlstore::Database* source,
             net::Transport* network, RelayOptions options)
    : Relay(std::move(relay_name), source, net::Address(), network, options) {}

Relay::Relay(std::string relay_name, net::Address upstream_relay,
             net::Transport* network, RelayOptions options)
    : Relay(std::move(relay_name), nullptr, std::move(upstream_relay), network,
            options) {}

Relay::Relay(std::string relay_name, const sqlstore::Database* source,
             net::Address upstream, net::Transport* network,
             RelayOptions options)
    : name_(std::move(relay_name)),
      source_(source),
      upstream_(std::move(upstream)),
      network_(network),
      options_(options),
      metrics_(network->metrics()),
      events_ingested_(metrics_->GetCounter("databus.relay.events_ingested",
                                            {{"relay", name_}})),
      events_served_(metrics_->GetCounter("databus.relay.events_served",
                                          {{"relay", name_}})) {
  network_->Register(name_, "databus.read", [this](Slice req) {
    int64_t since_scn, max_events;
    Filter filter;
    Status s = DecodeReadRequest(req, &since_scn, &max_events, &filter);
    if (!s.ok()) return Result<std::string>(s);
    auto events = ReadEvents(since_scn, max_events, filter);
    if (!events.ok()) return Result<std::string>(events.status());
    std::string out;
    EncodeEventList(events.value(), &out);
    return Result<std::string>(std::move(out));
  });
}

Relay::~Relay() { network_->Unregister(name_); }

Result<int64_t> Relay::PollOnce() {
  obs::ScopedSpan span(metrics_, "databus.relay.poll");
  int64_t since;
  int64_t poll_batch;
  {
    MutexLock lock(&mu_);
    since = last_pulled_scn_;
    poll_batch = options_.poll_batch_transactions;
  }

  std::vector<Event> incoming;
  if (source_ != nullptr) {
    const auto txns = source_->binlog().ReadAfter(since, poll_batch);
    for (const auto& txn : txns) {
      auto events = TransactionToEvents(txn);
      incoming.insert(incoming.end(), events.begin(), events.end());
    }
  } else if (!upstream_.empty()) {
    span.set_peer(upstream_);
    std::string request;
    EncodeReadRequest(since, poll_batch * 4, Filter{}, &request);
    auto r = network_->Call(name_, upstream_, "databus.read", request,
                            net::CallOptions{&span.context()});
    if (!r.ok()) {
      span.set_outcome(r.status());
      return r.status();
    }
    auto events = DecodeEventList(r.value());
    if (!events.ok()) {
      span.set_outcome(events.status());
      return events.status();
    }
    incoming = std::move(events.value());
  }
  if (incoming.empty()) return int64_t{0};

  MutexLock lock(&mu_);
  const int64_t count = static_cast<int64_t>(incoming.size());
  AppendEventsLocked(std::move(incoming));
  events_ingested_->Add(count);
  return count;
}

void Relay::PushTransaction(const sqlstore::CommittedTransaction& txn) {
  auto events = TransactionToEvents(txn);
  MutexLock lock(&mu_);
  AppendEventsLocked(std::move(events));
}

void Relay::AppendEventsLocked(std::vector<Event> events) {
  for (Event& event : events) {
    last_pulled_scn_ = std::max(last_pulled_scn_, event.scn);
    buffer_.push_back(std::move(event));
  }
  // Circular buffer semantics: evict the oldest events beyond capacity.
  while (static_cast<int64_t>(buffer_.size()) >
         options_.buffer_capacity_events) {
    buffer_.pop_front();
  }
}

Result<std::vector<Event>> Relay::ReadEvents(int64_t since_scn,
                                             int64_t max_events,
                                             const Filter& filter) const {
  MutexLock lock(&mu_);
  if (!buffer_.empty() && since_scn + 1 < buffer_.front().scn) {
    // The requested range was evicted from the circular buffer; the client
    // must fall back to a bootstrap server (long look-back query).
    return Status::NotFound("scn " + std::to_string(since_scn) +
                            " evicted from relay buffer (min buffered scn " +
                            std::to_string(buffer_.front().scn) + ")");
  }
  std::vector<Event> out;
  // Binary search to the first event with scn > since_scn: the buffer is in
  // scn order (this is the relay's "index structure to efficiently serve
  // events from a given sequence number").
  auto it = std::lower_bound(
      buffer_.begin(), buffer_.end(), since_scn + 1,
      [](const Event& e, int64_t scn) { return e.scn < scn; });
  for (; it != buffer_.end() &&
         static_cast<int64_t>(out.size()) < max_events;
       ++it) {
    if (filter.Matches(*it)) out.push_back(*it);
  }
  events_served_->Add(static_cast<int64_t>(out.size()));
  return out;
}

void Relay::SetBufferCapacity(int64_t capacity_events) {
  MutexLock lock(&mu_);
  options_.buffer_capacity_events = capacity_events;
  options_.poll_batch_transactions =
      std::max<int64_t>(1, capacity_events / 2);
  while (static_cast<int64_t>(buffer_.size()) >
         options_.buffer_capacity_events) {
    buffer_.pop_front();
  }
}

int64_t Relay::min_buffered_scn() const {
  MutexLock lock(&mu_);
  return buffer_.empty() ? 0 : buffer_.front().scn;
}

int64_t Relay::max_buffered_scn() const {
  MutexLock lock(&mu_);
  return buffer_.empty() ? 0 : buffer_.back().scn;
}

int64_t Relay::buffered_events() const {
  MutexLock lock(&mu_);
  return static_cast<int64_t>(buffer_.size());
}

}  // namespace lidi::databus
