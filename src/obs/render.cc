#include "obs/render.h"

#include <cstdio>

namespace lidi::obs {

namespace {

std::string FormatDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

}  // namespace

std::string RenderText(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const InstrumentSnapshot& is : snapshot.instruments) {
    out += is.full_name();
    switch (is.kind) {
      case InstrumentKind::kCounter:
        out += " = " + std::to_string(is.value) + " (counter)\n";
        break;
      case InstrumentKind::kGauge:
        out += " = " + std::to_string(is.value) + " (gauge)\n";
        break;
      case InstrumentKind::kHistogram: {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      " n=%lld avg=%.1fus p50=%.0fus p95=%.0fus p99=%.0fus "
                      "max=%lldus\n",
                      static_cast<long long>(is.hist.count),
                      is.hist.Average(), is.hist.Percentile(50),
                      is.hist.Percentile(95), is.hist.Percentile(99),
                      static_cast<long long>(is.hist.max));
        out += buf;
        break;
      }
    }
  }
  if (!snapshot.spans.empty()) {
    out += "--- spans (" + std::to_string(snapshot.spans.size()) +
           " most recent) ---\n";
    for (const SpanRecord& span : snapshot.spans) {
      out += span.ToString();
      out += '\n';
    }
  }
  return out;
}

std::string RenderJson(const RegistrySnapshot& snapshot,
                       const std::string& experiment) {
  std::string out;
  for (const InstrumentSnapshot& is : snapshot.instruments) {
    out += "{\"experiment\": \"";
    AppendJsonEscaped(&out, experiment);
    out += "\", \"instrument\": \"";
    AppendJsonEscaped(&out, is.name);
    out += '"';
    for (const auto& [key, value] : is.labels) {
      out += ", \"";
      AppendJsonEscaped(&out, key);
      out += "\": \"";
      AppendJsonEscaped(&out, value);
      out += '"';
    }
    if (is.kind == InstrumentKind::kHistogram) {
      out += ", \"count\": " + std::to_string(is.hist.count);
      out += ", \"avg_us\": " + FormatDouble(is.hist.Average());
      out += ", \"p50_us\": " + FormatDouble(is.hist.Percentile(50));
      out += ", \"p95_us\": " + FormatDouble(is.hist.Percentile(95));
      out += ", \"p99_us\": " + FormatDouble(is.hist.Percentile(99));
      out += ", \"max_us\": " + std::to_string(is.hist.max);
    } else {
      out += ", \"value\": " + std::to_string(is.value);
    }
    out += "}\n";
  }
  return out;
}

std::string RegistrySnapshot::ToText() const { return RenderText(*this); }

std::string RegistrySnapshot::ToJson(const std::string& experiment) const {
  return RenderJson(*this, experiment);
}

}  // namespace lidi::obs
