#include "obs/trace.h"

#include <atomic>
#include <cstdio>

namespace lidi::obs {

namespace {

/// SplitMix64 finalizer: spreads sequential ids across the 64-bit space so
/// trace ids from different sources are unlikely to collide visually.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::atomic<uint64_t> g_trace_counter{1};
std::atomic<uint64_t> g_span_counter{1};

}  // namespace

uint64_t NextTraceId() {
  return Mix(g_trace_counter.fetch_add(1, std::memory_order_relaxed));
}

uint64_t NextSpanId() {
  // Sequential (not mixed): span ids only need process uniqueness, and the
  // ordering makes rendered traces readable.
  return g_span_counter.fetch_add(1, std::memory_order_relaxed);
}

std::string SpanRecord::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "trace=%llx span=%llu<-%llu %s%s%s %lldus %s %lldB/%lldB",
                static_cast<unsigned long long>(trace_id),
                static_cast<unsigned long long>(span_id),
                static_cast<unsigned long long>(parent_span_id), name.c_str(),
                peer.empty() ? "" : " peer=", peer.c_str(),
                static_cast<long long>(duration_micros), CodeName(outcome),
                static_cast<long long>(bytes_sent),
                static_cast<long long>(bytes_received));
  return buf;
}

}  // namespace lidi::obs
