#include "obs/metrics.h"

#include <algorithm>

namespace lidi::obs {

std::string FullName(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string out = name;
  out += '{';
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += labels[i].first;
    out += '=';
    out += labels[i].second;
  }
  out += '}';
  return out;
}

// --- Counter ---

size_t Counter::ShardIndex() {
  // Threads get stable, distinct shard slots round-robin; with more threads
  // than shards the hot path degrades to shared-but-still-atomic adds.
  static std::atomic<size_t> next{0};
  static thread_local size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

int64_t Counter::Value() const {
  int64_t sum = 0;
  for (const Shard& shard : shards_) {
    sum += shard.v.load(std::memory_order_relaxed);
  }
  return sum;
}

void Counter::Reset() {
  for (Shard& shard : shards_) shard.v.store(0, std::memory_order_relaxed);
}

// --- HistogramBuckets ---

namespace {

/// 1-2-5 ladder: 1, 2, 5, 10, 20, 50, ..., 1e9 microseconds (~17 minutes),
/// then overflow. 30 bounded buckets.
constexpr std::array<int64_t, HistogramBuckets::kCount - 1> kUpperBounds = [] {
  std::array<int64_t, HistogramBuckets::kCount - 1> bounds{};
  int64_t decade = 1;
  for (int i = 0; i + 3 <= HistogramBuckets::kCount - 1; i += 3) {
    bounds[i] = decade;
    bounds[i + 1] = 2 * decade;
    bounds[i + 2] = 5 * decade;
    decade *= 10;
  }
  return bounds;
}();

}  // namespace

int64_t HistogramBuckets::UpperBound(int i) {
  if (i < 0) return 0;
  if (i >= kCount - 1) return INT64_MAX;
  return kUpperBounds[i];
}

int HistogramBuckets::BucketFor(int64_t micros) {
  auto it = std::lower_bound(kUpperBounds.begin(), kUpperBounds.end(), micros);
  return static_cast<int>(it - kUpperBounds.begin());
}

// --- LatencyHistogram ---

void LatencyHistogram::Record(int64_t micros) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  if (micros < 0) micros = 0;
  buckets_[HistogramBuckets::BucketFor(micros)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(micros, std::memory_order_relaxed);
  int64_t seen = max_.load(std::memory_order_relaxed);
  while (micros > seen &&
         !max_.compare_exchange_weak(seen, micros,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSnapshot LatencyHistogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  snap.max = max_.load(std::memory_order_relaxed);
  for (int i = 0; i < HistogramBuckets::kCount; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // The bucket totals may disagree slightly with count under concurrent
  // recording; rank against the bucket sum for internal consistency.
  int64_t total = 0;
  for (int64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(total);
  int64_t cumulative = 0;
  for (int i = 0; i < HistogramBuckets::kCount; ++i) {
    if (buckets[i] == 0) continue;
    const int64_t before = cumulative;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) < rank) continue;
    // Interpolate inside bucket i. Bucket 0 has no predecessor — its lower
    // edge is defined as 0 (latencies are clamped non-negative on record),
    // not UpperBound(-1), which is out of the bucket-index domain. The
    // overflow bucket has no upper bound; use the exact max. Clamp every
    // estimate to max so p100 is honest.
    const double lo =
        i == 0 ? 0.0
               : static_cast<double>(HistogramBuckets::UpperBound(i - 1));
    const double hi =
        i == HistogramBuckets::kCount - 1
            ? static_cast<double>(max)
            : static_cast<double>(HistogramBuckets::UpperBound(i));
    const double fraction =
        (rank - static_cast<double>(before)) / static_cast<double>(buckets[i]);
    const double estimate = lo + fraction * (hi - lo);
    return std::min(estimate, static_cast<double>(max));
  }
  return static_cast<double>(max);
}

// --- MetricsRegistry ---

MetricsRegistry::Entry* MetricsRegistry::GetEntry(InstrumentKind kind,
                                                  const std::string& name,
                                                  Labels labels) {
  std::sort(labels.begin(), labels.end());
  MutexLock lock(&mu_);
  auto [it, inserted] =
      instruments_.try_emplace({name, std::move(labels)});
  Entry& entry = it->second;
  if (inserted) {
    entry.kind = kind;
    switch (kind) {
      case InstrumentKind::kCounter:
        entry.counter.reset(new Counter(&enabled_));
        break;
      case InstrumentKind::kGauge:
        entry.gauge.reset(new Gauge(&enabled_));
        break;
      case InstrumentKind::kHistogram:
        entry.histogram.reset(new LatencyHistogram(&enabled_));
        break;
    }
  }
  return entry.kind == kind ? &entry : nullptr;
}

Counter* MetricsRegistry::GetCounter(const std::string& name, Labels labels) {
  Entry* entry = GetEntry(InstrumentKind::kCounter, name, std::move(labels));
  return entry == nullptr ? nullptr : entry->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name, Labels labels) {
  Entry* entry = GetEntry(InstrumentKind::kGauge, name, std::move(labels));
  return entry == nullptr ? nullptr : entry->gauge.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name,
                                                Labels labels) {
  Entry* entry = GetEntry(InstrumentKind::kHistogram, name, std::move(labels));
  return entry == nullptr ? nullptr : entry->histogram.get();
}

void MetricsRegistry::RecordSpan(SpanRecord span) {
  if (!enabled()) return;
  MutexLock lock(&span_mu_);
  spans_.push_back(std::move(span));
  while (spans_.size() > span_capacity_) spans_.pop_front();
}

void MetricsRegistry::set_span_capacity(size_t capacity) {
  MutexLock lock(&span_mu_);
  span_capacity_ = capacity;
  while (spans_.size() > span_capacity_) spans_.pop_front();
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snap;
  {
    MutexLock lock(&mu_);
    snap.instruments.reserve(instruments_.size());
    for (const auto& [key, entry] : instruments_) {
      InstrumentSnapshot is;
      is.name = key.first;
      is.labels = key.second;
      is.kind = entry.kind;
      switch (entry.kind) {
        case InstrumentKind::kCounter:
          is.value = entry.counter->Value();
          break;
        case InstrumentKind::kGauge:
          is.value = entry.gauge->Value();
          break;
        case InstrumentKind::kHistogram:
          is.hist = entry.histogram->Snapshot();
          is.value = is.hist.count;
          break;
      }
      snap.instruments.push_back(std::move(is));
    }
  }
  // The map iterates in (name, labels) order already — the snapshot is
  // stable by construction; keep the explicit sort as the documented
  // contract rather than an accident of the container.
  std::sort(snap.instruments.begin(), snap.instruments.end(),
            [](const InstrumentSnapshot& a, const InstrumentSnapshot& b) {
              return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
            });
  {
    MutexLock lock(&span_mu_);
    snap.spans.assign(spans_.begin(), spans_.end());
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  {
    MutexLock lock(&mu_);
    for (auto& [key, entry] : instruments_) {
      switch (entry.kind) {
        case InstrumentKind::kCounter:
          entry.counter->Reset();
          break;
        case InstrumentKind::kGauge:
          entry.gauge->Reset();
          break;
        case InstrumentKind::kHistogram:
          entry.histogram->Reset();
          break;
      }
    }
  }
  MutexLock lock(&span_mu_);
  spans_.clear();
}

const InstrumentSnapshot* RegistrySnapshot::Find(const std::string& name,
                                                 const Labels& labels) const {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const InstrumentSnapshot& is : instruments) {
    if (is.name == name && is.labels == sorted) return &is;
  }
  return nullptr;
}

int64_t RegistrySnapshot::Value(const std::string& name,
                                const Labels& labels) const {
  const InstrumentSnapshot* is = Find(name, labels);
  return is == nullptr ? 0 : is->value;
}

// --- ScopedSpan ---

ScopedSpan::ScopedSpan(MetricsRegistry* registry, std::string name,
                       const TraceContext* parent)
    : registry_(registry) {
  if (registry_ == nullptr) return;
  record_.name = std::move(name);
  if (parent != nullptr && parent->trace_id != 0) {
    record_.trace_id = parent->trace_id;
    record_.parent_span_id = parent->span_id;
    context_.deadline_micros = parent->deadline_micros;
  } else {
    record_.trace_id = NextTraceId();
  }
  record_.span_id = NextSpanId();
  context_.trace_id = record_.trace_id;
  context_.span_id = record_.span_id;
  record_.start_micros = registry_->clock()->NowMicros();
}

ScopedSpan::~ScopedSpan() {
  if (registry_ == nullptr) return;
  record_.duration_micros =
      registry_->clock()->NowMicros() - record_.start_micros;
  registry_->RecordSpan(std::move(record_));
}

}  // namespace lidi::obs
