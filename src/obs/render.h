#ifndef LIDI_OBS_RENDER_H_
#define LIDI_OBS_RENDER_H_

#include <string>

#include "obs/metrics.h"

namespace lidi::obs {

/// Human-readable dump: one instrument per line
/// ("name{labels} = value" / histogram summary lines), followed by the
/// buffered spans. Stable across runs given the same instrument values.
std::string RenderText(const RegistrySnapshot& snapshot);

/// Machine-readable dump in the LIDI_BENCH_JSON row shape: one JSON object
/// per line, `{"experiment": <experiment>, "instrument": <name>, <labels...>,
/// <metrics...>}`. Bench harnesses append this next to their own JsonRow
/// output so the registry is the single source of truth for reported
/// numbers. Spans are not emitted (they are per-request, not aggregate).
std::string RenderJson(const RegistrySnapshot& snapshot,
                       const std::string& experiment);

}  // namespace lidi::obs

#endif  // LIDI_OBS_RENDER_H_
