#ifndef LIDI_OBS_METRICS_H_
#define LIDI_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/sync.h"
#include "common/clock.h"
#include "obs/trace.h"

namespace lidi::obs {

/// Instrument labels: sorted (key, value) pairs. Identity of an instrument
/// is (name, labels) — GetCounter("net.calls_sent", {{"endpoint", "s"}})
/// always returns the same Counter*.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// "name{k=v,k2=v2}" — the canonical rendering used by Snapshot and tests.
std::string FullName(const std::string& name, const Labels& labels);

/// A monotonically increasing sum, sharded across cache lines so concurrent
/// writers on the hot path do not contend on one atomic. Value() folds the
/// shards. Increments are relaxed atomics: a handful of nanoseconds enabled,
/// one predictable branch when the owning registry is disabled.
class Counter {
 public:
  void Add(int64_t n) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    shards_[ShardIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  int64_t Value() const;

  /// Zeroes all shards. Not linearizable against concurrent Add (a racing
  /// increment may survive or vanish); reset while writers are quiescent.
  void Reset();

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  static constexpr int kShards = 8;
  struct alignas(64) Shard {
    std::atomic<int64_t> v{0};
  };
  static size_t ShardIndex();

  std::array<Shard, kShards> shards_;
  const std::atomic<bool>* const enabled_;
};

/// A value that goes up and down (buffer occupancy, live keys, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}

  std::atomic<int64_t> value_{0};
  const std::atomic<bool>* const enabled_;
};

/// Immutable bucket boundaries shared by every LatencyHistogram: a 1-2-5
/// geometric ladder in microseconds (1, 2, 5, 10, 20, 50, ... up to 1e9us)
/// plus an overflow bucket. Bucket i counts samples in
/// [UpperBound(i-1), UpperBound(i)).
struct HistogramBuckets {
  static constexpr int kCount = 31;  // 30 bounded buckets + overflow
  /// Inclusive upper bound of bucket i (overflow bucket returns INT64_MAX).
  /// Valid for i in [0, kCount); bucket 0's lower edge is 0 by definition —
  /// callers must not reach for UpperBound(-1) to get it.
  static int64_t UpperBound(int i);
  /// Bucket index a value of `micros` lands in.
  static int BucketFor(int64_t micros);
};

/// Aggregated view of one histogram at snapshot time. Percentiles are
/// estimated by linear interpolation inside the owning bucket — the price of
/// bounded memory; the 1-2-5 ladder keeps the error under ~30% of the value,
/// plenty for p99-shape claims. The exact max is tracked separately.
struct HistogramSnapshot {
  int64_t count = 0;
  int64_t sum = 0;
  int64_t max = 0;
  std::array<int64_t, HistogramBuckets::kCount> buckets{};

  double Average() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
  /// p in [0, 100]. Returns 0 on an empty histogram (same explicit contract
  /// as common/Histogram).
  double Percentile(double p) const;
};

/// Fixed-bucket, bounded-memory latency recorder for always-on hot paths.
/// The raw-sample common/Histogram stays bench-only: it grows an unbounded
/// vector and sorts on read, neither of which belongs on a serving path.
class LatencyHistogram {
 public:
  void Record(int64_t micros);
  HistogramSnapshot Snapshot() const;
  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  void Reset();

 private:
  friend class MetricsRegistry;
  explicit LatencyHistogram(const std::atomic<bool>* enabled)
      : enabled_(enabled) {}

  std::array<std::atomic<int64_t>, HistogramBuckets::kCount> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
  const std::atomic<bool>* const enabled_;
};

enum class InstrumentKind { kCounter, kGauge, kHistogram };

/// One instrument's state at snapshot time.
struct InstrumentSnapshot {
  std::string name;
  Labels labels;
  InstrumentKind kind = InstrumentKind::kCounter;
  int64_t value = 0;          // counter sum or gauge value
  HistogramSnapshot hist;     // kHistogram only

  std::string full_name() const { return FullName(name, labels); }
};

/// The stable struct tree Snapshot() returns: every instrument (sorted by
/// full name, so repeated snapshots of the same registry line up) plus the
/// most recent spans, oldest first. Renderers (render.h) and tests consume
/// this; no caller reads live instruments directly.
struct RegistrySnapshot {
  std::vector<InstrumentSnapshot> instruments;
  std::vector<SpanRecord> spans;

  /// Instrument lookup by identity; nullptr when absent.
  const InstrumentSnapshot* Find(const std::string& name,
                                 const Labels& labels = {}) const;
  /// Counter/gauge value by identity; 0 when absent (missing instrument and
  /// never-incremented instrument are indistinguishable, as in production
  /// metric stores).
  int64_t Value(const std::string& name, const Labels& labels = {}) const;

  /// Renderers live in obs/render.cc.
  std::string ToText() const;
  /// LIDI_BENCH_JSON-compatible: one `{"experiment": ..., "instrument": ...,
  /// <labels>, <metrics>}` object per line, so bench rows and registry dumps
  /// land in the same file with the same shape.
  std::string ToJson(const std::string& experiment) const;
};

/// The repo-wide observability registry: named, labeled instruments plus a
/// bounded ring of recent spans, exported through one Snapshot() call.
///
/// Ownership: instruments are created on first Get* and live as long as the
/// registry; callers cache the returned pointer and hit only relaxed atomics
/// on the hot path. Components default to the registry of the Network they
/// talk through (Network owns one unless handed a shared registry), so an
/// application that passes a single registry everywhere gets one unified
/// snapshot across all four subsystems.
///
/// Thread-safe: Get*/Snapshot/RecordSpan may race with instrument writers.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(const Clock* clock = nullptr)
      : clock_(clock != nullptr ? clock : SystemClock::Default()) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, Labels labels = {});
  Gauge* GetGauge(const std::string& name, Labels labels = {});
  LatencyHistogram* GetHistogram(const std::string& name, Labels labels = {});

  /// Kill switch: while disabled, Counter::Add / Gauge::Add /
  /// LatencyHistogram::Record are no-ops (one relaxed load + branch). Spans
  /// are likewise dropped. Gauge::Set still applies (it records state, not
  /// traffic).
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // --- spans ---

  /// A fresh root context for a request entering the system.
  TraceContext StartTrace(int64_t deadline_micros = 0) const {
    return TraceContext{NextTraceId(), NextSpanId(), deadline_micros};
  }

  /// Appends to the span ring (dropping the oldest past `span_capacity`).
  void RecordSpan(SpanRecord span);
  void set_span_capacity(size_t capacity);

  const Clock* clock() const { return clock_; }

  /// The one export API: a consistent-enough view of every instrument and
  /// the buffered spans. Individual reads are relaxed; cross-instrument
  /// skew is bounded by the snapshot's own duration.
  RegistrySnapshot Snapshot() const;

  /// Zeroes every instrument and clears the span ring (test/bench epochs;
  /// see Counter::Reset for the concurrency caveat).
  void ResetAll();

 private:
  struct Entry {
    InstrumentKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  Entry* GetEntry(InstrumentKind kind, const std::string& name, Labels labels)
      LIDI_EXCLUDES(mu_);

  const Clock* const clock_;
  std::atomic<bool> enabled_{true};

  // Leaf locks: nothing is ever acquired while either is held (instrument
  // values are atomics; the maps are touched only under these).
  mutable Mutex mu_{
      "obs.metrics.instruments"};  // guards map shape (not values)
  std::map<std::pair<std::string, Labels>, Entry> instruments_
      LIDI_GUARDED_BY(mu_);

  mutable Mutex span_mu_{"obs.metrics.spans"};
  std::deque<SpanRecord> spans_ LIDI_GUARDED_BY(span_mu_);
  size_t span_capacity_ LIDI_GUARDED_BY(span_mu_) = 1024;
};

/// RAII span: times a unit of work against the registry's clock and records
/// it on destruction. Null registry = no-op (observability is optional
/// everywhere). context() yields the child TraceContext to thread through
/// nested calls, inheriting the parent's trace id and deadline budget.
class ScopedSpan {
 public:
  ScopedSpan(MetricsRegistry* registry, std::string name,
             const TraceContext* parent = nullptr);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  TraceContext& context() { return context_; }
  void set_outcome(Code code) { record_.outcome = code; }
  void set_outcome(const Status& status) { record_.outcome = status.code(); }
  void set_peer(std::string peer) { record_.peer = std::move(peer); }
  void add_bytes_sent(int64_t n) { record_.bytes_sent += n; }
  void add_bytes_received(int64_t n) { record_.bytes_received += n; }

 private:
  MetricsRegistry* const registry_;
  TraceContext context_;
  SpanRecord record_;
};

}  // namespace lidi::obs

#endif  // LIDI_OBS_METRICS_H_
