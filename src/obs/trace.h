#ifndef LIDI_OBS_TRACE_H_
#define LIDI_OBS_TRACE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace lidi::obs {

/// Per-request trace state carried across RPC hops (paper-era Dapper-style
/// tracing, scaled down to the simulated transport). A caller creates a root
/// context via MetricsRegistry::StartTrace(), threads it through
/// net::CallOptions, and every hop the request takes is recorded as a
/// SpanRecord under the caller's span.
///
/// `deadline_micros` is the request's absolute deadline budget (0 = none,
/// measured against the clock the transport was built with). It propagates
/// to nested calls, so a hop that inherits an exhausted budget fails fast
/// with Timeout instead of doing useless downstream work.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  // the current (parent) span new hops attach under
  int64_t deadline_micros = 0;
};

/// One finished span: a named, timed unit of work inside a trace — an RPC
/// hop, a quorum operation, a relay poll. Duration, outcome code, and byte
/// counts make p99/throughput claims reconstructible from the span stream
/// alone.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;  // 0 = root span
  std::string name;             // e.g. "v.get", "voldemort.put", "kafka.fetch"
  std::string peer;             // destination address, if the span is an RPC
  int64_t start_micros = 0;
  int64_t duration_micros = 0;
  Code outcome = Code::kOk;
  int64_t bytes_sent = 0;
  int64_t bytes_received = 0;

  /// One-line rendering, e.g.
  /// "trace=1a span=3<-2 v.get peer=voldemort-node-0 4us OK 31B/58B".
  std::string ToString() const;
};

/// Process-unique trace-id source (registry-independent so ids stay unique
/// even when several registries coexist, e.g. one per Network in tests).
uint64_t NextTraceId();

/// Process-unique span-id source. Span id 0 is reserved for "no parent".
uint64_t NextSpanId();

}  // namespace lidi::obs

#endif  // LIDI_OBS_TRACE_H_
