#ifndef LIDI_AVRO_CODEC_H_
#define LIDI_AVRO_CODEC_H_

#include <string>

#include "avro/datum.h"
#include "avro/schema.h"
#include "common/slice.h"
#include "common/status.h"

namespace lidi::avro {

/// Serializes `datum` against `schema` into Avro binary format, appending to
/// *out. Fails with InvalidArgument if the datum does not conform.
///
/// Wire format (per the Avro spec): zig-zag varints for int/long and all
/// counts, IEEE little-endian for float/double, length-prefixed bytes for
/// string/bytes, block-encoded arrays/maps (single block + 0 terminator),
/// varint branch index before union values, varint symbol index for enums.
Status Encode(const Schema& schema, const Datum& datum, std::string* out);

/// Deserializes binary data written with `writer` schema, materializing it
/// as the same schema. Consumes bytes from *input.
Result<DatumPtr> Decode(const Schema& writer, Slice* input);

/// Schema resolution (the paper's "freely evolvable" document schemas,
/// Section IV.A): decodes data written with `writer` and shapes it per
/// `reader`. Supported rules:
///  - record fields matched by name; reader-only fields take their default;
///    writer-only fields are skipped;
///  - numeric promotions int->long->float->double;
///  - writer union resolved then matched against the reader type;
///  - reader union: first branch matching the writer type is selected.
Result<DatumPtr> DecodeResolved(const Schema& writer, const Schema& reader,
                                Slice* input);

/// Parses a JSON default value (from Field::default_json) into a Datum
/// conforming to `schema`.
Result<DatumPtr> DatumFromJson(const Schema& schema, const std::string& text);

}  // namespace lidi::avro

#endif  // LIDI_AVRO_CODEC_H_
