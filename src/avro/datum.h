#ifndef LIDI_AVRO_DATUM_H_
#define LIDI_AVRO_DATUM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "avro/schema.h"
#include "common/status.h"

namespace lidi::avro {

/// A generic in-memory Avro value (the "GenericDatum" of the Java binding).
/// Espresso documents and Databus event payloads are Datums; the codec
/// serializes them against a Schema.
class Datum;
using DatumPtr = std::shared_ptr<Datum>;

class Datum {
 public:
  Datum() : type_(Type::kNull) {}

  static DatumPtr Null();
  static DatumPtr Boolean(bool b);
  static DatumPtr Int(int32_t v);
  static DatumPtr Long(int64_t v);
  static DatumPtr Float(float v);
  static DatumPtr Double(double v);
  static DatumPtr String(std::string s);
  static DatumPtr Bytes(std::string b);
  static DatumPtr Enum(int index, std::string symbol);
  static DatumPtr Array();
  static DatumPtr Map();
  /// A record datum; fields are set by name with SetField.
  static DatumPtr Record(std::string record_name);
  /// A union datum wrapping a branch value.
  static DatumPtr Union(int branch, DatumPtr value);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  bool bool_value() const { return bool_; }
  int32_t int_value() const { return static_cast<int32_t>(long_); }
  int64_t long_value() const { return long_; }
  float float_value() const { return static_cast<float>(double_); }
  double double_value() const { return double_; }
  const std::string& string_value() const { return str_; }
  const std::string& bytes_value() const { return str_; }
  int enum_index() const { return static_cast<int>(long_); }
  const std::string& enum_symbol() const { return str_; }

  std::vector<DatumPtr>& items() { return items_; }
  const std::vector<DatumPtr>& items() const { return items_; }
  std::map<std::string, DatumPtr>& entries() { return entries_; }
  const std::map<std::string, DatumPtr>& entries() const { return entries_; }

  // Record access.
  const std::string& record_name() const { return str_; }
  void SetField(const std::string& name, DatumPtr value);
  /// nullptr when absent.
  DatumPtr GetField(const std::string& name) const;
  const std::vector<std::pair<std::string, DatumPtr>>& fields() const {
    return fields_;
  }

  // Union access.
  int union_branch() const { return static_cast<int>(long_); }
  const DatumPtr& union_value() const { return union_value_; }

  /// Structural equality (deep).
  bool Equals(const Datum& other) const;

  /// Debug rendering as JSON-ish text.
  std::string ToString() const;

 private:
  Type type_;
  bool bool_ = false;
  int64_t long_ = 0;
  double double_ = 0;
  std::string str_;
  std::vector<DatumPtr> items_;
  std::map<std::string, DatumPtr> entries_;
  std::vector<std::pair<std::string, DatumPtr>> fields_;
  DatumPtr union_value_;
};

}  // namespace lidi::avro

#endif  // LIDI_AVRO_DATUM_H_
