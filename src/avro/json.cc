#include "avro/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lidi::json {

const Value* Value::Get(const std::string& key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) return v.get();
  }
  return nullptr;
}

void Value::Set(const std::string& key, ValuePtr v) {
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(key, std::move(v));
}

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

std::string Value::Dump() const {
  switch (kind_) {
    case Kind::kNull: return "null";
    case Kind::kBool: return bool_ ? "true" : "false";
    case Kind::kNumber: {
      if (num_ == std::floor(num_) && std::abs(num_) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(num_));
        return buf;
      }
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", num_);
      return buf;
    }
    case Kind::kString: return Quote(str_);
    case Kind::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        out += items_[i]->Dump();
      }
      out += ']';
      return out;
    }
    case Kind::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : members_) {
        if (!first) out += ',';
        first = false;
        out += Quote(k);
        out += ':';
        out += v->Dump();
      }
      out += '}';
      return out;
    }
  }
  return "null";
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Result<ValuePtr> Run() {
    SkipWs();
    auto v = ParseValue();
    if (!v.ok()) return v;
    SkipWs();
    if (pos_ != s_.size()) {
      return Status::InvalidArgument("trailing characters in JSON");
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<ValuePtr> ParseValue() {
    if (pos_ >= s_.size()) return Status::InvalidArgument("unexpected end");
    const char c = s_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      auto str = ParseString();
      if (!str.ok()) return str.status();
      return std::make_shared<Value>(std::move(str.value()));
    }
    if (c == 't') return ParseLiteral("true", std::make_shared<Value>(true));
    if (c == 'f') return ParseLiteral("false", std::make_shared<Value>(false));
    if (c == 'n') return ParseLiteral("null", std::make_shared<Value>());
    return ParseNumber();
  }

  Result<ValuePtr> ParseLiteral(const char* lit, ValuePtr v) {
    const size_t len = strlen(lit);
    if (s_.compare(pos_, len, lit) != 0) {
      return Status::InvalidArgument("bad literal");
    }
    pos_ += len;
    return v;
  }

  Result<ValuePtr> ParseNumber() {
    const size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Status::InvalidArgument("bad number");
    const std::string num = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) {
      return Status::InvalidArgument("bad number: " + num);
    }
    return std::make_shared<Value>(d);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Status::InvalidArgument("expected string");
    std::string out;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        const char esc = s_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) {
              return Status::InvalidArgument("bad \\u escape");
            }
            const std::string hex = s_.substr(pos_, 4);
            pos_ += 4;
            const unsigned long cp = std::strtoul(hex.c_str(), nullptr, 16);
            // UTF-8 encode the BMP code point.
            if (cp < 0x80) {
              out += static_cast<char>(cp);
            } else if (cp < 0x800) {
              out += static_cast<char>(0xc0 | (cp >> 6));
              out += static_cast<char>(0x80 | (cp & 0x3f));
            } else {
              out += static_cast<char>(0xe0 | (cp >> 12));
              out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
              out += static_cast<char>(0x80 | (cp & 0x3f));
            }
            break;
          }
          default:
            return Status::InvalidArgument("bad escape");
        }
      } else {
        out += c;
      }
    }
    return Status::InvalidArgument("unterminated string");
  }

  Result<ValuePtr> ParseArray() {
    Consume('[');
    auto arr = Value::MakeArray();
    SkipWs();
    if (Consume(']')) return arr;
    for (;;) {
      SkipWs();
      auto v = ParseValue();
      if (!v.ok()) return v;
      arr->items().push_back(std::move(v.value()));
      SkipWs();
      if (Consume(']')) return arr;
      if (!Consume(',')) return Status::InvalidArgument("expected , or ]");
    }
  }

  Result<ValuePtr> ParseObject() {
    Consume('{');
    auto obj = Value::MakeObject();
    SkipWs();
    if (Consume('}')) return obj;
    for (;;) {
      SkipWs();
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipWs();
      if (!Consume(':')) return Status::InvalidArgument("expected :");
      SkipWs();
      auto v = ParseValue();
      if (!v.ok()) return v;
      obj->Set(key.value(), std::move(v.value()));
      SkipWs();
      if (Consume('}')) return obj;
      if (!Consume(',')) return Status::InvalidArgument("expected , or }");
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

}  // namespace

Result<ValuePtr> Parse(const std::string& text) { return Parser(text).Run(); }

}  // namespace lidi::json
