#ifndef LIDI_AVRO_SCHEMA_H_
#define LIDI_AVRO_SCHEMA_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace lidi::avro {

/// The subset of Avro types lidi needs: Databus serializes change events and
/// Espresso serializes documents in "Avro" binary format with JSON schemas
/// (paper Sections III.C and IV.A). Schemas are freely evolvable subject to
/// Avro resolution rules (reader/writer matching by field name, defaults for
/// added fields, promotions for numerics).
enum class Type {
  kNull,
  kBoolean,
  kInt,     // 32-bit, zig-zag varint on the wire
  kLong,    // 64-bit, zig-zag varint on the wire
  kFloat,
  kDouble,
  kString,
  kBytes,
  kArray,
  kMap,     // string keys
  kRecord,
  kEnum,
  kUnion,
};

class Schema;
using SchemaPtr = std::shared_ptr<const Schema>;

/// One field of a record schema.
struct Field {
  std::string name;
  SchemaPtr schema;
  /// JSON text of the default value; empty when no default is declared.
  /// Used during schema resolution when the writer lacks the field.
  std::string default_json;
  /// Espresso extension: fields annotated `"indexed": true` (optionally with
  /// `"index_type": "text"`) feed the local secondary index (Section IV.A).
  bool indexed = false;
  bool text_indexed = false;
};

/// An immutable parsed schema node.
class Schema {
 public:
  explicit Schema(Type type) : type_(type) {}

  Type type() const { return type_; }
  const std::string& name() const { return name_; }  // records and enums

  const std::vector<Field>& fields() const { return fields_; }     // records
  const Field* FindField(const std::string& name) const;
  int FieldIndex(const std::string& name) const;                   // -1 if none

  const std::vector<std::string>& symbols() const { return symbols_; }  // enums
  int SymbolIndex(const std::string& sym) const;

  const SchemaPtr& item_schema() const { return item_; }   // arrays
  const SchemaPtr& value_schema() const { return value_; } // maps
  const std::vector<SchemaPtr>& branches() const { return branches_; }  // unions

  /// Canonical one-line JSON rendering (stable across parses).
  std::string ToJson() const;

  // --- construction helpers (used by the parser and by tests) ---
  static SchemaPtr Primitive(Type t);
  static SchemaPtr Array(SchemaPtr items);
  static SchemaPtr Map(SchemaPtr values);
  static SchemaPtr Union(std::vector<SchemaPtr> branches);
  static SchemaPtr Enum(std::string name, std::vector<std::string> symbols);
  static SchemaPtr Record(std::string name, std::vector<Field> fields);

 private:
  Type type_;
  std::string name_;
  std::vector<Field> fields_;
  std::vector<std::string> symbols_;
  SchemaPtr item_;
  SchemaPtr value_;
  std::vector<SchemaPtr> branches_;
};

/// Parses a schema from Avro-style JSON, e.g.
///   {"type":"record","name":"Song","fields":[
///      {"name":"title","type":"string","indexed":true},
///      {"name":"lyrics","type":"string","indexed":true,"index_type":"text"},
///      {"name":"year","type":"int","default":0}]}
/// Primitive schemas may be bare strings: "string", "long", ...
Result<SchemaPtr> ParseSchema(const std::string& json);

}  // namespace lidi::avro

#endif  // LIDI_AVRO_SCHEMA_H_
