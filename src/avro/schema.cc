#include "avro/schema.h"

#include "avro/json.h"

namespace lidi::avro {

const Field* Schema::FindField(const std::string& name) const {
  for (const auto& f : fields_) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

int Schema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

int Schema::SymbolIndex(const std::string& sym) const {
  for (size_t i = 0; i < symbols_.size(); ++i) {
    if (symbols_[i] == sym) return static_cast<int>(i);
  }
  return -1;
}

SchemaPtr Schema::Primitive(Type t) { return std::make_shared<Schema>(t); }

SchemaPtr Schema::Array(SchemaPtr items) {
  auto s = std::make_shared<Schema>(Type::kArray);
  s->item_ = std::move(items);
  return s;
}

SchemaPtr Schema::Map(SchemaPtr values) {
  auto s = std::make_shared<Schema>(Type::kMap);
  s->value_ = std::move(values);
  return s;
}

SchemaPtr Schema::Union(std::vector<SchemaPtr> branches) {
  auto s = std::make_shared<Schema>(Type::kUnion);
  s->branches_ = std::move(branches);
  return s;
}

SchemaPtr Schema::Enum(std::string name, std::vector<std::string> symbols) {
  auto s = std::make_shared<Schema>(Type::kEnum);
  s->name_ = std::move(name);
  s->symbols_ = std::move(symbols);
  return s;
}

SchemaPtr Schema::Record(std::string name, std::vector<Field> fields) {
  auto s = std::make_shared<Schema>(Type::kRecord);
  s->name_ = std::move(name);
  s->fields_ = std::move(fields);
  return s;
}

namespace {

const char* PrimitiveName(Type t) {
  switch (t) {
    case Type::kNull: return "null";
    case Type::kBoolean: return "boolean";
    case Type::kInt: return "int";
    case Type::kLong: return "long";
    case Type::kFloat: return "float";
    case Type::kDouble: return "double";
    case Type::kString: return "string";
    case Type::kBytes: return "bytes";
    default: return nullptr;
  }
}

Result<Type> PrimitiveFromName(const std::string& name) {
  if (name == "null") return Type::kNull;
  if (name == "boolean") return Type::kBoolean;
  if (name == "int") return Type::kInt;
  if (name == "long") return Type::kLong;
  if (name == "float") return Type::kFloat;
  if (name == "double") return Type::kDouble;
  if (name == "string") return Type::kString;
  if (name == "bytes") return Type::kBytes;
  return Status::InvalidArgument("unknown type name: " + name);
}

Result<SchemaPtr> FromJson(const json::Value& v);

Result<SchemaPtr> FromJsonObject(const json::Value& v) {
  const json::Value* type = v.Get("type");
  if (type == nullptr || !type->is_string()) {
    return Status::InvalidArgument("schema object needs a \"type\" string");
  }
  const std::string& t = type->AsString();
  if (t == "record") {
    const json::Value* name = v.Get("name");
    const json::Value* fields = v.Get("fields");
    if (name == nullptr || !name->is_string()) {
      return Status::InvalidArgument("record needs a name");
    }
    if (fields == nullptr || !fields->is_array()) {
      return Status::InvalidArgument("record needs fields[]");
    }
    std::vector<Field> out;
    for (const auto& fv : fields->items()) {
      if (!fv->is_object()) return Status::InvalidArgument("bad field");
      const json::Value* fname = fv->Get("name");
      const json::Value* ftype = fv->Get("type");
      if (fname == nullptr || !fname->is_string() || ftype == nullptr) {
        return Status::InvalidArgument("field needs name and type");
      }
      auto fs = FromJson(*ftype);
      if (!fs.ok()) return fs;
      Field f;
      f.name = fname->AsString();
      f.schema = std::move(fs.value());
      if (const json::Value* d = fv->Get("default"); d != nullptr) {
        f.default_json = d->Dump();
      }
      if (const json::Value* idx = fv->Get("indexed");
          idx != nullptr && idx->is_bool() && idx->AsBool()) {
        f.indexed = true;
        if (const json::Value* it = fv->Get("index_type");
            it != nullptr && it->is_string() && it->AsString() == "text") {
          f.text_indexed = true;
        }
      }
      out.push_back(std::move(f));
    }
    return Schema::Record(name->AsString(), std::move(out));
  }
  if (t == "enum") {
    const json::Value* name = v.Get("name");
    const json::Value* symbols = v.Get("symbols");
    if (name == nullptr || symbols == nullptr || !symbols->is_array()) {
      return Status::InvalidArgument("enum needs name and symbols");
    }
    std::vector<std::string> syms;
    for (const auto& s : symbols->items()) {
      if (!s->is_string()) return Status::InvalidArgument("bad enum symbol");
      syms.push_back(s->AsString());
    }
    return Schema::Enum(name->AsString(), std::move(syms));
  }
  if (t == "array") {
    const json::Value* items = v.Get("items");
    if (items == nullptr) return Status::InvalidArgument("array needs items");
    auto is = FromJson(*items);
    if (!is.ok()) return is;
    return Schema::Array(std::move(is.value()));
  }
  if (t == "map") {
    const json::Value* values = v.Get("values");
    if (values == nullptr) return Status::InvalidArgument("map needs values");
    auto vs = FromJson(*values);
    if (!vs.ok()) return vs;
    return Schema::Map(std::move(vs.value()));
  }
  // {"type": "string"} style primitive wrapper.
  auto prim = PrimitiveFromName(t);
  if (!prim.ok()) return prim.status();
  return Schema::Primitive(prim.value());
}

Result<SchemaPtr> FromJson(const json::Value& v) {
  if (v.is_string()) {
    auto prim = PrimitiveFromName(v.AsString());
    if (!prim.ok()) return prim.status();
    return Schema::Primitive(prim.value());
  }
  if (v.is_array()) {  // union
    std::vector<SchemaPtr> branches;
    for (const auto& b : v.items()) {
      auto bs = FromJson(*b);
      if (!bs.ok()) return bs;
      branches.push_back(std::move(bs.value()));
    }
    if (branches.empty()) return Status::InvalidArgument("empty union");
    return Schema::Union(std::move(branches));
  }
  if (v.is_object()) return FromJsonObject(v);
  return Status::InvalidArgument("schema must be string, array or object");
}

}  // namespace

Result<SchemaPtr> ParseSchema(const std::string& text) {
  auto doc = json::Parse(text);
  if (!doc.ok()) return doc.status();
  return FromJson(*doc.value());
}

std::string Schema::ToJson() const {
  if (const char* prim = PrimitiveName(type_); prim != nullptr) {
    return std::string("\"") + prim + "\"";
  }
  switch (type_) {
    case Type::kArray:
      return "{\"type\":\"array\",\"items\":" + item_->ToJson() + "}";
    case Type::kMap:
      return "{\"type\":\"map\",\"values\":" + value_->ToJson() + "}";
    case Type::kUnion: {
      std::string out = "[";
      for (size_t i = 0; i < branches_.size(); ++i) {
        if (i) out += ',';
        out += branches_[i]->ToJson();
      }
      return out + "]";
    }
    case Type::kEnum: {
      std::string out =
          "{\"type\":\"enum\",\"name\":" + json::Quote(name_) + ",\"symbols\":[";
      for (size_t i = 0; i < symbols_.size(); ++i) {
        if (i) out += ',';
        out += json::Quote(symbols_[i]);
      }
      return out + "]}";
    }
    case Type::kRecord: {
      std::string out =
          "{\"type\":\"record\",\"name\":" + json::Quote(name_) + ",\"fields\":[";
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i) out += ',';
        const Field& f = fields_[i];
        out += "{\"name\":" + json::Quote(f.name) + ",\"type\":" +
               f.schema->ToJson();
        if (!f.default_json.empty()) out += ",\"default\":" + f.default_json;
        if (f.indexed) out += ",\"indexed\":true";
        if (f.text_indexed) out += ",\"index_type\":\"text\"";
        out += '}';
      }
      return out + "]}";
    }
    default:
      return "\"null\"";
  }
}

}  // namespace lidi::avro
