#include "avro/codec.h"

#include <cstring>

#include "avro/json.h"
#include "common/coding.h"

namespace lidi::avro {

namespace {

void PutFloat(std::string* out, float f) {
  uint32_t bits;
  memcpy(&bits, &f, sizeof(bits));
  PutFixed32(out, bits);
}

void PutDouble(std::string* out, double d) {
  uint64_t bits;
  memcpy(&bits, &d, sizeof(bits));
  PutFixed64(out, bits);
}

bool GetFloat(Slice* in, float* f) {
  uint32_t bits;
  if (!GetFixed32(in, &bits)) return false;
  memcpy(f, &bits, sizeof(*f));
  return true;
}

bool GetDouble(Slice* in, double* d) {
  uint64_t bits;
  if (!GetFixed64(in, &bits)) return false;
  memcpy(d, &bits, sizeof(*d));
  return true;
}

bool IsNumeric(Type t) {
  return t == Type::kInt || t == Type::kLong || t == Type::kFloat ||
         t == Type::kDouble;
}

/// Whether data written as `writer` may be read as `reader` under Avro
/// promotion rules (without inspecting values).
bool TypesMatch(const Schema& writer, const Schema& reader) {
  if (writer.type() == reader.type()) return true;
  if (!IsNumeric(writer.type()) || !IsNumeric(reader.type())) return false;
  // Promotions only widen: int -> long -> float -> double.
  auto rank = [](Type t) {
    switch (t) {
      case Type::kInt: return 0;
      case Type::kLong: return 1;
      case Type::kFloat: return 2;
      default: return 3;
    }
  };
  return rank(writer.type()) <= rank(reader.type());
}

DatumPtr PromoteNumeric(const DatumPtr& d, Type target) {
  switch (target) {
    case Type::kInt: return d;
    case Type::kLong:
      return d->type() == Type::kLong ? d : Datum::Long(d->long_value());
    case Type::kFloat: {
      if (d->type() == Type::kFloat) return d;
      if (d->type() == Type::kDouble) return d;
      return Datum::Float(static_cast<float>(d->long_value()));
    }
    case Type::kDouble: {
      if (d->type() == Type::kDouble) return Datum::Double(d->double_value());
      if (d->type() == Type::kFloat) return Datum::Double(d->double_value());
      return Datum::Double(static_cast<double>(d->long_value()));
    }
    default: return d;
  }
}

/// Skips a value of the given schema in the input without materializing it.
bool SkipValue(const Schema& schema, Slice* in) {
  switch (schema.type()) {
    case Type::kNull: return true;
    case Type::kBoolean: {
      if (in->empty()) return false;
      in->RemovePrefix(1);
      return true;
    }
    case Type::kInt:
    case Type::kLong: {
      int64_t v;
      return GetZigZag64(in, &v);
    }
    case Type::kFloat: {
      float f;
      return GetFloat(in, &f);
    }
    case Type::kDouble: {
      double d;
      return GetDouble(in, &d);
    }
    case Type::kString:
    case Type::kBytes: {
      Slice s;
      return GetLengthPrefixed(in, &s);
    }
    case Type::kEnum: {
      int64_t v;
      return GetZigZag64(in, &v);
    }
    case Type::kArray: {
      for (;;) {
        int64_t count;
        if (!GetZigZag64(in, &count)) return false;
        if (count == 0) return true;
        if (count < 0) count = -count;  // block with byte size; we re-read
        for (int64_t i = 0; i < count; ++i) {
          if (!SkipValue(*schema.item_schema(), in)) return false;
        }
      }
    }
    case Type::kMap: {
      for (;;) {
        int64_t count;
        if (!GetZigZag64(in, &count)) return false;
        if (count == 0) return true;
        if (count < 0) count = -count;
        for (int64_t i = 0; i < count; ++i) {
          Slice key;
          if (!GetLengthPrefixed(in, &key)) return false;
          if (!SkipValue(*schema.value_schema(), in)) return false;
        }
      }
    }
    case Type::kRecord: {
      for (const Field& f : schema.fields()) {
        if (!SkipValue(*f.schema, in)) return false;
      }
      return true;
    }
    case Type::kUnion: {
      int64_t branch;
      if (!GetZigZag64(in, &branch)) return false;
      if (branch < 0 ||
          branch >= static_cast<int64_t>(schema.branches().size())) {
        return false;
      }
      return SkipValue(*schema.branches()[branch], in);
    }
  }
  return false;
}

}  // namespace

Status Encode(const Schema& schema, const Datum& datum, std::string* out) {
  switch (schema.type()) {
    case Type::kNull:
      if (!datum.is_null()) return Status::InvalidArgument("expected null");
      return Status::OK();
    case Type::kBoolean:
      if (datum.type() != Type::kBoolean) {
        return Status::InvalidArgument("expected boolean");
      }
      out->push_back(datum.bool_value() ? 1 : 0);
      return Status::OK();
    case Type::kInt:
    case Type::kLong:
      if (datum.type() != Type::kInt && datum.type() != Type::kLong) {
        return Status::InvalidArgument("expected int/long");
      }
      PutZigZag64(out, datum.long_value());
      return Status::OK();
    case Type::kFloat:
      if (datum.type() != Type::kFloat && datum.type() != Type::kInt &&
          datum.type() != Type::kLong) {
        return Status::InvalidArgument("expected float");
      }
      PutFloat(out, datum.type() == Type::kFloat
                        ? datum.float_value()
                        : static_cast<float>(datum.long_value()));
      return Status::OK();
    case Type::kDouble: {
      double v;
      if (datum.type() == Type::kDouble || datum.type() == Type::kFloat) {
        v = datum.double_value();
      } else if (datum.type() == Type::kInt || datum.type() == Type::kLong) {
        v = static_cast<double>(datum.long_value());
      } else {
        return Status::InvalidArgument("expected double");
      }
      PutDouble(out, v);
      return Status::OK();
    }
    case Type::kString:
      if (datum.type() != Type::kString) {
        return Status::InvalidArgument("expected string");
      }
      PutLengthPrefixed(out, datum.string_value());
      return Status::OK();
    case Type::kBytes:
      if (datum.type() != Type::kBytes && datum.type() != Type::kString) {
        return Status::InvalidArgument("expected bytes");
      }
      PutLengthPrefixed(out, datum.bytes_value());
      return Status::OK();
    case Type::kEnum: {
      if (datum.type() != Type::kEnum) {
        return Status::InvalidArgument("expected enum");
      }
      const int idx = schema.SymbolIndex(datum.enum_symbol());
      if (idx < 0) {
        return Status::InvalidArgument("unknown enum symbol " +
                                       datum.enum_symbol());
      }
      PutZigZag64(out, idx);
      return Status::OK();
    }
    case Type::kArray: {
      if (datum.type() != Type::kArray) {
        return Status::InvalidArgument("expected array");
      }
      if (!datum.items().empty()) {
        PutZigZag64(out, static_cast<int64_t>(datum.items().size()));
        for (const auto& item : datum.items()) {
          Status s = Encode(*schema.item_schema(), *item, out);
          if (!s.ok()) return s;
        }
      }
      PutZigZag64(out, 0);
      return Status::OK();
    }
    case Type::kMap: {
      if (datum.type() != Type::kMap) {
        return Status::InvalidArgument("expected map");
      }
      if (!datum.entries().empty()) {
        PutZigZag64(out, static_cast<int64_t>(datum.entries().size()));
        for (const auto& [k, v] : datum.entries()) {
          PutLengthPrefixed(out, k);
          Status s = Encode(*schema.value_schema(), *v, out);
          if (!s.ok()) return s;
        }
      }
      PutZigZag64(out, 0);
      return Status::OK();
    }
    case Type::kRecord: {
      if (datum.type() != Type::kRecord) {
        return Status::InvalidArgument("expected record " + schema.name());
      }
      for (const Field& f : schema.fields()) {
        DatumPtr fv = datum.GetField(f.name);
        if (fv == nullptr) {
          if (!f.default_json.empty()) {
            auto dv = DatumFromJson(*f.schema, f.default_json);
            if (!dv.ok()) return dv.status();
            fv = dv.value();
          } else {
            return Status::InvalidArgument("record missing field " + f.name);
          }
        }
        Status s = Encode(*f.schema, *fv, out);
        if (!s.ok()) return s;
      }
      return Status::OK();
    }
    case Type::kUnion: {
      int branch;
      const Datum* inner;
      if (datum.type() == Type::kUnion) {
        branch = datum.union_branch();
        inner = datum.union_value().get();
      } else {
        // Auto-select the first branch the datum conforms to.
        branch = -1;
        inner = &datum;
        for (size_t i = 0; i < schema.branches().size(); ++i) {
          std::string probe;
          if (Encode(*schema.branches()[i], datum, &probe).ok()) {
            branch = static_cast<int>(i);
            break;
          }
        }
        if (branch < 0) {
          return Status::InvalidArgument("no union branch matches datum");
        }
      }
      if (branch < 0 || branch >= static_cast<int>(schema.branches().size())) {
        return Status::InvalidArgument("union branch out of range");
      }
      PutZigZag64(out, branch);
      return Encode(*schema.branches()[branch], *inner, out);
    }
  }
  return Status::Internal("unhandled schema type");
}

Result<DatumPtr> Decode(const Schema& writer, Slice* input) {
  return DecodeResolved(writer, writer, input);
}

Result<DatumPtr> DecodeResolved(const Schema& writer, const Schema& reader,
                                Slice* input) {
  // Writer union: read the branch, then resolve the branch against reader.
  if (writer.type() == Type::kUnion) {
    int64_t branch;
    if (!GetZigZag64(input, &branch)) {
      return Status::Corruption("truncated union branch");
    }
    if (branch < 0 ||
        branch >= static_cast<int64_t>(writer.branches().size())) {
      return Status::Corruption("union branch out of range");
    }
    const Schema& wb = *writer.branches()[branch];
    if (reader.type() == Type::kUnion) {
      // Pick the first reader branch compatible with the writer branch.
      for (size_t i = 0; i < reader.branches().size(); ++i) {
        if (TypesMatch(wb, *reader.branches()[i])) {
          auto inner = DecodeResolved(wb, *reader.branches()[i], input);
          if (!inner.ok()) return inner;
          return Datum::Union(static_cast<int>(i), std::move(inner.value()));
        }
      }
      return Status::InvalidArgument("no reader union branch matches writer");
    }
    return DecodeResolved(wb, reader, input);
  }
  // Reader union over non-union writer.
  if (reader.type() == Type::kUnion) {
    for (size_t i = 0; i < reader.branches().size(); ++i) {
      if (TypesMatch(writer, *reader.branches()[i])) {
        auto inner = DecodeResolved(writer, *reader.branches()[i], input);
        if (!inner.ok()) return inner;
        return Datum::Union(static_cast<int>(i), std::move(inner.value()));
      }
    }
    return Status::InvalidArgument("no reader union branch matches writer");
  }

  if (!TypesMatch(writer, reader)) {
    return Status::InvalidArgument("incompatible reader/writer schemas");
  }

  switch (writer.type()) {
    case Type::kNull: return Datum::Null();
    case Type::kBoolean: {
      if (input->empty()) return Status::Corruption("truncated boolean");
      const bool b = (*input)[0] != 0;
      input->RemovePrefix(1);
      return Datum::Boolean(b);
    }
    case Type::kInt:
    case Type::kLong: {
      int64_t v;
      if (!GetZigZag64(input, &v)) return Status::Corruption("truncated long");
      DatumPtr d = writer.type() == Type::kInt
                       ? Datum::Int(static_cast<int32_t>(v))
                       : Datum::Long(v);
      return PromoteNumeric(d, reader.type());
    }
    case Type::kFloat: {
      float f;
      if (!GetFloat(input, &f)) return Status::Corruption("truncated float");
      DatumPtr d = Datum::Float(f);
      return PromoteNumeric(d, reader.type());
    }
    case Type::kDouble: {
      double d;
      if (!GetDouble(input, &d)) return Status::Corruption("truncated double");
      return Datum::Double(d);
    }
    case Type::kString: {
      Slice s;
      if (!GetLengthPrefixed(input, &s)) {
        return Status::Corruption("truncated string");
      }
      return Datum::String(s.ToString());
    }
    case Type::kBytes: {
      Slice s;
      if (!GetLengthPrefixed(input, &s)) {
        return Status::Corruption("truncated bytes");
      }
      return Datum::Bytes(s.ToString());
    }
    case Type::kEnum: {
      int64_t idx;
      if (!GetZigZag64(input, &idx)) return Status::Corruption("truncated enum");
      if (idx < 0 || idx >= static_cast<int64_t>(writer.symbols().size())) {
        return Status::Corruption("enum index out of range");
      }
      const std::string& sym = writer.symbols()[idx];
      const int reader_idx = reader.SymbolIndex(sym);
      if (reader_idx < 0) {
        return Status::InvalidArgument("enum symbol absent in reader: " + sym);
      }
      return Datum::Enum(reader_idx, sym);
    }
    case Type::kArray: {
      auto arr = Datum::Array();
      for (;;) {
        int64_t count;
        if (!GetZigZag64(input, &count)) {
          return Status::Corruption("truncated array count");
        }
        if (count == 0) break;
        if (count < 0) count = -count;
        for (int64_t i = 0; i < count; ++i) {
          auto item =
              DecodeResolved(*writer.item_schema(), *reader.item_schema(), input);
          if (!item.ok()) return item;
          arr->items().push_back(std::move(item.value()));
        }
      }
      return arr;
    }
    case Type::kMap: {
      auto map = Datum::Map();
      for (;;) {
        int64_t count;
        if (!GetZigZag64(input, &count)) {
          return Status::Corruption("truncated map count");
        }
        if (count == 0) break;
        if (count < 0) count = -count;
        for (int64_t i = 0; i < count; ++i) {
          Slice key;
          if (!GetLengthPrefixed(input, &key)) {
            return Status::Corruption("truncated map key");
          }
          auto v = DecodeResolved(*writer.value_schema(),
                                  *reader.value_schema(), input);
          if (!v.ok()) return v;
          map->entries()[key.ToString()] = std::move(v.value());
        }
      }
      return map;
    }
    case Type::kRecord: {
      auto rec = Datum::Record(reader.name());
      // Decode writer fields in writer order; keep those the reader knows.
      for (const Field& wf : writer.fields()) {
        const Field* rf = reader.FindField(wf.name);
        if (rf == nullptr) {
          if (!SkipValue(*wf.schema, input)) {
            return Status::Corruption("truncated skipped field " + wf.name);
          }
          continue;
        }
        auto v = DecodeResolved(*wf.schema, *rf->schema, input);
        if (!v.ok()) return v;
        rec->SetField(wf.name, std::move(v.value()));
      }
      // Reader-only fields: fill from defaults.
      for (const Field& rf : reader.fields()) {
        if (writer.FindField(rf.name) != nullptr) continue;
        if (rf.default_json.empty()) {
          return Status::InvalidArgument("reader field " + rf.name +
                                         " has no default and writer lacks it");
        }
        auto dv = DatumFromJson(*rf.schema, rf.default_json);
        if (!dv.ok()) return dv.status();
        rec->SetField(rf.name, std::move(dv.value()));
      }
      return rec;
    }
    default:
      return Status::Internal("unhandled type in decode");
  }
}

Result<DatumPtr> DatumFromJson(const Schema& schema, const std::string& text) {
  auto doc = json::Parse(text);
  if (!doc.ok()) return doc.status();
  const json::Value& v = *doc.value();

  // Recursive conversion against the schema.
  struct Conv {
    static Result<DatumPtr> Run(const Schema& s, const json::Value& v) {
      switch (s.type()) {
        case Type::kNull:
          if (!v.is_null()) return Status::InvalidArgument("expected null");
          return Datum::Null();
        case Type::kBoolean:
          if (!v.is_bool()) return Status::InvalidArgument("expected bool");
          return Datum::Boolean(v.AsBool());
        case Type::kInt:
          if (!v.is_number()) return Status::InvalidArgument("expected number");
          return Datum::Int(static_cast<int32_t>(v.AsNumber()));
        case Type::kLong:
          if (!v.is_number()) return Status::InvalidArgument("expected number");
          return Datum::Long(static_cast<int64_t>(v.AsNumber()));
        case Type::kFloat:
          if (!v.is_number()) return Status::InvalidArgument("expected number");
          return Datum::Float(static_cast<float>(v.AsNumber()));
        case Type::kDouble:
          if (!v.is_number()) return Status::InvalidArgument("expected number");
          return Datum::Double(v.AsNumber());
        case Type::kString:
          if (!v.is_string()) return Status::InvalidArgument("expected string");
          return Datum::String(v.AsString());
        case Type::kBytes:
          if (!v.is_string()) return Status::InvalidArgument("expected string");
          return Datum::Bytes(v.AsString());
        case Type::kEnum: {
          if (!v.is_string()) return Status::InvalidArgument("expected symbol");
          const int idx = s.SymbolIndex(v.AsString());
          if (idx < 0) return Status::InvalidArgument("unknown symbol");
          return Datum::Enum(idx, v.AsString());
        }
        case Type::kArray: {
          if (!v.is_array()) return Status::InvalidArgument("expected array");
          auto arr = Datum::Array();
          for (const auto& item : v.items()) {
            auto d = Run(*s.item_schema(), *item);
            if (!d.ok()) return d;
            arr->items().push_back(std::move(d.value()));
          }
          return arr;
        }
        case Type::kMap: {
          if (!v.is_object()) return Status::InvalidArgument("expected object");
          auto map = Datum::Map();
          for (const auto& [k, mv] : v.members()) {
            auto d = Run(*s.value_schema(), *mv);
            if (!d.ok()) return d;
            map->entries()[k] = std::move(d.value());
          }
          return map;
        }
        case Type::kRecord: {
          if (!v.is_object()) return Status::InvalidArgument("expected object");
          auto rec = Datum::Record(s.name());
          for (const Field& f : s.fields()) {
            const json::Value* fv = v.Get(f.name);
            if (fv == nullptr) {
              if (f.default_json.empty()) {
                return Status::InvalidArgument("missing field " + f.name);
              }
              auto dv = DatumFromJson(*f.schema, f.default_json);
              if (!dv.ok()) return dv.status();
              rec->SetField(f.name, std::move(dv.value()));
              continue;
            }
            auto d = Run(*f.schema, *fv);
            if (!d.ok()) return d;
            rec->SetField(f.name, std::move(d.value()));
          }
          return rec;
        }
        case Type::kUnion: {
          // Per Avro, a JSON default for a union uses the FIRST branch.
          for (size_t i = 0; i < s.branches().size(); ++i) {
            auto d = Run(*s.branches()[i], v);
            if (d.ok()) {
              return Datum::Union(static_cast<int>(i), std::move(d.value()));
            }
          }
          return Status::InvalidArgument("no union branch matches JSON value");
        }
      }
      return Status::Internal("unhandled type");
    }
  };
  return Conv::Run(schema, v);
}

}  // namespace lidi::avro
