#include "avro/datum.h"

#include "avro/json.h"

namespace lidi::avro {

DatumPtr Datum::Null() { return std::make_shared<Datum>(); }

DatumPtr Datum::Boolean(bool b) {
  auto d = std::make_shared<Datum>();
  d->type_ = Type::kBoolean;
  d->bool_ = b;
  return d;
}

DatumPtr Datum::Int(int32_t v) {
  auto d = std::make_shared<Datum>();
  d->type_ = Type::kInt;
  d->long_ = v;
  return d;
}

DatumPtr Datum::Long(int64_t v) {
  auto d = std::make_shared<Datum>();
  d->type_ = Type::kLong;
  d->long_ = v;
  return d;
}

DatumPtr Datum::Float(float v) {
  auto d = std::make_shared<Datum>();
  d->type_ = Type::kFloat;
  d->double_ = v;
  return d;
}

DatumPtr Datum::Double(double v) {
  auto d = std::make_shared<Datum>();
  d->type_ = Type::kDouble;
  d->double_ = v;
  return d;
}

DatumPtr Datum::String(std::string s) {
  auto d = std::make_shared<Datum>();
  d->type_ = Type::kString;
  d->str_ = std::move(s);
  return d;
}

DatumPtr Datum::Bytes(std::string b) {
  auto d = std::make_shared<Datum>();
  d->type_ = Type::kBytes;
  d->str_ = std::move(b);
  return d;
}

DatumPtr Datum::Enum(int index, std::string symbol) {
  auto d = std::make_shared<Datum>();
  d->type_ = Type::kEnum;
  d->long_ = index;
  d->str_ = std::move(symbol);
  return d;
}

DatumPtr Datum::Array() {
  auto d = std::make_shared<Datum>();
  d->type_ = Type::kArray;
  return d;
}

DatumPtr Datum::Map() {
  auto d = std::make_shared<Datum>();
  d->type_ = Type::kMap;
  return d;
}

DatumPtr Datum::Record(std::string record_name) {
  auto d = std::make_shared<Datum>();
  d->type_ = Type::kRecord;
  d->str_ = std::move(record_name);
  return d;
}

DatumPtr Datum::Union(int branch, DatumPtr value) {
  auto d = std::make_shared<Datum>();
  d->type_ = Type::kUnion;
  d->long_ = branch;
  d->union_value_ = std::move(value);
  return d;
}

void Datum::SetField(const std::string& name, DatumPtr value) {
  for (auto& [k, v] : fields_) {
    if (k == name) {
      v = std::move(value);
      return;
    }
  }
  fields_.emplace_back(name, std::move(value));
}

DatumPtr Datum::GetField(const std::string& name) const {
  for (const auto& [k, v] : fields_) {
    if (k == name) return v;
  }
  return nullptr;
}

bool Datum::Equals(const Datum& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBoolean: return bool_ == other.bool_;
    case Type::kInt:
    case Type::kLong: return long_ == other.long_;
    case Type::kFloat:
    case Type::kDouble: return double_ == other.double_;
    case Type::kString:
    case Type::kBytes: return str_ == other.str_;
    case Type::kEnum: return long_ == other.long_ && str_ == other.str_;
    case Type::kArray: {
      if (items_.size() != other.items_.size()) return false;
      for (size_t i = 0; i < items_.size(); ++i) {
        if (!items_[i]->Equals(*other.items_[i])) return false;
      }
      return true;
    }
    case Type::kMap: {
      if (entries_.size() != other.entries_.size()) return false;
      for (const auto& [k, v] : entries_) {
        auto it = other.entries_.find(k);
        if (it == other.entries_.end() || !v->Equals(*it->second)) return false;
      }
      return true;
    }
    case Type::kRecord: {
      if (fields_.size() != other.fields_.size()) return false;
      for (const auto& [k, v] : fields_) {
        DatumPtr ov = other.GetField(k);
        if (ov == nullptr || !v->Equals(*ov)) return false;
      }
      return true;
    }
    case Type::kUnion:
      return long_ == other.long_ && union_value_->Equals(*other.union_value_);
  }
  return false;
}

std::string Datum::ToString() const {
  switch (type_) {
    case Type::kNull: return "null";
    case Type::kBoolean: return bool_ ? "true" : "false";
    case Type::kInt:
    case Type::kLong: return std::to_string(long_);
    case Type::kFloat:
    case Type::kDouble: return std::to_string(double_);
    case Type::kString: return json::Quote(str_);
    case Type::kBytes: return "<" + std::to_string(str_.size()) + " bytes>";
    case Type::kEnum: return str_;
    case Type::kArray: {
      std::string out = "[";
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i) out += ',';
        out += items_[i]->ToString();
      }
      return out + "]";
    }
    case Type::kMap: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : entries_) {
        if (!first) out += ',';
        first = false;
        out += json::Quote(k) + ":" + v->ToString();
      }
      return out + "}";
    }
    case Type::kRecord: {
      std::string out = "{";
      bool first = true;
      for (const auto& [k, v] : fields_) {
        if (!first) out += ',';
        first = false;
        out += json::Quote(k) + ":" + v->ToString();
      }
      return out + "}";
    }
    case Type::kUnion:
      return union_value_->ToString();
  }
  return "?";
}

}  // namespace lidi::avro
