#ifndef LIDI_AVRO_JSON_H_
#define LIDI_AVRO_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace lidi::json {

/// Minimal JSON document model used for Avro schemas, Espresso schema
/// registry payloads and default values. Supports the full JSON grammar
/// except \u escapes beyond the BMP-passthrough level.
class Value;
using ValuePtr = std::shared_ptr<Value>;

enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Value() : kind_(Kind::kNull) {}
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double d) : kind_(Kind::kNumber), num_(d) {}
  explicit Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}

  static ValuePtr MakeArray() {
    auto v = std::make_shared<Value>();
    v->kind_ = Kind::kArray;
    return v;
  }
  static ValuePtr MakeObject() {
    auto v = std::make_shared<Value>();
    v->kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_bool() const { return kind_ == Kind::kBool; }

  bool AsBool() const { return bool_; }
  double AsNumber() const { return num_; }
  const std::string& AsString() const { return str_; }
  std::vector<ValuePtr>& items() { return items_; }
  const std::vector<ValuePtr>& items() const { return items_; }

  /// Object member access; nullptr when the key is absent.
  const Value* Get(const std::string& key) const;
  void Set(const std::string& key, ValuePtr v);
  const std::vector<std::pair<std::string, ValuePtr>>& members() const {
    return members_;
  }

  /// Compact one-line serialization.
  std::string Dump() const;

 private:
  Kind kind_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<ValuePtr> items_;
  std::vector<std::pair<std::string, ValuePtr>> members_;  // insertion order
};

/// Parses a JSON document. Returns InvalidArgument on malformed input.
Result<ValuePtr> Parse(const std::string& text);

/// Escapes a string for embedding in JSON output (adds the quotes).
std::string Quote(const std::string& s);

}  // namespace lidi::json

#endif  // LIDI_AVRO_JSON_H_
