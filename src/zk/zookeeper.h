#ifndef LIDI_ZK_ZOOKEEPER_H_
#define LIDI_ZK_ZOOKEEPER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace lidi::zk {

/// Znode creation modes (the subset Kafka and Helix use).
enum class CreateMode {
  kPersistent,
  kEphemeral,             // deleted when the owning session closes
  kPersistentSequential,  // name gets a monotonically increasing suffix
  kEphemeralSequential,
};

/// Watch event types delivered to registered watchers. Watches are one-shot,
/// as in Zookeeper: after firing they must be re-registered.
enum class EventType {
  kNodeCreated,
  kNodeDeleted,
  kNodeDataChanged,
  kNodeChildrenChanged,
  kSessionExpired,
};

struct WatchEvent {
  EventType type;
  std::string path;
};

using Watcher = std::function<void(const WatchEvent&)>;
using SessionId = int64_t;

/// Watches registered without an owning session never expire automatically.
constexpr SessionId kNoSession = -1;

/// In-process coordination service replicating the Zookeeper API subset the
/// paper's systems rely on (Section V.C for Kafka's consumer coordination,
/// Section IV.B for Helix): hierarchical znodes, ephemeral and sequential
/// nodes, one-shot data and child watches, session expiry.
///
/// Single "ensemble" instance; linearizable by construction (global mutex).
/// Thread-safe. Watches fire synchronously after the mutation completes,
/// outside the internal lock, in registration order.
class ZooKeeper {
 public:
  ZooKeeper() = default;
  ZooKeeper(const ZooKeeper&) = delete;
  ZooKeeper& operator=(const ZooKeeper&) = delete;

  /// Opens a session. Ephemeral nodes are tied to it.
  SessionId CreateSession();

  /// Closes a session: deletes its ephemeral nodes (firing watches) and
  /// notifies the session's own watchers with kSessionExpired.
  void CloseSession(SessionId session);

  /// Creates a znode. Parent must exist (except for "/" children).
  /// For sequential modes, the created path (with suffix) is returned in
  /// *created_path (may be null). Errors: AlreadyExists, NotFound (parent).
  Status Create(SessionId session, const std::string& path,
                const std::string& data, CreateMode mode,
                std::string* created_path = nullptr);

  /// Creates the node and any missing parents (persistent, no watch storm).
  Status CreateRecursive(SessionId session, const std::string& path,
                         const std::string& data, CreateMode mode,
                         std::string* created_path = nullptr);

  /// Reads data; optionally leaves a one-shot data watch. As in ZooKeeper,
  /// a watch belongs to the session that registered it (`watch_owner`) and
  /// is dropped when that session closes — pass the caller's session for any
  /// watcher capturing objects that may die before the ensemble does.
  Result<std::string> Get(const std::string& path, Watcher watcher = nullptr,
                          SessionId watch_owner = kNoSession);

  /// Writes data; fires data watches. NotFound if absent.
  Status Set(const std::string& path, const std::string& data);

  /// Deletes a node (must have no children); fires watches.
  Status Delete(const std::string& path);

  /// Deletes a subtree rooted at path (ignores NotFound).
  void DeleteRecursive(const std::string& path);

  /// True if the node exists; optionally leaves a one-shot existence watch
  /// (fires on creation or deletion).
  bool Exists(const std::string& path, Watcher watcher = nullptr,
              SessionId watch_owner = kNoSession);

  /// Lists immediate children names (not full paths), sorted; optionally
  /// leaves a one-shot child watch on `path`.
  Result<std::vector<std::string>> GetChildren(const std::string& path,
                                               Watcher watcher = nullptr,
                                               SessionId watch_owner = kNoSession);

  /// Atomic compare-and-set on data; returns ObsoleteVersion on mismatch.
  /// Used for leader election and ownership claims.
  Status CompareAndSet(const std::string& path, const std::string& expected,
                       const std::string& desired);

 private:
  struct Znode {
    std::string data;
    SessionId ephemeral_owner = -1;  // -1 = persistent
    int64_t next_sequence = 0;
  };

  struct OwnedWatcher {
    SessionId owner = kNoSession;
    Watcher watcher;
  };

  struct PendingEvent {
    Watcher watcher;
    WatchEvent event;
  };

  // All helpers below require mu_ held; they append events to *out.
  void QueueDataWatches(const std::string& path, EventType type,
                        std::vector<PendingEvent>* out) LIDI_REQUIRES(mu_);
  void QueueChildWatches(const std::string& parent,
                         std::vector<PendingEvent>* out) LIDI_REQUIRES(mu_);
  Status CreateLocked(SessionId session, const std::string& path,
                      const std::string& data, CreateMode mode,
                      std::string* created_path,
                      std::vector<PendingEvent>* events) LIDI_REQUIRES(mu_);
  Status DeleteLocked(const std::string& path,
                      std::vector<PendingEvent>* events) LIDI_REQUIRES(mu_);
  static std::string ParentOf(const std::string& path);
  bool HasChildrenLocked(const std::string& path) const LIDI_REQUIRES(mu_);

  static void Fire(std::vector<PendingEvent> events);

  /// Global ensemble lock ("linearizable by construction"). Never held
  /// while firing watch callbacks — Fire() runs on drained event lists.
  mutable Mutex mu_{"zk.ensemble"};
  std::map<std::string, Znode> nodes_ LIDI_GUARDED_BY(mu_);
  std::map<std::string, std::vector<OwnedWatcher>> data_watches_
      LIDI_GUARDED_BY(mu_);
  std::map<std::string, std::vector<OwnedWatcher>> child_watches_
      LIDI_GUARDED_BY(mu_);
  std::map<SessionId, std::set<std::string>> session_nodes_
      LIDI_GUARDED_BY(mu_);
  SessionId next_session_ LIDI_GUARDED_BY(mu_) = 1;
};

}  // namespace lidi::zk

#endif  // LIDI_ZK_ZOOKEEPER_H_
