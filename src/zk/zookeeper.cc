#include "zk/zookeeper.h"

#include <algorithm>
#include <cstdio>

namespace lidi::zk {

std::string ZooKeeper::ParentOf(const std::string& path) {
  const size_t pos = path.find_last_of('/');
  if (pos == 0) return "/";
  return path.substr(0, pos);
}

bool ZooKeeper::HasChildrenLocked(const std::string& path) const {
  const std::string prefix = path == "/" ? "/" : path + "/";
  auto it = nodes_.upper_bound(path);
  // Children sort immediately after "<path>/"; scan forward over the prefix
  // range.
  for (; it != nodes_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) == 0) return true;
    if (it->first.compare(0, prefix.size(), prefix) > 0) break;
  }
  return false;
}

SessionId ZooKeeper::CreateSession() {
  MutexLock lock(&mu_);
  return next_session_++;
}

void ZooKeeper::CloseSession(SessionId session) {
  std::vector<PendingEvent> events;
  {
    MutexLock lock(&mu_);
    // The session's watches die with it, before any deletion events fire:
    // a watcher must never outlive the object that registered it.
    for (auto* watch_map : {&data_watches_, &child_watches_}) {
      for (auto it = watch_map->begin(); it != watch_map->end();) {
        auto& watchers = it->second;
        watchers.erase(std::remove_if(watchers.begin(), watchers.end(),
                                      [session](const OwnedWatcher& w) {
                                        return w.owner == session;
                                      }),
                       watchers.end());
        it = watchers.empty() ? watch_map->erase(it) : std::next(it);
      }
    }
    auto it = session_nodes_.find(session);
    if (it != session_nodes_.end()) {
      // Copy: DeleteLocked mutates session_nodes_.
      const std::set<std::string> paths = it->second;
      for (const std::string& path : paths) {
        // discard-ok: ephemeral teardown of nodes enumerated under this
        // same lock; DeleteLocked can only fail with NotFound, and a
        // concurrent explicit delete is exactly that case.
        (void)DeleteLocked(path, &events);
      }
      session_nodes_.erase(session);
    }
  }
  Fire(std::move(events));
}

void ZooKeeper::QueueDataWatches(const std::string& path, EventType type,
                                 std::vector<PendingEvent>* out) {
  auto it = data_watches_.find(path);
  if (it == data_watches_.end()) return;
  for (OwnedWatcher& w : it->second) {
    out->push_back({std::move(w.watcher), {type, path}});
  }
  data_watches_.erase(it);
}

void ZooKeeper::QueueChildWatches(const std::string& parent,
                                  std::vector<PendingEvent>* out) {
  auto it = child_watches_.find(parent);
  if (it == child_watches_.end()) return;
  for (OwnedWatcher& w : it->second) {
    out->push_back(
        {std::move(w.watcher), {EventType::kNodeChildrenChanged, parent}});
  }
  child_watches_.erase(it);
}

void ZooKeeper::Fire(std::vector<PendingEvent> events) {
  for (PendingEvent& e : events) {
    if (e.watcher) e.watcher(e.event);
  }
}

Status ZooKeeper::CreateLocked(SessionId session, const std::string& path,
                               const std::string& data, CreateMode mode,
                               std::string* created_path,
                               std::vector<PendingEvent>* events) {
  if (path.empty() || path[0] != '/' ||
      (path.size() > 1 && path.back() == '/')) {
    return Status::InvalidArgument("bad znode path: " + path);
  }
  const std::string parent = ParentOf(path);
  if (parent != "/" && nodes_.find(parent) == nodes_.end()) {
    return Status::NotFound("parent missing: " + parent);
  }

  std::string final_path = path;
  const bool sequential = mode == CreateMode::kPersistentSequential ||
                          mode == CreateMode::kEphemeralSequential;
  if (sequential) {
    int64_t seq = 0;
    if (parent != "/") {
      seq = nodes_[parent].next_sequence++;
    }
    char suffix[16];
    std::snprintf(suffix, sizeof(suffix), "%010lld",
                  static_cast<long long>(seq));
    final_path += suffix;
  }
  if (nodes_.find(final_path) != nodes_.end()) {
    return Status::AlreadyExists(final_path);
  }

  Znode node;
  node.data = data;
  const bool ephemeral = mode == CreateMode::kEphemeral ||
                         mode == CreateMode::kEphemeralSequential;
  if (ephemeral) {
    node.ephemeral_owner = session;
    session_nodes_[session].insert(final_path);
  }
  nodes_[final_path] = std::move(node);
  if (created_path != nullptr) *created_path = final_path;

  QueueDataWatches(final_path, EventType::kNodeCreated, events);
  QueueChildWatches(parent, events);
  return Status::OK();
}

Status ZooKeeper::Create(SessionId session, const std::string& path,
                         const std::string& data, CreateMode mode,
                         std::string* created_path) {
  std::vector<PendingEvent> events;
  Status s;
  {
    MutexLock lock(&mu_);
    s = CreateLocked(session, path, data, mode, created_path, &events);
  }
  Fire(std::move(events));
  return s;
}

Status ZooKeeper::CreateRecursive(SessionId session, const std::string& path,
                                  const std::string& data, CreateMode mode,
                                  std::string* created_path) {
  std::vector<PendingEvent> events;
  Status s;
  {
    MutexLock lock(&mu_);
    // Create missing ancestors as persistent empty nodes.
    std::vector<std::string> ancestors;
    for (std::string p = ParentOf(path); p != "/"; p = ParentOf(p)) {
      if (nodes_.find(p) != nodes_.end()) break;
      ancestors.push_back(p);
    }
    std::reverse(ancestors.begin(), ancestors.end());
    for (const std::string& p : ancestors) {
      Status as =
          CreateLocked(session, p, "", CreateMode::kPersistent, nullptr, &events);
      if (!as.ok() && as.code() != Code::kAlreadyExists) {
        Fire(std::move(events));
        return as;
      }
    }
    s = CreateLocked(session, path, data, mode, created_path, &events);
  }
  Fire(std::move(events));
  return s;
}

Result<std::string> ZooKeeper::Get(const std::string& path, Watcher watcher,
                                   SessionId watch_owner) {
  MutexLock lock(&mu_);
  auto it = nodes_.find(path);
  if (it == nodes_.end()) return Status::NotFound(path);
  if (watcher) {
    data_watches_[path].push_back({watch_owner, std::move(watcher)});
  }
  return it->second.data;
}

Status ZooKeeper::Set(const std::string& path, const std::string& data) {
  std::vector<PendingEvent> events;
  {
    MutexLock lock(&mu_);
    auto it = nodes_.find(path);
    if (it == nodes_.end()) return Status::NotFound(path);
    it->second.data = data;
    QueueDataWatches(path, EventType::kNodeDataChanged, &events);
  }
  Fire(std::move(events));
  return Status::OK();
}

Status ZooKeeper::DeleteLocked(const std::string& path,
                               std::vector<PendingEvent>* events) {
  auto it = nodes_.find(path);
  if (it == nodes_.end()) return Status::NotFound(path);
  if (HasChildrenLocked(path)) {
    return Status::InvalidArgument("znode has children: " + path);
  }
  if (it->second.ephemeral_owner >= 0) {
    auto sit = session_nodes_.find(it->second.ephemeral_owner);
    if (sit != session_nodes_.end()) sit->second.erase(path);
  }
  nodes_.erase(it);
  QueueDataWatches(path, EventType::kNodeDeleted, events);
  QueueChildWatches(ParentOf(path), events);
  return Status::OK();
}

Status ZooKeeper::Delete(const std::string& path) {
  std::vector<PendingEvent> events;
  Status s;
  {
    MutexLock lock(&mu_);
    s = DeleteLocked(path, &events);
  }
  Fire(std::move(events));
  return s;
}

void ZooKeeper::DeleteRecursive(const std::string& path) {
  std::vector<PendingEvent> events;
  {
    MutexLock lock(&mu_);
    const std::string prefix = path + "/";
    // Collect the subtree deepest-first so parents delete cleanly.
    std::vector<std::string> doomed;
    for (auto it = nodes_.lower_bound(path); it != nodes_.end(); ++it) {
      if (it->first == path ||
          it->first.compare(0, prefix.size(), prefix) == 0) {
        doomed.push_back(it->first);
      } else if (it->first.compare(0, path.size(), path) > 0) {
        break;
      }
    }
    std::sort(doomed.begin(), doomed.end(),
              [](const std::string& a, const std::string& b) {
                return a.size() > b.size() || (a.size() == b.size() && a < b);
              });
    for (const std::string& p : doomed) {
      // discard-ok: recursive delete of paths enumerated under this lock;
      // children sort before parents so each delete sees an existing leaf.
      (void)DeleteLocked(p, &events);
    }
  }
  Fire(std::move(events));
}

bool ZooKeeper::Exists(const std::string& path, Watcher watcher,
                       SessionId watch_owner) {
  MutexLock lock(&mu_);
  const bool exists = nodes_.find(path) != nodes_.end();
  if (watcher) {
    data_watches_[path].push_back({watch_owner, std::move(watcher)});
  }
  return exists;
}

Result<std::vector<std::string>> ZooKeeper::GetChildren(
    const std::string& path, Watcher watcher, SessionId watch_owner) {
  MutexLock lock(&mu_);
  if (path != "/" && nodes_.find(path) == nodes_.end()) {
    return Status::NotFound(path);
  }
  const std::string prefix = path == "/" ? "/" : path + "/";
  std::vector<std::string> children;
  for (auto it = nodes_.lower_bound(prefix); it != nodes_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    const std::string rest = it->first.substr(prefix.size());
    if (rest.find('/') == std::string::npos) children.push_back(rest);
  }
  if (watcher) {
    child_watches_[path].push_back({watch_owner, std::move(watcher)});
  }
  return children;
}

Status ZooKeeper::CompareAndSet(const std::string& path,
                                const std::string& expected,
                                const std::string& desired) {
  std::vector<PendingEvent> events;
  {
    MutexLock lock(&mu_);
    auto it = nodes_.find(path);
    if (it == nodes_.end()) return Status::NotFound(path);
    if (it->second.data != expected) {
      return Status::ObsoleteVersion("znode data changed under CAS");
    }
    it->second.data = desired;
    QueueDataWatches(path, EventType::kNodeDataChanged, &events);
  }
  Fire(std::move(events));
  return Status::OK();
}

}  // namespace lidi::zk
