#include "common/overload.h"

#include <algorithm>

namespace lidi {

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_per_sec_(rate_per_sec),
      burst_(std::max(burst, 1.0)),
      tokens_(std::max(burst, 1.0)) {}

bool TokenBucket::TryAcquire(int64_t now_micros, double tokens) {
  if (!enabled()) return true;
  MutexLock lock(&mu_);
  if (now_micros > refilled_micros_) {
    const double elapsed_sec =
        static_cast<double>(now_micros - refilled_micros_) / 1e6;
    tokens_ = std::min(burst_, tokens_ + elapsed_sec * rate_per_sec_);
    refilled_micros_ = now_micros;
  }
  if (tokens_ < tokens) return false;
  tokens_ -= tokens;
  return true;
}

double TokenBucket::AvailableAt(int64_t now_micros) const {
  if (!enabled()) return burst_;
  MutexLock lock(&mu_);
  if (now_micros <= refilled_micros_) return tokens_;
  const double elapsed_sec =
      static_cast<double>(now_micros - refilled_micros_) / 1e6;
  return std::min(burst_, tokens_ + elapsed_sec * rate_per_sec_);
}

PerClientQuota::PerClientQuota(double rate_per_sec, double burst)
    : rate_per_sec_(rate_per_sec), burst_(burst) {}

bool PerClientQuota::Admit(const std::string& client, int64_t now_micros,
                           double tokens) {
  if (!enabled() || !enforcing()) return true;
  {
    ReaderLock lock(&mu_);
    auto it = buckets_.find(client);
    if (it != buckets_.end()) {
      return it->second->TryAcquire(now_micros, tokens);
    }
  }
  WriterLock lock(&mu_);
  auto [it, inserted] = buckets_.try_emplace(client, nullptr);
  if (inserted) {
    it->second = std::make_unique<TokenBucket>(rate_per_sec_, burst_);
  }
  return it->second->TryAcquire(now_micros, tokens);
}

}  // namespace lidi
