#include "common/compression.h"

#include <zlib.h>

namespace lidi {

Status Compress(CompressionCodec codec, Slice input, std::string* output) {
  switch (codec) {
    case CompressionCodec::kNone:
      output->append(input.data(), input.size());
      return Status::OK();
    case CompressionCodec::kDeflate: {
      uLongf bound = compressBound(static_cast<uLong>(input.size()));
      const size_t old_size = output->size();
      output->resize(old_size + bound);
      const int rc = compress2(
          reinterpret_cast<Bytef*>(output->data() + old_size), &bound,
          reinterpret_cast<const Bytef*>(input.data()),
          static_cast<uLong>(input.size()), Z_DEFAULT_COMPRESSION);
      if (rc != Z_OK) return Status::Internal("zlib compress failed");
      output->resize(old_size + bound);
      return Status::OK();
    }
  }
  return Status::NotSupported("unknown codec");
}

Status Decompress(CompressionCodec codec, Slice input, std::string* output) {
  switch (codec) {
    case CompressionCodec::kNone:
      output->append(input.data(), input.size());
      return Status::OK();
    case CompressionCodec::kDeflate: {
      // Grow the output buffer geometrically until inflate fits.
      size_t cap = input.size() * 4 + 64;
      for (int attempt = 0; attempt < 12; ++attempt) {
        const size_t old_size = output->size();
        output->resize(old_size + cap);
        uLongf dest_len = static_cast<uLongf>(cap);
        const int rc = uncompress(
            reinterpret_cast<Bytef*>(output->data() + old_size), &dest_len,
            reinterpret_cast<const Bytef*>(input.data()),
            static_cast<uLong>(input.size()));
        if (rc == Z_OK) {
          output->resize(old_size + dest_len);
          return Status::OK();
        }
        output->resize(old_size);
        if (rc != Z_BUF_ERROR) {
          return Status::Corruption("zlib uncompress failed");
        }
        cap *= 2;
      }
      return Status::Corruption("compressed data expands beyond sane bound");
    }
  }
  return Status::NotSupported("unknown codec");
}

}  // namespace lidi
