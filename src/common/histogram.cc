#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lidi {

double Histogram::Average() const {
  if (samples_.empty()) return 0;
  double sum = 0;
  for (double v : samples_) sum += v;
  return sum / static_cast<double>(samples_.size());
}

double Histogram::Percentile(double p) {
  if (samples_.empty()) return 0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1 - frac) + samples_[hi] * frac;
}

double Histogram::Max() {
  if (samples_.empty()) return 0;
  return *std::max_element(samples_.begin(), samples_.end());
}

std::string Histogram::Summary() {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu avg=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
                count(), Average(), Percentile(50), Percentile(95),
                Percentile(99), Max());
  return buf;
}

}  // namespace lidi
