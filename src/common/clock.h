#ifndef LIDI_COMMON_CLOCK_H_
#define LIDI_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace lidi {

/// Time source abstraction. Production components read real time; tests and
/// the simulated network inject a ManualClock so retention, SLA expiry and
/// failure-detector windows are deterministic.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds since an arbitrary epoch.
  virtual int64_t NowMicros() const = 0;
  int64_t NowMillis() const { return NowMicros() / 1000; }
};

/// Reads the system steady clock (monotonic).
class SystemClock : public Clock {
 public:
  int64_t NowMicros() const override;
  /// Process-wide shared instance.
  static SystemClock* Default();
};

/// A clock advanced explicitly by tests.
class ManualClock : public Clock {
 public:
  explicit ManualClock(int64_t start_micros = 0) : now_(start_micros) {}
  int64_t NowMicros() const override { return now_.load(); }
  void AdvanceMicros(int64_t delta) { now_ += delta; }
  void AdvanceMillis(int64_t delta) { now_ += delta * 1000; }
  void SetMicros(int64_t t) { now_ = t; }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace lidi

#endif  // LIDI_COMMON_CLOCK_H_
