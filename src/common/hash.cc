#include "common/hash.h"

#include <cstring>

namespace lidi {

uint64_t Fnv1a64(Slice data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < data.size(); ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

struct Crc32Table {
  uint32_t entries[256];
  constexpr Crc32Table() : entries() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};
constexpr Crc32Table kCrcTable;

}  // namespace

uint32_t Crc32Extend(uint32_t crc, Slice data) {
  uint32_t c = crc ^ 0xffffffffu;
  for (size_t i = 0; i < data.size(); ++i) {
    c = kCrcTable.entries[(c ^ static_cast<uint8_t>(data[i])) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint32_t Crc32(Slice data) { return Crc32Extend(0, data); }

// ---------------------------------------------------------------------------
// MD5 (RFC 1321). Compact, allocation-free implementation.
// ---------------------------------------------------------------------------

namespace {

struct Md5Context {
  uint32_t a = 0x67452301, b = 0xefcdab89, c = 0x98badcfe, d = 0x10325476;
  uint64_t total_len = 0;
  uint8_t buffer[64];
  size_t buffer_len = 0;
};

constexpr uint32_t kMd5K[64] = {
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a,
    0xa8304613, 0xfd469501, 0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be,
    0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821, 0xf61e2562, 0xc040b340,
    0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8,
    0x676f02d9, 0x8d2a4c8a, 0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c,
    0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70, 0x289b7ec6, 0xeaa127fa,
    0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92,
    0xffeff47d, 0x85845dd1, 0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1,
    0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391};

constexpr int kMd5S[64] = {7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
                           7, 12, 17, 22, 5, 9,  14, 20, 5, 9,  14, 20,
                           5, 9,  14, 20, 5, 9,  14, 20, 4, 11, 16, 23,
                           4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
                           6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
                           6, 10, 15, 21};

uint32_t RotL(uint32_t x, int c) { return (x << c) | (x >> (32 - c)); }

void Md5Block(Md5Context* ctx, const uint8_t* p) {
  uint32_t m[16];
  for (int i = 0; i < 16; ++i) {
    m[i] = static_cast<uint32_t>(p[4 * i]) |
           static_cast<uint32_t>(p[4 * i + 1]) << 8 |
           static_cast<uint32_t>(p[4 * i + 2]) << 16 |
           static_cast<uint32_t>(p[4 * i + 3]) << 24;
  }
  uint32_t a = ctx->a, b = ctx->b, c = ctx->c, d = ctx->d;
  for (int i = 0; i < 64; ++i) {
    uint32_t f;
    int g;
    if (i < 16) {
      f = (b & c) | (~b & d);
      g = i;
    } else if (i < 32) {
      f = (d & b) | (~d & c);
      g = (5 * i + 1) & 15;
    } else if (i < 48) {
      f = b ^ c ^ d;
      g = (3 * i + 5) & 15;
    } else {
      f = c ^ (b | ~d);
      g = (7 * i) & 15;
    }
    const uint32_t tmp = d;
    d = c;
    c = b;
    b = b + RotL(a + f + kMd5K[i] + m[g], kMd5S[i]);
    a = tmp;
  }
  ctx->a += a;
  ctx->b += b;
  ctx->c += c;
  ctx->d += d;
}

void Md5Update(Md5Context* ctx, const uint8_t* data, size_t len) {
  ctx->total_len += len;
  while (len > 0) {
    if (ctx->buffer_len == 0 && len >= 64) {
      Md5Block(ctx, data);
      data += 64;
      len -= 64;
      continue;
    }
    const size_t take = std::min<size_t>(64 - ctx->buffer_len, len);
    memcpy(ctx->buffer + ctx->buffer_len, data, take);
    ctx->buffer_len += take;
    data += take;
    len -= take;
    if (ctx->buffer_len == 64) {
      Md5Block(ctx, ctx->buffer);
      ctx->buffer_len = 0;
    }
  }
}

std::array<uint8_t, 16> Md5Final(Md5Context* ctx) {
  const uint64_t bit_len = ctx->total_len * 8;
  uint8_t pad[72] = {0x80};
  const size_t rem = ctx->total_len & 63;
  const size_t pad_len = (rem < 56) ? 56 - rem : 120 - rem;
  Md5Update(ctx, pad, pad_len);
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (8 * i));
  }
  // Update with length bytes without recounting total_len (already padded).
  memcpy(ctx->buffer + ctx->buffer_len, len_bytes, 8);
  Md5Block(ctx, ctx->buffer);
  std::array<uint8_t, 16> out;
  const uint32_t words[4] = {ctx->a, ctx->b, ctx->c, ctx->d};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      out[4 * i + j] = static_cast<uint8_t>(words[i] >> (8 * j));
    }
  }
  return out;
}

}  // namespace

std::array<uint8_t, 16> Md5(Slice data) {
  Md5Context ctx;
  Md5Update(&ctx, reinterpret_cast<const uint8_t*>(data.data()), data.size());
  return Md5Final(&ctx);
}

std::string Md5Hex(Slice data) {
  static constexpr char kHex[] = "0123456789abcdef";
  const std::array<uint8_t, 16> digest = Md5(data);
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    out[2 * i] = kHex[digest[i] >> 4];
    out[2 * i + 1] = kHex[digest[i] & 15];
  }
  return out;
}

}  // namespace lidi
