#ifndef LIDI_COMMON_HASH_H_
#define LIDI_COMMON_HASH_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/slice.h"

namespace lidi {

/// 64-bit FNV-1a hash. Used for partition routing (Voldemort hash ring,
/// Espresso resource_id routing, Kafka key partitioning).
uint64_t Fnv1a64(Slice data);

/// 32-bit CRC (CRC-32/ISO-HDLC, same polynomial as zlib). Used to checksum
/// log segments and binlog entries.
uint32_t Crc32(Slice data);
/// Incremental form: extends a running CRC with more data.
uint32_t Crc32Extend(uint32_t crc, Slice data);

/// MD5 digest (RFC 1321), 16 bytes. The Voldemort read-only store sorts its
/// index entries by MD5(key) and binary-searches them (paper Section II.B).
std::array<uint8_t, 16> Md5(Slice data);

/// MD5 digest rendered as 32 lowercase hex characters.
std::string Md5Hex(Slice data);

}  // namespace lidi

#endif  // LIDI_COMMON_HASH_H_
