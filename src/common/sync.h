#ifndef LIDI_COMMON_SYNC_H_
#define LIDI_COMMON_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

/// Annotated synchronisation primitives (paper-wide correctness substrate).
///
/// Every lock in the tree is a lidi::Mutex / lidi::SharedMutex so that two
/// machine checks replace after-the-fact TSan archaeology:
///
///  1. Clang Thread Safety Analysis at compile time. Members are tagged
///     LIDI_GUARDED_BY(mu_), *_locked() helpers LIDI_REQUIRES(mu_), and a
///     build with `-DLIDI_THREAD_SAFETY=ON` under Clang turns
///     -Wthread-safety into an error. Under GCC (this container's
///     toolchain) every attribute macro expands to nothing.
///
///  2. A debug-mode lock-order registry at run time. Each Mutex/SharedMutex
///     registers per-thread acquisition chains; the first A->B / B->A
///     inversion aborts the process printing BOTH chains' lock names, so a
///     latent deadlock is caught on the first interleaving that exhibits
///     the inconsistent order — not the (rare) one that actually deadlocks.
///     Optional rank hints (`Mutex(name, rank)`) declare the hierarchy
///     explicitly: acquiring a lock whose rank is <= a held lock's rank
///     aborts immediately, even before any reverse order is observed.
///     Compiled out when LIDI_LOCK_ORDER_CHECKS is 0 (release benches);
///     the CMake option LIDI_LOCK_ORDER (default ON) pins the macro for
///     every TU so layouts never diverge.

// --- Clang Thread Safety Analysis attribute macros -------------------------
// No-ops on non-Clang compilers, per-attribute feature-tested on Clang.
#if defined(__clang__)
#define LIDI_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define LIDI_THREAD_ANNOTATION(x)  // not Clang: compiles to nothing
#endif

#define LIDI_CAPABILITY(x) LIDI_THREAD_ANNOTATION(capability(x))
#define LIDI_SCOPED_CAPABILITY LIDI_THREAD_ANNOTATION(scoped_lockable)
#define LIDI_GUARDED_BY(x) LIDI_THREAD_ANNOTATION(guarded_by(x))
#define LIDI_PT_GUARDED_BY(x) LIDI_THREAD_ANNOTATION(pt_guarded_by(x))
#define LIDI_ACQUIRED_BEFORE(...) \
  LIDI_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define LIDI_ACQUIRED_AFTER(...) \
  LIDI_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define LIDI_REQUIRES(...) \
  LIDI_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define LIDI_REQUIRES_SHARED(...) \
  LIDI_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define LIDI_ACQUIRE(...) \
  LIDI_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define LIDI_ACQUIRE_SHARED(...) \
  LIDI_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define LIDI_RELEASE(...) \
  LIDI_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define LIDI_RELEASE_SHARED(...) \
  LIDI_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define LIDI_RELEASE_GENERIC(...) \
  LIDI_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define LIDI_TRY_ACQUIRE(...) \
  LIDI_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define LIDI_EXCLUDES(...) LIDI_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define LIDI_ASSERT_CAPABILITY(x) LIDI_THREAD_ANNOTATION(assert_capability(x))
#define LIDI_RETURN_CAPABILITY(x) LIDI_THREAD_ANNOTATION(lock_returned(x))
#define LIDI_NO_THREAD_SAFETY_ANALYSIS \
  LIDI_THREAD_ANNOTATION(no_thread_safety_analysis)

// --- Lock-order registry switch --------------------------------------------
// CMake always pins this (add_compile_definitions) so every TU agrees;
// the fallback keeps ad-hoc compiles (editors, single-file checks) working.
#if !defined(LIDI_LOCK_ORDER_CHECKS)
#if defined(NDEBUG)
#define LIDI_LOCK_ORDER_CHECKS 0
#else
#define LIDI_LOCK_ORDER_CHECKS 1
#endif
#endif

namespace lidi {

/// Central lock-rank table (lower rank = acquired first / outermost). Ranks
/// are assigned only to locks whose nesting is part of a verified hierarchy;
/// unranked locks (-1) rely on the observed-order graph instead. Mirrored in
/// DESIGN.md §8 — keep the two in sync.
namespace lockrank {
// net/network: endpoint registry; never held across a handler call.
inline constexpr int kNetEndpoints = 10;
// net/tcp_transport: transport state (handlers/listeners/pools) ->
// per-reactor source map -> per-connection outbox/pending -> worker queue.
// All sit below the subsystem locks (>= 20) because handlers run with none
// of them held, and callers must not hold subsystem locks across a Call.
inline constexpr int kNetTcpState = 12;
inline constexpr int kNetTcpReactor = 13;
inline constexpr int kNetTcpConn = 14;
inline constexpr int kNetTcpQueue = 16;
// kafka: broker partition map -> per-partition log writer -> snapshot
// micro-mutex. Readers take only the snapshot micro-mutex.
inline constexpr int kKafkaBrokerPartitions = 20;
inline constexpr int kKafkaLogWriter = 30;
inline constexpr int kKafkaLogSnapshot = 35;
// storage/log_engine: single writer/compaction lock (a leaf; the engine
// has no nested lock today, but it sits under any caller that ranks).
inline constexpr int kLogEngineWriter = 40;
}  // namespace lockrank

namespace sync_internal {

/// Identity of one lock in the order registry. Lives inside Mutex /
/// SharedMutex; address identity is the graph-node key.
struct LockInfo {
  const char* name;  // never null; "<anonymous>" when unnamed
  int rank;          // -1 = unranked (graph detection only)
};

void OnAcquire(const LockInfo* info);
void OnRelease(const LockInfo* info);
void OnDestroy(const LockInfo* info);

}  // namespace sync_internal

/// Exclusive mutex. Same semantics as std::mutex plus (a) Clang TSA
/// capability attributes and (b) debug-mode lock-order registration.
/// `rank` declares a position in the lock hierarchy (lower acquired first);
/// see DESIGN.md §8 for the repo-wide table.
class LIDI_CAPABILITY("mutex") Mutex {
 public:
  Mutex() : info_{"<anonymous>", -1} {}
  explicit Mutex(const char* name, int rank = -1) : info_{name, rank} {}
  ~Mutex() {
#if LIDI_LOCK_ORDER_CHECKS
    sync_internal::OnDestroy(&info_);
#endif
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() LIDI_ACQUIRE() {
#if LIDI_LOCK_ORDER_CHECKS
    sync_internal::OnAcquire(&info_);  // checks order BEFORE blocking
#endif
    mu_.lock();
  }

  void unlock() LIDI_RELEASE() {
    mu_.unlock();
#if LIDI_LOCK_ORDER_CHECKS
    sync_internal::OnRelease(&info_);
#endif
  }

  bool try_lock() LIDI_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if LIDI_LOCK_ORDER_CHECKS
    sync_internal::OnAcquire(&info_);  // cannot block: safe after acquiring
#endif
    return true;
  }

  const char* name() const { return info_.name; }
  int rank() const { return info_.rank; }

 private:
  std::mutex mu_;
  sync_internal::LockInfo info_;  // layout identical with checks off
};

/// Reader/writer mutex with the same annotation + registry contract.
class LIDI_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() : info_{"<anonymous>", -1} {}
  explicit SharedMutex(const char* name, int rank = -1) : info_{name, rank} {}
  ~SharedMutex() {
#if LIDI_LOCK_ORDER_CHECKS
    sync_internal::OnDestroy(&info_);
#endif
  }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() LIDI_ACQUIRE() {
#if LIDI_LOCK_ORDER_CHECKS
    sync_internal::OnAcquire(&info_);
#endif
    mu_.lock();
  }
  void unlock() LIDI_RELEASE() {
    mu_.unlock();
#if LIDI_LOCK_ORDER_CHECKS
    sync_internal::OnRelease(&info_);
#endif
  }
  void lock_shared() LIDI_ACQUIRE_SHARED() {
    // Shared acquisitions participate in ordering too: reader-then-writer
    // inversions deadlock just as hard.
#if LIDI_LOCK_ORDER_CHECKS
    sync_internal::OnAcquire(&info_);
#endif
    mu_.lock_shared();
  }
  void unlock_shared() LIDI_RELEASE_SHARED() {
    mu_.unlock_shared();
#if LIDI_LOCK_ORDER_CHECKS
    sync_internal::OnRelease(&info_);
#endif
  }

  const char* name() const { return info_.name; }
  int rank() const { return info_.rank; }

 private:
  std::shared_mutex mu_;
  sync_internal::LockInfo info_;
};

/// RAII exclusive lock over Mutex (std::lock_guard replacement, plus
/// explicit Unlock/Lock for the handful of drop-the-lock-across-I/O sites).
class LIDI_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) LIDI_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() LIDI_RELEASE() {
    if (owned_) mu_->unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() LIDI_RELEASE() {
    mu_->unlock();
    owned_ = false;
  }
  void Lock() LIDI_ACQUIRE() {
    mu_->lock();
    owned_ = true;
  }

 private:
  Mutex* const mu_;
  bool owned_ = true;
};

/// RAII shared (reader) lock over SharedMutex.
class LIDI_SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex* mu) LIDI_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->lock_shared();
  }
  ~ReaderLock() LIDI_RELEASE() { mu_->unlock_shared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII exclusive (writer) lock over SharedMutex.
class LIDI_SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex* mu) LIDI_ACQUIRE(mu) : mu_(mu) {
    mu_->lock();
  }
  ~WriterLock() LIDI_RELEASE() { mu_->unlock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable bound to lidi::Mutex. Wait sites spell the predicate
/// as a `while (!pred) cv.Wait(&mu);` loop so Clang TSA sees the guarded
/// reads under the held mutex (predicate lambdas would be analysed out of
/// context). The wait path releases/reacquires through Mutex::unlock/lock,
/// so the lock-order registry stays consistent across the block.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases *mu and blocks until notified; reacquires before
  /// returning. Spurious wakeups possible — always loop on the predicate.
  void Wait(Mutex* mu) LIDI_REQUIRES(mu) { cv_.wait(*mu); }

  /// Timed wait; returns false if the timeout elapsed (lock reacquired
  /// either way).
  bool WaitFor(Mutex* mu, std::chrono::milliseconds timeout)
      LIDI_REQUIRES(mu) {
    return cv_.wait_for(*mu, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace lidi

#endif  // LIDI_COMMON_SYNC_H_
