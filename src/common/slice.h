#ifndef LIDI_COMMON_SLICE_H_
#define LIDI_COMMON_SLICE_H_

#include <cstddef>
#include <cstring>
#include <string>
#include <string_view>

namespace lidi {

/// A non-owning view over a byte range, in the style of the LevelDB/RocksDB
/// Slice. The referenced storage must outlive the Slice.
///
/// Keys and values throughout lidi are arbitrary byte strings; Slice is the
/// parameter type, std::string the owning type.
class Slice {
 public:
  Slice() : data_(""), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const char* cstr) : data_(cstr), size_(strlen(cstr)) {}      // NOLINT
  Slice(std::string_view sv) : data_(sv.data()), size_(sv.size()) {}  // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  /// Drops the first n bytes from the view. Requires n <= size().
  void RemovePrefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

  std::string ToString() const { return std::string(data_, size_); }
  std::string_view view() const { return std::string_view(data_, size_); }

  /// Three-way lexicographic byte comparison: <0, 0, or >0.
  int compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) r = -1;
      else if (size_ > other.size_) r = +1;
    }
    return r;
  }

  bool starts_with(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() && memcmp(a.data(), b.data(), a.size()) == 0;
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) {
  return a.compare(b) < 0;
}

}  // namespace lidi

#endif  // LIDI_COMMON_SLICE_H_
