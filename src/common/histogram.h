#ifndef LIDI_COMMON_HISTOGRAM_H_
#define LIDI_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lidi {

/// Latency recorder used by the bench harnesses. Stores raw samples (the
/// bench scales are small enough) and reports avg/percentiles. Production
/// paths use obs::LatencyHistogram (fixed buckets, bounded memory) instead.
///
/// Contract: on an empty histogram, Average/Percentile/Max all return 0
/// rather than reading past the sample vector.
class Histogram {
 public:
  void Record(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }
  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  double Average() const;  // 0 when empty
  double Percentile(double p);  // p in [0, 100]; sorts lazily; 0 when empty
  double Max();  // 0 when empty

  /// One-line summary, e.g. "n=1000 avg=2.13 p50=1.90 p99=6.40 max=9.1".
  std::string Summary();

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

}  // namespace lidi

#endif  // LIDI_COMMON_HISTOGRAM_H_
