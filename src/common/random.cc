#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace lidi {

std::string Random::Bytes(size_t len) {
  // Biased toward a small alphabet so payloads compress like log text.
  static constexpr char kAlpha[] =
      "aaaabcdeeeeefghiiijklmnoooopqrstuuuvwxyz0123456789 _-./:";
  std::string out(len, ' ');
  for (size_t i = 0; i < len; ++i) {
    out[i] = kAlpha[Uniform(sizeof(kAlpha) - 1)];
  }
  return out;
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), rng_(seed), cdf_(n) {
  double sum = 0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (uint64_t i = 0; i < n; ++i) cdf_[i] /= sum;
}

uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace lidi
