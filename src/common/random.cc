#include "common/random.h"

#include <cmath>

namespace lidi {

std::string Random::Bytes(size_t len) {
  // Biased toward a small alphabet so payloads compress like log text.
  static constexpr char kAlpha[] =
      "aaaabcdeeeeefghiiijklmnoooopqrstuuuvwxyz0123456789 _-./:";
  std::string out(len, ' ');
  for (size_t i = 0; i < len; ++i) {
    out[i] = kAlpha[Uniform(sizeof(kAlpha) - 1)];
  }
  return out;
}

namespace {

// log1p(x)/x, continuous through x == 0. Keeps H/HInverse numerically stable
// when (1 - theta) * log(x) is tiny (theta near 1, or x near 1).
double Helper1(double x) {
  if (std::abs(x) > 1e-8) return std::log1p(x) / x;
  return 1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x));
}

// expm1(x)/x, continuous through x == 0.
double Helper2(double x) {
  if (std::abs(x) > 1e-8) return std::expm1(x) / x;
  return 1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x));
}

}  // namespace

double ZipfGenerator::H(double x) const {
  const double log_x = std::log(x);
  return Helper2((1.0 - theta_) * log_x) * log_x;
}

double ZipfGenerator::HInverse(double x) const {
  double t = x * (1.0 - theta_);
  if (t < -1.0) t = -1.0;  // round-off guard at the left edge of the domain
  return std::exp(Helper1(t) * x);
}

ZipfGenerator::ZipfGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  const double nn = static_cast<double>(n_ == 0 ? 1 : n_);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(nn + 0.5);
  s_ = 2.0 - HInverse(H(2.5) - std::exp(-theta_ * std::log(2.0)));
}

uint64_t ZipfGenerator::Next() {
  if (n_ <= 1) return 0;
  // Hörmann rejection-inversion: invert the continuous majorizing hazard,
  // round to the nearest rank, accept by the shortcut band (k - x <= s) or
  // the exact per-rank test. Expected iterations < 1.12 for any n, theta.
  for (;;) {
    const double u = h_n_ + rng_.NextDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    // Clamp: floating-point round-off at either edge of the inversion domain
    // could otherwise yield k == 0 or k == n + 1 — the out-of-domain ranks
    // the old lower_bound implementation could return.
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    if (static_cast<double>(k) - x <= s_ ||
        u >= H(static_cast<double>(k) + 0.5) -
                 std::exp(-theta_ * std::log(static_cast<double>(k)))) {
      return k - 1;  // external ranks are 0-based: [0, n)
    }
  }
}

}  // namespace lidi
