#ifndef LIDI_COMMON_RANDOM_H_
#define LIDI_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace lidi {

/// Deterministic 64-bit PRNG (splitmix64). All randomized lidi components
/// take an explicit seed so tests and benches are reproducible.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Uniform integer in [lo, hi].
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Random byte string of the given length (printable ASCII, so generated
  /// payloads are compressible like real event text).
  std::string Bytes(size_t len);

 private:
  uint64_t state_;
};

/// Zipfian rank sampler over [0, n). The paper notes Company Follow store
/// sizes follow a Zipfian distribution (Section II.C); activity-event key
/// popularity is likewise skewed.
///
/// Uses Hörmann's rejection-inversion method ("Rejection-inversion to
/// generate variates from monotone discrete distributions", 1996 — the same
/// algorithm behind YCSB's and Apache Commons' Zipf samplers): O(1) setup
/// and O(1) memory regardless of n, so million-key generators are free to
/// construct. The previous implementation materialized the full O(n) CDF
/// (8 MB per million keys) and binary-searched it with std::lower_bound,
/// where a uniform draw landing above the last floating-point CDF entry
/// returned end() — i.e. the out-of-domain rank n. The sampler below is
/// clamped so every returned rank is provably in [0, n).
class ZipfGenerator {
 public:
  /// theta is the skew parameter (0 = uniform-ish, 0.99 = YCSB default).
  /// Requires theta >= 0; theta == 1 is handled via the limit form of the
  /// generalized harmonic integral.
  ZipfGenerator(uint64_t n, double theta, uint64_t seed);

  /// Returns a rank in [0, n); rank 0 is the most popular.
  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  // Integral of x^-theta (the continuous hazard majorizing the pmf), and its
  // inverse. theta == 1 uses the log limit.
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double theta_;
  Random rng_;
  // Precomputed constants of the rejection-inversion scheme.
  double h_x1_;          // H(1.5) - 1^-theta: left edge correction
  double h_n_;           // H(n + 0.5): right edge of the inversion domain
  double s_;             // shortcut-acceptance threshold: 2 - HInverse(H(2.5) - 2^-theta)
};

}  // namespace lidi

#endif  // LIDI_COMMON_RANDOM_H_
