#ifndef LIDI_COMMON_BUFFER_H_
#define LIDI_COMMON_BUFFER_H_

#include <memory>
#include <string>
#include <utility>

#include "common/slice.h"

namespace lidi {

/// An immutable, refcounted byte buffer. Once constructed the bytes never
/// change, so any number of threads may read a Buffer concurrently without
/// synchronization; lifetime is managed by shared_ptr (BufferRef).
///
/// This is the storage type of the zero-copy read path (paper V.B: Kafka
/// serves consumer fetches straight out of the page cache via sendfile,
/// never materializing per-consumer copies). Flushed log segments are held
/// as Buffers; readers receive PinnedSlices that share ownership, so the
/// retention janitor can drop a segment while in-flight readers keep it
/// alive.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::string data) : data_(std::move(data)) {}

  const char* data() const { return data_.data(); }
  size_t size() const { return data_.size(); }
  Slice slice() const { return Slice(data_); }

 private:
  const std::string data_;
};

using BufferRef = std::shared_ptr<const Buffer>;

/// Wraps owned bytes into a refcounted immutable buffer (moves, no copy).
inline BufferRef WrapBuffer(std::string data) {
  return std::make_shared<const Buffer>(std::move(data));
}

/// A Slice plus shared ownership of the storage it points into: the view
/// stays valid for as long as the PinnedSlice (or any copy of it) lives,
/// even if the producer of the bytes has since dropped them.
///
/// The zero-copy currency of the fetch path: PartitionLog::ReadPinned hands
/// out PinnedSlices into flushed segment buffers, Broker::FetchPinned and
/// net::Network::CallPayload pass them through unchanged, and the consumer
/// decodes messages directly from the pinned bytes.
class PinnedSlice {
 public:
  PinnedSlice() = default;
  PinnedSlice(Slice slice, BufferRef pin)
      : slice_(slice), pin_(std::move(pin)) {}

  /// Materializes an owning PinnedSlice from unowned bytes (one copy). Used
  /// to adapt legacy string-producing paths into the zero-copy plumbing.
  static PinnedSlice Copy(Slice s) { return Own(s.ToString()); }

  /// Wraps an owned string without copying.
  static PinnedSlice Own(std::string data) {
    BufferRef buffer = WrapBuffer(std::move(data));
    Slice whole = buffer->slice();
    return PinnedSlice(whole, std::move(buffer));
  }

  const char* data() const { return slice_.data(); }
  size_t size() const { return slice_.size(); }
  bool empty() const { return slice_.empty(); }

  Slice slice() const { return slice_; }
  std::string ToString() const { return slice_.ToString(); }
  const BufferRef& pin() const { return pin_; }

 private:
  Slice slice_;
  BufferRef pin_;
};

}  // namespace lidi

#endif  // LIDI_COMMON_BUFFER_H_
