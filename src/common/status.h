#ifndef LIDI_COMMON_STATUS_H_
#define LIDI_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

/// Must-use marker for the error-carrying types. Both GCC and Clang warn
/// (-Wunused-result) when a [[nodiscard]] class is returned and dropped on
/// the floor, which makes the compiler itself the first line of the
/// must-check static-analysis contract (DESIGN.md "Static analysis
/// contract"; scripts/lidi_check.py is the second line, covering the call
/// sites the compiler cannot see). Intentional discards must be written as
/// a visible `(void)` cast with a `discard-ok:` reason comment — bare
/// discards fail the build.
#ifndef LIDI_NODISCARD
#define LIDI_NODISCARD [[nodiscard]]
#endif

namespace lidi {

/// Error categories used across all lidi subsystems.
///
/// The library does not use C++ exceptions; every fallible operation returns
/// a Status (or a Result<T> when it also produces a value).
enum class Code {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kCorruption,
  kIOError,
  kTimeout,
  kUnavailable,       // transient failure, retry may succeed
  kObsoleteVersion,   // write lost an optimistic-concurrency race
  kInsufficientNodes, // quorum not reachable
  kNotSupported,
  kAborted,
  kInternal,
  kOverloaded,        // rejected by quota / queue bound / admission control
};

/// Human-readable name of a status code, e.g. "NotFound".
const char* CodeName(Code code);

/// Result of a fallible operation: a code plus an optional message.
///
/// Cheap to copy in the OK case (empty message). Construct via the named
/// factories: `Status::OK()`, `Status::NotFound("key missing")`, ...
class LIDI_NODISCARD Status {
 public:
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status Timeout(std::string msg = "") {
    return Status(Code::kTimeout, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status ObsoleteVersion(std::string msg = "") {
    return Status(Code::kObsoleteVersion, std::move(msg));
  }
  static Status InsufficientNodes(std::string msg = "") {
    return Status(Code::kInsufficientNodes, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg = "") {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status Overloaded(std::string msg = "") {
    return Status(Code::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsObsoleteVersion() const { return code_ == Code::kObsoleteVersion; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsTimeout() const { return code_ == Code::kTimeout; }
  bool IsOverloaded() const { return code_ == Code::kOverloaded; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

/// A value-or-error wrapper. Holds either a T or a non-OK Status.
///
/// Usage:
///   Result<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class LIDI_NODISCARD Result {
 public:
  /// Implicit construction from a value or a non-OK Status keeps call sites
  /// terse (`return 42;` / `return Status::NotFound();`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// OK() if this holds a value, otherwise the stored error.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& { return std::get<T>(repr_); }
  T& value() & { return std::get<T>(repr_); }
  T&& value() && { return std::get<T>(std::move(repr_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace lidi

#endif  // LIDI_COMMON_STATUS_H_
