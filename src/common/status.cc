#include "common/status.h"

namespace lidi {

const char* CodeName(Code code) {
  switch (code) {
    case Code::kOk: return "OK";
    case Code::kNotFound: return "NotFound";
    case Code::kAlreadyExists: return "AlreadyExists";
    case Code::kInvalidArgument: return "InvalidArgument";
    case Code::kCorruption: return "Corruption";
    case Code::kIOError: return "IOError";
    case Code::kTimeout: return "Timeout";
    case Code::kUnavailable: return "Unavailable";
    case Code::kObsoleteVersion: return "ObsoleteVersion";
    case Code::kInsufficientNodes: return "InsufficientNodes";
    case Code::kNotSupported: return "NotSupported";
    case Code::kAborted: return "Aborted";
    case Code::kInternal: return "Internal";
    case Code::kOverloaded: return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace lidi
