#include "common/coding.h"

namespace lidi {

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  dst->append(buf, 8);
}

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>(v | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutZigZag64(std::string* dst, int64_t v) {
  const uint64_t encoded =
      (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
  PutVarint64(dst, encoded);
}

void PutLengthPrefixed(std::string* dst, Slice value) {
  PutVarint64(dst, value.size());
  dst->append(value.data(), value.size());
}

bool GetFixed32(Slice* input, uint32_t* v) {
  if (input->size() < 4) return false;
  *v = DecodeFixed32(input->data());
  input->RemovePrefix(4);
  return true;
}

bool GetFixed64(Slice* input, uint64_t* v) {
  if (input->size() < 8) return false;
  *v = DecodeFixed64(input->data());
  input->RemovePrefix(8);
  return true;
}

bool GetVarint64(Slice* input, uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    const uint8_t byte = static_cast<uint8_t>((*input)[0]);
    input->RemovePrefix(1);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
  }
  return false;
}

bool GetZigZag64(Slice* input, int64_t* v) {
  uint64_t encoded;
  if (!GetVarint64(input, &encoded)) return false;
  *v = static_cast<int64_t>(encoded >> 1) ^ -static_cast<int64_t>(encoded & 1);
  return true;
}

bool GetLengthPrefixed(Slice* input, Slice* value) {
  uint64_t len;
  if (!GetVarint64(input, &len)) return false;
  if (input->size() < len) return false;
  *value = Slice(input->data(), len);
  input->RemovePrefix(len);
  return true;
}

uint32_t DecodeFixed32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t DecodeFixed64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace lidi
