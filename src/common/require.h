// Abort-on-error helper for programs whose setup is all-or-nothing.
//
// Benchmarks and examples build a fixture (stores, topics, schemas) before
// measuring or demonstrating anything; a fixture that half-exists would
// silently measure garbage. LIDI_MUST_OK crashes loudly with the failing
// expression and location instead. It is NOT for library code — libraries
// propagate Status to their caller (see DESIGN.md, "Static analysis
// contract").
#ifndef LIDI_COMMON_REQUIRE_H_
#define LIDI_COMMON_REQUIRE_H_

#include <cstdio>
#include <cstdlib>

#include "common/status.h"

namespace lidi {
namespace require_internal {

inline Status ToStatus(const Status& s) { return s; }
template <typename T>
Status ToStatus(const Result<T>& r) {
  return r.status();
}

inline void MustOk(const Status& s, const char* expr, const char* file,
                   int line) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s:%d: %s failed: %s\n", file, line, expr,
                 s.ToString().c_str());
    std::abort();
  }
}

}  // namespace require_internal
}  // namespace lidi

#define LIDI_MUST_OK(expr)                                          \
  ::lidi::require_internal::MustOk(                                 \
      ::lidi::require_internal::ToStatus((expr)), #expr, __FILE__, \
      __LINE__)

#endif  // LIDI_COMMON_REQUIRE_H_
