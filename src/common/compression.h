#ifndef LIDI_COMMON_COMPRESSION_H_
#define LIDI_COMMON_COMPRESSION_H_

#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace lidi {

/// Compression codecs for Kafka message sets (paper Section V.B: producers
/// compress batches; ~2/3 of network bandwidth saved in practice).
enum class CompressionCodec : uint8_t {
  kNone = 0,
  kDeflate = 1,  // zlib deflate (the paper's GZIP-class codec)
};

/// Compresses `input` with the given codec, appending to *output.
Status Compress(CompressionCodec codec, Slice input, std::string* output);

/// Decompresses `input` produced by Compress with the same codec.
Status Decompress(CompressionCodec codec, Slice input, std::string* output);

}  // namespace lidi

#endif  // LIDI_COMMON_COMPRESSION_H_
