#ifndef LIDI_COMMON_OVERLOAD_H_
#define LIDI_COMMON_OVERLOAD_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/sync.h"

namespace lidi {

/// Overload-control primitives shared by the serving tiers (DESIGN.md §11).
///
/// The paper's systems exist to survive "heavy traffic from millions of
/// users"; these are the mechanisms that make saturation a graceful-
/// degradation regime instead of a queueing collapse:
///  - TokenBucket / PerClientQuota: per-client rate limiting at the Kafka
///    broker and Voldemort server — a hot client is throttled before it
///    starves everyone else.
///  - InflightLimiter: bounded concurrent admissions — the transport
///    dispatch queues and the Espresso router reject-before-work when the
///    in-flight budget is exhausted.
///
/// Every rejection surfaces as Status::Overloaded, parity-locked across the
/// sim and TCP transport backends like the rest of the error contract, so
/// clients can distinguish "back off and retry" from real failures.

/// A standard token bucket: capacity `burst` tokens, refilled continuously
/// at `rate_per_sec`. Deterministic under a virtual clock — the refill is a
/// pure function of the timestamps the caller passes in, so seeded sim
/// schedules replay identically. Thread-safe; the lock is a leaf.
///
/// rate_per_sec <= 0 disables the bucket: TryAcquire always grants.
class TokenBucket {
 public:
  TokenBucket(double rate_per_sec, double burst);

  /// Takes `tokens` if available at `now_micros`, else refuses (never
  /// blocks, never goes into debt). Calls with non-monotonic timestamps are
  /// safe: refill clamps to the latest time seen.
  bool TryAcquire(int64_t now_micros, double tokens = 1.0);

  /// Tokens available at `now_micros` (observability/tests).
  double AvailableAt(int64_t now_micros) const;

  double rate_per_sec() const { return rate_per_sec_; }
  double burst() const { return burst_; }
  bool enabled() const { return rate_per_sec_ > 0; }

 private:
  const double rate_per_sec_;
  const double burst_;

  mutable Mutex mu_{"common.token_bucket"};
  double tokens_ LIDI_GUARDED_BY(mu_);
  int64_t refilled_micros_ LIDI_GUARDED_BY(mu_) = 0;
};

/// Per-client quota: one TokenBucket per client identity, all with the same
/// (rate, burst) configuration. Buckets are created on first sight of a
/// client and live forever (client identities are addresses, a bounded
/// population). Thread-safe; Admit on a known client is lock-light (shared
/// lock on the map, then the bucket's own leaf lock).
class PerClientQuota {
 public:
  PerClientQuota(double rate_per_sec, double burst);

  /// True if `client` may proceed at `now_micros` (consumes one token).
  /// Always true when the quota is disabled (rate <= 0).
  bool Admit(const std::string& client, int64_t now_micros,
             double tokens = 1.0);

  bool enabled() const { return rate_per_sec_ > 0; }

  /// Runtime kill switch: while set false, Admit always grants. Lets the
  /// sim harness end admission pressure when chaos ends (Settle) without
  /// reconstructing the tier.
  void set_enforcing(bool enforcing) {
    enforcing_.store(enforcing, std::memory_order_relaxed);
  }
  bool enforcing() const {
    return enforcing_.load(std::memory_order_relaxed);
  }

 private:
  const double rate_per_sec_;
  const double burst_;
  std::atomic<bool> enforcing_{true};

  mutable SharedMutex mu_{"common.quota_clients"};
  std::map<std::string, std::unique_ptr<TokenBucket>> buckets_
      LIDI_GUARDED_BY(mu_);
};

/// Bounded concurrent admissions: TryEnter grants while fewer than `max`
/// holders are inside, refuses otherwise. The transports use this as the
/// dispatch-queue bound (a request admitted for dispatch holds a slot until
/// its handler finishes), the Espresso router as its in-flight budget.
/// max <= 0 disables the limit. Lock-free.
class InflightLimiter {
 public:
  explicit InflightLimiter(int64_t max) : max_(max) {}

  bool TryEnter() {
    if (max_ <= 0) return true;
    if (inflight_.fetch_add(1, std::memory_order_acq_rel) + 1 > max_) {
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      return false;
    }
    return true;
  }

  /// Pairs with a successful TryEnter (a refused TryEnter already undid its
  /// increment; a disabled limiter never counted).
  void Exit() {
    if (max_ <= 0) return;
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
  }

  int64_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  int64_t max() const { return max_; }
  bool enabled() const { return max_ > 0; }

 private:
  const int64_t max_;
  std::atomic<int64_t> inflight_{0};
};

/// RAII holder for an InflightLimiter slot. Admitted() false = the budget
/// was exhausted; the guard then holds nothing and releases nothing.
class InflightGuard {
 public:
  explicit InflightGuard(InflightLimiter* limiter)
      : limiter_(limiter), admitted_(limiter->TryEnter()) {}
  ~InflightGuard() {
    if (admitted_) limiter_->Exit();
  }

  InflightGuard(const InflightGuard&) = delete;
  InflightGuard& operator=(const InflightGuard&) = delete;

  bool admitted() const { return admitted_; }

 private:
  InflightLimiter* const limiter_;
  const bool admitted_;
};

}  // namespace lidi

#endif  // LIDI_COMMON_OVERLOAD_H_
