#include "common/thread_pool.h"

namespace lidi {

ThreadPool::ThreadPool(int num_threads) {
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace lidi
