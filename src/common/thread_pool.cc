#include "common/thread_pool.h"

namespace lidi {

ThreadPool::ThreadPool(int num_threads) {
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  task_cv_.NotifyAll();
  for (auto& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
  }
  task_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (!(queue_.empty() && in_flight_ == 0)) idle_cv_.Wait(&mu_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!(shutdown_ || !queue_.empty())) task_cv_.Wait(&mu_);
      if (shutdown_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      MutexLock lock(&mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace lidi
