#ifndef LIDI_COMMON_THREAD_POOL_H_
#define LIDI_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lidi {

/// Fixed-size worker pool. Used for parallel fetches in the Voldemort
/// read-only pull phase and for background appliers.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns immediately.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace lidi

#endif  // LIDI_COMMON_THREAD_POOL_H_
