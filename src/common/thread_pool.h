#ifndef LIDI_COMMON_THREAD_POOL_H_
#define LIDI_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.h"

namespace lidi {

/// Fixed-size worker pool. Used for parallel fetches in the Voldemort
/// read-only pull phase and for background appliers.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns immediately.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

 private:
  void WorkerLoop();

  Mutex mu_{"common.thread_pool"};
  CondVar task_cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ LIDI_GUARDED_BY(mu_);
  int in_flight_ LIDI_GUARDED_BY(mu_) = 0;
  bool shutdown_ LIDI_GUARDED_BY(mu_) = false;
  // tsa-ok: spawned in the constructor, joined in the destructor; worker
  // threads never touch the vector itself.
  std::vector<std::thread> workers_;
};

}  // namespace lidi

#endif  // LIDI_COMMON_THREAD_POOL_H_
