#include "common/sync.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace lidi::sync_internal {

#if LIDI_LOCK_ORDER_CHECKS

namespace {

// The registry's own locks are the one allowed raw-std::mutex site outside
// user code: they must not recurse into the checker.
struct OrderGraph {
  std::shared_mutex mu;
  // edge A -> B: "A was held while B was acquired". The value is the
  // acquisition chain (lock names, outermost first) captured when the edge
  // was first recorded — the "other stack" printed on an inversion.
  std::unordered_map<const LockInfo*,
                     std::unordered_map<const LockInfo*, std::string>>
      edges;
};

OrderGraph& Graph() {
  static OrderGraph* g = new OrderGraph();  // leaked: outlives every Mutex
  return *g;
}

std::vector<const LockInfo*>& HeldStack() {
  thread_local std::vector<const LockInfo*> held;
  return held;
}

// Per-thread memo of (held, acquiring) pairs already validated against the
// global graph. Once a thread has recorded A->B it may skip the graph for
// that pair forever: a later B->A — on any thread — still finds the A->B
// edge in the graph on ITS first validation and dies there. Keeping the
// hot path to one thread-local hash probe (instead of a shared_mutex
// round-trip plus two map lookups) is what makes the checker cheap enough
// to leave on in default builds (E15b regressed ~20% without it).
struct EdgeMemo {
  std::unordered_set<uint64_t> seen;
  uint64_t epoch = 0;  // mirrors DestroyEpoch(); stale memo is cleared
};

EdgeMemo& Memo() {
  thread_local EdgeMemo memo;
  return memo;
}

// Bumped on every Mutex destruction: heap addresses get recycled, so every
// thread's memo is invalidated rather than letting a new lock at an old
// address inherit validated pairs.
std::atomic<uint64_t>& DestroyEpoch() {
  static std::atomic<uint64_t> epoch{0};
  return epoch;
}

uint64_t EdgeKey(const LockInfo* held, const LockInfo* acquiring) {
  uint64_t h = reinterpret_cast<uintptr_t>(held);
  uint64_t a = reinterpret_cast<uintptr_t>(acquiring);
  return (h * 0x9e3779b97f4a7c15ULL) ^ a;
}

std::string ChainString(const std::vector<const LockInfo*>& held,
                        const LockInfo* acquiring) {
  std::string out;
  for (const LockInfo* h : held) {
    out += '"';
    out += h->name;
    out += "\" -> ";
  }
  out += '"';
  out += acquiring->name;
  out += '"';
  return out;
}

[[noreturn]] void Die(const char* kind, const std::string& current_chain,
                      const std::string& prior_chain) {
  std::fprintf(stderr,
               "lidi::Mutex %s\n"
               "  this thread's acquisition chain:  %s\n"
               "  conflicting prior chain:          %s\n",
               kind, current_chain.c_str(),
               prior_chain.empty() ? "(none)" : prior_chain.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace

void OnAcquire(const LockInfo* info) {
  std::vector<const LockInfo*>& held = HeldStack();
  if (!held.empty()) {
    for (const LockInfo* h : held) {
      if (h == info) {
        Die("reentrant acquisition (self-deadlock)",
            ChainString(held, info), ChainString({info}, info));
      }
      if (h->rank >= 0 && info->rank >= 0 && info->rank <= h->rank) {
        std::string prior = "rank ";
        prior += std::to_string(h->rank);
        prior += " (\"";
        prior += h->name;
        prior += "\") declared before rank ";
        prior += std::to_string(info->rank);
        prior += " (\"";
        prior += info->name;
        prior += "\")";
        Die("lock-rank inversion", ChainString(held, info), prior);
      }
    }
    EdgeMemo& memo = Memo();
    const uint64_t epoch = DestroyEpoch().load(std::memory_order_acquire);
    if (memo.epoch != epoch) {
      memo.seen.clear();
      memo.epoch = epoch;
    }
    bool all_memoized = true;
    for (const LockInfo* h : held) {
      if (!memo.seen.count(EdgeKey(h, info))) {
        all_memoized = false;
        break;
      }
    }
    if (all_memoized) {
      held.push_back(info);
      return;
    }
    OrderGraph& g = Graph();
    // Fast path: every forward edge already known, no reverse edge.
    bool need_insert = false;
    {
      std::shared_lock<std::shared_mutex> rl(g.mu);
      for (const LockInfo* h : held) {
        auto rev = g.edges.find(info);
        if (rev != g.edges.end()) {
          auto hit = rev->second.find(h);
          if (hit != rev->second.end()) {
            Die("lock-order inversion", ChainString(held, info), hit->second);
          }
        }
        auto fwd = g.edges.find(h);
        if (fwd == g.edges.end() || !fwd->second.count(info)) {
          need_insert = true;
        }
      }
    }
    if (need_insert) {
      std::string chain = ChainString(held, info);
      std::unique_lock<std::shared_mutex> wl(g.mu);
      for (const LockInfo* h : held) {
        // Re-check the reverse edge: another thread may have recorded B->A
        // between our shared and exclusive sections.
        auto rev = g.edges.find(info);
        if (rev != g.edges.end()) {
          auto hit = rev->second.find(h);
          if (hit != rev->second.end()) {
            Die("lock-order inversion", chain, hit->second);
          }
        }
        g.edges[h].emplace(info, chain);
      }
    }
    // Validated against the graph without dying: memoize every pair so
    // repeat acquisitions in this order skip the graph entirely.
    for (const LockInfo* h : held) memo.seen.insert(EdgeKey(h, info));
  }
  held.push_back(info);
}

void OnRelease(const LockInfo* info) {
  std::vector<const LockInfo*>& held = HeldStack();
  // Locks may be released out of acquisition order: search from the top.
  for (auto it = held.rbegin(); it != held.rend(); ++it) {
    if (*it == info) {
      held.erase(std::next(it).base());
      return;
    }
  }
  // Release of a lock this thread never acquired (cross-thread unlock):
  // undefined for std::mutex anyway; ignore rather than crash in the
  // checker.
}

void OnDestroy(const LockInfo* info) {
  OrderGraph& g = Graph();
  std::unique_lock<std::shared_mutex> wl(g.mu);
  // Heap addresses get recycled: drop every edge touching the dead lock so
  // a later Mutex at the same address cannot inherit its history, and
  // invalidate every thread's edge memo for the same reason.
  g.edges.erase(info);
  for (auto& [from, to] : g.edges) to.erase(info);
  DestroyEpoch().fetch_add(1, std::memory_order_release);
}

#else  // !LIDI_LOCK_ORDER_CHECKS

void OnAcquire(const LockInfo*) {}
void OnRelease(const LockInfo*) {}
void OnDestroy(const LockInfo*) {}

#endif  // LIDI_LOCK_ORDER_CHECKS

}  // namespace lidi::sync_internal
