#ifndef LIDI_COMMON_CODING_H_
#define LIDI_COMMON_CODING_H_

#include <cstdint>
#include <string>

#include "common/slice.h"
#include "common/status.h"

namespace lidi {

/// Binary encode/decode primitives shared by the Avro codec, the Kafka log
/// format, the Databus event format and the storage engines.
///
/// Fixed-width integers are little-endian. Varints use the LEB128 scheme;
/// signed varints are zig-zag encoded (as in Avro's binary encoding).

void PutFixed32(std::string* dst, uint32_t v);
void PutFixed64(std::string* dst, uint64_t v);
void PutVarint64(std::string* dst, uint64_t v);
/// Zig-zag encoded signed varint (Avro `long` wire format).
void PutZigZag64(std::string* dst, int64_t v);
/// Length-prefixed byte string: varint length, then bytes.
void PutLengthPrefixed(std::string* dst, Slice value);

/// Each Get* consumes bytes from the front of *input on success. On failure
/// (truncated input) returns false and leaves *input unspecified.
bool GetFixed32(Slice* input, uint32_t* v);
bool GetFixed64(Slice* input, uint64_t* v);
bool GetVarint64(Slice* input, uint64_t* v);
bool GetZigZag64(Slice* input, int64_t* v);
bool GetLengthPrefixed(Slice* input, Slice* value);

/// Decodes a fixed32/64 at a raw pointer (caller guarantees bounds).
uint32_t DecodeFixed32(const char* p);
uint64_t DecodeFixed64(const char* p);

}  // namespace lidi

#endif  // LIDI_COMMON_CODING_H_
