// E17 — transport backend comparison: the same RPC workload on the
// deterministic sim transport and on real epoll/TCP localhost sockets.
//
// The pluggable transport runtime (DESIGN.md §10) claims tier code runs
// unmodified on both backends. This bench quantifies what that costs: sim
// dispatch is a synchronous function call (nanoseconds), TCP pays a real
// kernel round trip (microseconds) plus exactly one serialize copy per
// side on the pinned-payload path.
//
// Rows land in BENCH_net.json (LIDI_BENCH_JSON=1).

#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/random.h"
#include "net/network.h"
#include "net/tcp_transport.h"
#include "net/transport.h"

using namespace lidi;

namespace {

std::unique_ptr<net::Transport> MakeTransport(const std::string& mode) {
  if (mode == "tcp") return std::make_unique<net::TcpTransport>();
  return std::make_unique<net::Network>();
}

}  // namespace

int main() {
  bench::Header("E17: sim vs TCP transport backends",
                "one Transport interface, two runtimes: deterministic "
                "in-process dispatch vs epoll over localhost sockets");
  bench::Row("%5s | %10s | %12s | %12s | %10s", "mode", "payload B",
             "calls/s", "fetch MB/s", "p99 us");

  for (const std::string mode : {"sim", "tcp"}) {
    for (int payload_bytes : {64, 64 << 10}) {
      auto transport = MakeTransport(mode);
      Random rng(11);
      const std::string blob = rng.Bytes(payload_bytes);
      // The serving shape: a pinned response straight out of "storage",
      // zero-copy in-sim, one copy per side over TCP.
      transport->RegisterPayload(
          "server", "fetch", [&blob](Slice) -> Result<PinnedSlice> {
            return PinnedSlice::Own(std::string(blob));
          });

      const int kWarmup = 200;
      const int kCalls = payload_bytes > 1024 ? 4'000 : 20'000;
      for (int i = 0; i < kWarmup; ++i) {
        if (!transport->CallPayload("client", "server", "fetch", "").ok()) {
          return 1;
        }
      }

      std::vector<double> micros;
      micros.reserve(kCalls);
      bench::Stopwatch total;
      for (int i = 0; i < kCalls; ++i) {
        bench::Stopwatch call;
        auto r = transport->CallPayload("client", "server", "fetch", "");
        if (!r.ok() || r.value().size() != blob.size()) return 1;
        micros.push_back(call.ElapsedMicros());
      }
      const double seconds = total.ElapsedSeconds();
      const double rate = kCalls / seconds;
      const double mbps =
          static_cast<double>(kCalls) * payload_bytes / seconds / (1 << 20);
      std::sort(micros.begin(), micros.end());
      const double p99 = micros[static_cast<size_t>(0.99 * (kCalls - 1))];

      bench::Row("%5s | %10d | %12.0f | %12.1f | %10.1f", mode.c_str(),
                 payload_bytes, rate, mbps, p99);
      bench::JsonRowAt("BENCH_net.json", "E17", {{"transport", mode}},
                       {{"payload_bytes", payload_bytes},
                        {"calls_per_s", rate},
                        {"fetch_mbps", mbps},
                        {"p99_micros", p99}});
    }
  }
  bench::Row("\nshape check: sim RTT is a function call; TCP pays the kernel\n"
             "round trip but keeps the identical Transport error/trace\n"
             "contract — the price of running tiers over real sockets.");
  return 0;
}
