// EXT-2 — rebalancing without downtime (paper II.B Admin Service; "faster
// rebalancing" is Voldemort's named future work, II.C).
//
// We migrate partitions onto a newly added node while a client hammers the
// store, and measure (a) request availability during the migration window
// (the redirect path must hide the move) and (b) migration cost vs the
// number of keys moved.

#include <memory>

#include "bench_util.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/random.h"
#include "net/address.h"
#include "net/network.h"
#include "voldemort/admin.h"
#include "voldemort/client.h"
#include "voldemort/routing.h"
#include "voldemort/server.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::voldemort;

int main() {
  bench::Header("EXT-2: rebalance under load",
                "requests of moving partitions are redirected; no downtime "
                "(paper II.B)");
  bench::Row("%10s | %12s | %14s | %14s | %12s", "keys", "moved keys",
             "migration ms", "reqs in-flight", "failed reqs");

  for (int num_keys : {2'000, 10'000, 50'000}) {
    net::Network network;
    ManualClock clock;
    std::vector<Node> nodes;
    for (int i = 0; i < 4; ++i) nodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), 0});
    auto metadata =
        std::make_shared<ClusterMetadata>(Cluster::Uniform(nodes, 16));
    std::vector<std::unique_ptr<VoldemortServer>> servers;
    for (int i = 0; i < 4; ++i) {
      servers.push_back(std::make_unique<VoldemortServer>(i, metadata, &network));
      LIDI_MUST_OK(servers.back()->AddStore("s"));
    }
    StoreClient client("c", {"s", 1, 1, 1}, metadata, &network, &clock);
    Random rng(9);
    for (int i = 0; i < num_keys; ++i) {
      LIDI_MUST_OK(client.PutValue("k" + std::to_string(i), rng.Bytes(100)));
    }

    // Move node 0's partitions to node 3, interleaving live traffic between
    // migrations (the "requests in flight" column).
    AdminClient admin(metadata, &network);
    const std::vector<int> moving = metadata->SnapshotCluster().PartitionsOf(0);
    int64_t requests = 0, failures = 0, moved_keys = 0;
    bench::Stopwatch migration_timer;
    for (int partition : moving) {
      // Live traffic against keys everywhere, including the moving range.
      for (int i = 0; i < 200; ++i) {
        const std::string key = "k" + std::to_string(rng.Uniform(num_keys));
        ++requests;
        if (!client.Get(key).ok()) ++failures;
      }
      if (!admin.MigratePartition("s", partition, 3).ok()) ++failures;
    }
    const double migration_ms = migration_timer.ElapsedMillis();

    // Everything still readable afterwards; count what landed on node 3.
    for (int i = 0; i < num_keys; ++i) {
      const std::string key = "k" + std::to_string(i);
      ++requests;
      if (!client.Get(key).ok()) ++failures;
    }
    std::string value;
    for (int i = 0; i < num_keys; ++i) {
      if (servers[3]->GetEngine("s")->Count() > 0) break;
    }
    moved_keys = servers[3]->GetEngine("s")->Count();

    bench::Row("%10d | %12lld | %14.1f | %14lld | %12lld", num_keys,
               static_cast<long long>(moved_keys), migration_ms,
               static_cast<long long>(requests),
               static_cast<long long>(failures));
  }
  bench::Row("\nshape check: zero failed requests at every scale — the "
             "redirect window\nhides the copy; migration cost scales with "
             "moved keys.");
  return 0;
}
