// E19 — consumer-group rebalancing and over-partitioning.
//
// Paper (V.C): "at any given time, all messages from one partition are
// consumed only by a single consumer within each consumer group ...
// consuming processes only need coordination when the load has to be
// rebalanced among them, an infrequent event. For better load balancing, we
// require many more partitions in a topic than the consumers in each group."

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>

#include "bench_util.h"
#include "common/clock.h"
#include "kafka/broker.h"
#include "kafka/consumer.h"
#include "kafka/producer.h"
#include "net/network.h"
#include "zk/zookeeper.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::kafka;

int main() {
  bench::Header("E19: over-partitioning balances consumer load",
                "many more partitions than consumers -> even split (V.C)");
  bench::Row("%12s | %10s | %14s | %14s", "partitions", "consumers",
             "min/max owned", "imbalance");

  for (const auto& [partitions_per_broker, consumers] :
       std::vector<std::pair<int, int>>{{1, 3}, {2, 3}, {8, 3}, {16, 3}}) {
    ManualClock clock;
    zk::ZooKeeper zookeeper;
    net::Network network;
    std::vector<std::unique_ptr<Broker>> brokers;
    for (int b = 0; b < 2; ++b) {
      brokers.push_back(std::make_unique<Broker>(b, &zookeeper, &network,
                                                 &clock, BrokerOptions{}));
      LIDI_MUST_OK(brokers.back()->CreateTopic("t", partitions_per_broker));
    }
    std::vector<std::unique_ptr<Consumer>> group;
    for (int c = 0; c < consumers; ++c) {
      group.push_back(std::make_unique<Consumer>("c" + std::to_string(c), "g",
                                                 &zookeeper, &network));
      LIDI_MUST_OK(group.back()->Subscribe("t"));
    }
    // Settle: polls process pending rebalances.
    for (int round = 0; round < 10; ++round) {
      for (auto& c : group) LIDI_MUST_OK(c->Poll("t"));
    }
    int min_owned = 1 << 30, max_owned = 0, total = 0;
    for (auto& c : group) {
      const int owned = static_cast<int>(c->OwnedPartitions("t").size());
      min_owned = std::min(min_owned, owned);
      max_owned = std::max(max_owned, owned);
      total += owned;
    }
    bench::Row("%12d | %10d | %10d/%-3d | %10.1f%%  (all owned: %s)",
               partitions_per_broker * 2, consumers, min_owned, max_owned,
               total > 0 ? 100.0 * (max_owned - min_owned) / max_owned : 0.0,
               total == partitions_per_broker * 2 ? "yes" : "NO");
  }
  bench::Row("\nshape check: with few partitions some consumers idle; with\n"
             "over-partitioning ownership splits nearly evenly.");

  bench::Header("E19 follow-on: rebalance churn on membership change",
                "coordination happens only on rebalance, an infrequent event");
  {
    ManualClock clock;
    zk::ZooKeeper zookeeper;
    net::Network network;
    Broker broker(0, &zookeeper, &network, &clock, BrokerOptions{});
    LIDI_MUST_OK(broker.CreateTopic("t", 12));
    Producer producer("p", &zookeeper, &network);
    for (int i = 0; i < 2000; ++i) LIDI_MUST_OK(producer.Send("t", "m"));

    std::vector<std::unique_ptr<Consumer>> group;
    auto poll_all = [&]() {
      int64_t n = 0;
      for (auto& c : group) {
        auto m = c->Poll("t");
        if (m.ok()) n += static_cast<int64_t>(m.value().size());
        // Commit so a partition handed to another member resumes rather
        // than replays (Kafka is at-least-once across rebalances).
        LIDI_MUST_OK(c->CommitOffsets());
      }
      return n;
    };
    auto ownership_ok = [&]() {
      std::set<std::pair<int, int>> seen;
      int total = 0;
      for (auto& c : group) {
        for (const auto& tp : c->OwnedPartitions("t")) {
          seen.insert({tp.broker_id, tp.partition});
          ++total;
        }
      }
      return seen.size() == static_cast<size_t>(total);
    };

    int64_t consumed = 0;
    for (int step = 1; step <= 4; ++step) {
      group.push_back(std::make_unique<Consumer>("c" + std::to_string(step),
                                                 "g", &zookeeper, &network));
      LIDI_MUST_OK(group.back()->Subscribe("t"));
      for (int round = 0; round < 30; ++round) consumed += poll_all();
      int rebalances = 0;
      for (auto& c : group) rebalances += c->rebalance_count();
      bench::Row("after join of c%d: %zu consumers, exclusive ownership: %s, "
                 "total rebalances: %d",
                 step, group.size(), ownership_ok() ? "yes" : "NO", rebalances);
    }
    // Two consumers leave.
    group[0]->Close();
    group[1]->Close();
    group.erase(group.begin(), group.begin() + 2);
    for (int round = 0; round < 30; ++round) consumed += poll_all();
    bench::Row("after two departures: exclusive ownership: %s, consumed %lld "
               "of 2000 messages (>=2000 means at-least-once redelivery "
               "around handoffs)",
               ownership_ok() ? "yes" : "NO",
               static_cast<long long>(consumed));
  }
  return 0;
}
