// EXT-3 — observability overhead: what does an always-on metrics layer cost
// on the hot path?
//
// The registry is designed so instrumented code pays one relaxed atomic add
// on a thread-local shard when enabled, and one relaxed load plus a
// predictable branch when the kill switch is off. This bench measures both
// against an uninstrumented baseline, plus the histogram and span paths.

#include <thread>
#include <vector>

#include "bench_util.h"
#include "obs/metrics.h"

using namespace lidi;

namespace {

constexpr int kOps = 20'000'000;

double NsPerOp(double elapsed_micros) {
  return elapsed_micros * 1000.0 / kOps;
}

}  // namespace

int main() {
  bench::Header("EXT-3: observability overhead",
                "counter increments stay in single-digit ns; the kill switch "
                "reduces them to a load+branch");

  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("bench.counter");
  obs::LatencyHistogram* hist = registry.GetHistogram("bench.hist");

  // Baseline: the same loop over a volatile int, no instrumentation.
  volatile int64_t sink = 0;
  bench::Stopwatch base_timer;
  for (int i = 0; i < kOps; ++i) sink = sink + 1;
  const double base_ns = NsPerOp(base_timer.ElapsedMicros());

  bench::Stopwatch enabled_timer;
  for (int i = 0; i < kOps; ++i) counter->Increment();
  const double enabled_ns = NsPerOp(enabled_timer.ElapsedMicros());

  registry.set_enabled(false);
  bench::Stopwatch disabled_timer;
  for (int i = 0; i < kOps; ++i) counter->Increment();
  const double disabled_ns = NsPerOp(disabled_timer.ElapsedMicros());
  registry.set_enabled(true);

  bench::Stopwatch hist_timer;
  for (int i = 0; i < kOps; ++i) hist->Record(i & 1023);
  const double hist_ns = NsPerOp(hist_timer.ElapsedMicros());

  constexpr int kSpans = 2'000'000;
  registry.set_span_capacity(1024);
  bench::Stopwatch span_timer;
  for (int i = 0; i < kSpans; ++i) {
    obs::ScopedSpan span(&registry, "op");
  }
  const double span_ns = span_timer.ElapsedMicros() * 1000.0 / kSpans;

  bench::Row("%28s | %10s", "path", "ns/op");
  bench::Row("%28s | %10.2f", "baseline (volatile inc)", base_ns);
  bench::Row("%28s | %10.2f", "counter enabled", enabled_ns);
  bench::Row("%28s | %10.2f", "counter disabled", disabled_ns);
  bench::Row("%28s | %10.2f", "histogram record", hist_ns);
  bench::Row("%28s | %10.2f", "scoped span", span_ns);

  // Sharding claim: 8 threads on one counter should scale, not serialize.
  const int kThreads = 8;
  const int kPerThread = kOps / kThreads;
  bench::Stopwatch mt_timer;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter, kPerThread] {
      for (int i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  const double mt_ns = NsPerOp(mt_timer.ElapsedMicros());
  bench::Row("%28s | %10.2f  (wall-clock, %d threads)",
             "counter enabled, contended", mt_ns, kThreads);

  bench::JsonRow("EXT-3", {},
                 {{"baseline_ns", base_ns},
                  {"counter_enabled_ns", enabled_ns},
                  {"counter_disabled_ns", disabled_ns},
                  {"histogram_ns", hist_ns},
                  {"span_ns", span_ns},
                  {"counter_contended_ns", mt_ns}});
  bench::JsonSnapshot("EXT-3.registry", registry.Snapshot());

  bench::Row("\nshape check: enabled increments cost single-digit ns;\n"
             "disabled drops below the enabled cost (load + branch only);\n"
             "8 contending threads stay near the single-thread cost thanks\n"
             "to cache-line-aligned shards.");
  return 0;
}
