// E6 — zone-aware routing for multi-datacenter clusters.
//
// Paper (II.B): "we also plugged in a variant of consistent hashing that
// supports routing in a multiple datacenter environment ... the routing
// algorithm now jumps the consistent hash ring with an extra constraint to
// satisfy number of zones required for the request."
//
// We compare plain vs zone-aware routing on a 2-zone cluster: the fraction
// of keys whose replica set spans both zones, swept over the required zone
// count, plus write availability when an entire zone is lost.

#include <memory>
#include <set>

#include "bench_util.h"
#include "common/clock.h"
#include "net/address.h"
#include "net/network.h"
#include "voldemort/client.h"
#include "voldemort/routing.h"
#include "voldemort/server.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::voldemort;

namespace {

Cluster MakeTwoZoneCluster(int num_nodes, int partitions) {
  // Block zone assignment (first half of the nodes in zone 0, second half in
  // zone 1) — the realistic layout where a naive ring walk can keep all
  // replicas inside one datacenter.
  std::vector<Node> nodes;
  for (int i = 0; i < num_nodes; ++i) {
    nodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), i < num_nodes / 2 ? 0 : 1});
  }
  // Ring ownership grouped by zone: consecutive partitions stay zone-local.
  std::vector<int> ownership(partitions);
  for (int p = 0; p < partitions; ++p) {
    const int half = partitions / 2;
    ownership[p] = p < half ? p % (num_nodes / 2)
                            : num_nodes / 2 + p % (num_nodes / 2);
  }
  return Cluster(std::move(nodes), std::move(ownership));
}

double SpanFraction(const Cluster& cluster, const RouteStrategy& routing,
                    int keys) {
  int spanning = 0;
  for (int i = 0; i < keys; ++i) {
    std::set<int> zones;
    for (int node : routing.RouteRequest("key-" + std::to_string(i))) {
      zones.insert(cluster.GetNode(node)->zone_id);
    }
    if (zones.size() >= 2) ++spanning;
  }
  return 100.0 * spanning / keys;
}

}  // namespace

int main() {
  bench::Header("E6: zone-aware routing",
                "replicas span the required zone count (paper II.B)");
  const int kKeys = 5000;
  Cluster cluster = MakeTwoZoneCluster(6, 24);

  bench::Row("%-34s | %20s", "strategy", "% keys spanning 2 zones");
  {
    auto plain = NewConsistentRoutingStrategy(&cluster, 3);
    bench::Row("%-34s | %19.1f%%", "plain consistent hashing (N=3)",
               SpanFraction(cluster, *plain, kKeys));
  }
  for (int required : {1, 2}) {
    auto zoned = NewZoneAwareRoutingStrategy(&cluster, 3, required);
    char name[64];
    std::snprintf(name, sizeof(name), "zone-aware, required_zones=%d",
                  required);
    bench::Row("%-34s | %19.1f%%", name,
               SpanFraction(cluster, *zoned, kKeys));
  }

  bench::Header("E6 follow-on: surviving a full-zone outage",
                "multi-DC deployments keep serving when one DC is lost");
  for (bool zone_aware : {false, true}) {
    net::Network network;
    ManualClock clock;
    auto metadata = std::make_shared<ClusterMetadata>(MakeTwoZoneCluster(6, 24));
    std::vector<std::unique_ptr<VoldemortServer>> servers;
    for (int i = 0; i < 6; ++i) {
      servers.push_back(std::make_unique<VoldemortServer>(i, metadata, &network));
      LIDI_MUST_OK(servers.back()->AddStore("bench"));
    }
    StoreDefinition def;
    def.name = "bench";
    def.replication_factor = 3;
    def.required_reads = 1;
    def.required_writes = 1;
    def.zone_count_writes = zone_aware ? 2 : 0;
    ClientOptions options;
    options.failure_detector.ban_millis = 1;
    StoreClient client("c", def, metadata, &network, &clock, options);
    for (int i = 0; i < 500; ++i) {
      LIDI_MUST_OK(client.PutValue("k" + std::to_string(i), "v"));
    }
    // Zone 0 (the first half of the nodes) goes dark.
    for (int i = 0; i < 3; ++i) network.SetNodeDown(net::MakeAddress(net::Tier::kVoldemort, i));
    clock.AdvanceMillis(50);
    int readable = 0;
    for (int i = 0; i < 500; ++i) {
      clock.AdvanceMillis(1);
      if (client.Get("k" + std::to_string(i)).ok()) ++readable;
    }
    bench::Row("%-34s | %3d/500 keys readable after zone loss",
               zone_aware ? "zone-aware writes (2 zones)" : "plain writes",
               readable);
  }
  bench::Row("\nshape check: zone-aware placement keeps 100%% readable; plain "
             "placement may lose keys whose replicas landed in one zone.");
  return 0;
}
