// E21 — the auditing system: verifying no data loss along the pipeline.
//
// Paper (V.D): "Our tracking also includes an auditing system to verify that
// there is no data loss along the whole pipeline ... we instrument each
// producer such that it periodically generates a monitoring event, which
// records the number of messages published by that producer for each topic
// within a fixed time window ... consumers can then count the number of
// messages that they have received ... and validate those counts."
//
// We run the audited pipeline clean and then with injected message drops,
// showing the audit catches exactly the injected loss.

#include <memory>

#include "bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "kafka/audit.h"
#include "kafka/broker.h"
#include "kafka/consumer.h"
#include "kafka/producer.h"
#include "net/network.h"
#include "zk/zookeeper.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::kafka;

namespace {

struct AuditRun {
  int64_t produced = 0;
  int64_t consumed = 0;
  bool validated = false;
};

AuditRun Run(double drop_fraction, int producers, int messages_per_producer) {
  ManualClock clock;
  zk::ZooKeeper zookeeper;
  net::Network network;
  Broker broker(0, &zookeeper, &network, &clock, {});
  LIDI_MUST_OK(broker.CreateTopic("events", 4));
  LIDI_MUST_OK(broker.CreateTopic(kAuditTopic, 1));

  Random rng(99);
  std::vector<std::unique_ptr<Producer>> producer_objs;
  std::vector<std::unique_ptr<ProducerAudit>> audits;
  for (int p = 0; p < producers; ++p) {
    producer_objs.push_back(std::make_unique<Producer>(
        "p" + std::to_string(p), &zookeeper, &network));
    audits.push_back(std::make_unique<ProducerAudit>(
        "p" + std::to_string(p), producer_objs.back().get(), &clock, 1000));
  }
  for (int i = 0; i < messages_per_producer; ++i) {
    for (int p = 0; p < producers; ++p) {
      // A lossy pipeline stage: some events never reach the broker. The
      // audit counters still count them as produced — that is the point.
      audits[p]->RecordProduced("events");
      if (!rng.Bernoulli(drop_fraction)) {
        LIDI_MUST_OK(producer_objs[p]->Send("events", "e" + std::to_string(i)));
      }
    }
    if (i % 100 == 0) clock.AdvanceMillis(100);
  }
  clock.AdvanceMillis(2000);
  for (auto& audit : audits) audit->ForceEmit();

  AuditRun result;
  AuditValidator validator;
  Consumer consumer("c", "g", &zookeeper, &network);
  LIDI_MUST_OK(consumer.Subscribe("events"));
  for (int round = 0; round < 500; ++round) {
    auto messages = consumer.Poll("events");
    if (!messages.ok()) break;
    validator.RecordConsumed("events",
                             static_cast<int64_t>(messages.value().size()));
  }
  Consumer audit_consumer("ca", "ga", &zookeeper, &network);
  LIDI_MUST_OK(audit_consumer.Subscribe(kAuditTopic));
  for (int round = 0; round < 100; ++round) {
    auto messages = audit_consumer.Poll(kAuditTopic);
    if (messages.ok()) LIDI_MUST_OK(validator.IngestAuditMessages(messages.value()));
  }
  result.produced = validator.ProducedCount("events");
  result.consumed = validator.ConsumedCount("events");
  result.validated = validator.Validate("events");
  return result;
}

}  // namespace

int main() {
  bench::Header("E21: pipeline audit",
                "producer window counts vs consumer counts detect loss (V.D)");
  bench::Row("%12s | %10s | %10s | %10s | %s", "drop rate", "produced",
             "consumed", "lost", "audit verdict");
  for (double drop : {0.0, 0.001, 0.01, 0.05}) {
    AuditRun run = Run(drop, /*producers=*/4, /*messages_per_producer=*/2500);
    bench::Row("%11.1f%% | %10lld | %10lld | %10lld | %s", drop * 100,
               static_cast<long long>(run.produced),
               static_cast<long long>(run.consumed),
               static_cast<long long>(run.produced - run.consumed),
               run.validated ? "NO LOSS" : "LOSS DETECTED");
  }
  bench::Row("\nshape check: a clean pipeline validates exactly; any injected\n"
             "drop rate is flagged with the precise missing count.");
  return 0;
}
