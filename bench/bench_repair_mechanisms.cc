// E5 — repair-mechanism ablation: read repair and hinted handoff.
//
// Paper (II.B): "We adopted the two repair mechanisms highlighted in the
// Dynamo paper viz. read repair and hinted handoff. Read repair detects
// inconsistencies during gets while hinted handoff is triggered during
// puts." Voldemort is designed for frequent transient failures (II.A).
//
// We kill a replica during a write burst, restart it, and measure how many
// keys remain stale on the restarted node under four configurations:
// neither mechanism, each alone, and both.

#include <memory>

#include "bench_util.h"
#include "common/clock.h"
#include "net/address.h"
#include "net/network.h"
#include "voldemort/client.h"
#include "voldemort/server.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::voldemort;

namespace {

struct Outcome {
  int stale_after_restart = 0;
  int stale_after_reads = 0;
  int stale_after_slop_push = 0;
  int total_keys = 0;
};

Outcome RunScenario(bool read_repair, bool hinted_handoff) {
  net::Network network;
  ManualClock clock;
  std::vector<Node> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), 0});
  auto metadata = std::make_shared<ClusterMetadata>(Cluster::Uniform(nodes, 16));
  std::vector<std::unique_ptr<VoldemortServer>> servers;
  for (int i = 0; i < 4; ++i) {
    servers.push_back(std::make_unique<VoldemortServer>(i, metadata, &network));
    LIDI_MUST_OK(servers.back()->AddStore("bench"));
  }

  ClientOptions options;
  options.enable_read_repair = read_repair;
  options.enable_hinted_handoff = hinted_handoff;
  options.failure_detector.ban_millis = 10;
  // The writer needs only R=1/W=1 so the burst proceeds through the outage;
  // the reader uses R=3 so its gets touch (and can repair) every replica.
  StoreClient writer("w", StoreDefinition{"bench", 3, 1, 1}, metadata,
                     &network, &clock, options);
  StoreClient reader("r", StoreDefinition{"bench", 3, 3, 1}, metadata,
                     &network, &clock, options);

  // Choose keys whose replica set includes node 0 (as a non-coordinator, so
  // the writes succeed at the coordinator while node 0 misses them).
  std::vector<std::string> keys;
  for (int i = 0; keys.size() < 200; ++i) {
    const std::string key = "k" + std::to_string(i);
    const auto preference = writer.PreferenceList(key);
    if (preference[1] == 0 || preference[2] == 0) keys.push_back(key);
  }

  // Seed everything while the cluster is healthy.
  for (const auto& key : keys) LIDI_MUST_OK(writer.PutValue(key, "v1"));

  // Transient failure: node 0 dies; the write burst continues (W=1).
  network.SetNodeDown(net::MakeAddress(net::Tier::kVoldemort, 0));
  for (const auto& key : keys) {
    auto versions = writer.Get(key);
    if (versions.ok()) {
      LIDI_MUST_OK(writer.Put(key, Versioned{versions.value()[0].version, "v2"}));
    }
    clock.AdvanceMillis(1);
  }

  auto count_stale = [&]() {
    int stale = 0;
    for (const auto& key : keys) {
      std::string encoded;
      if (!servers[0]->GetEngine("bench")->Get(key, &encoded).ok()) {
        ++stale;
        continue;
      }
      auto list = DecodeVersionedList(encoded);
      if (!list.ok() || list.value().empty() ||
          list.value().back().value != "v2") {
        ++stale;
      }
    }
    return stale;
  };

  Outcome outcome;
  outcome.total_keys = static_cast<int>(keys.size());
  network.SetNodeUp(net::MakeAddress(net::Tier::kVoldemort, 0));
  clock.AdvanceMillis(100);  // lift failure-detector bans
  outcome.stale_after_restart = count_stale();

  // Read pass: read repair (if enabled) heals what the reads touch.
  for (const auto& key : keys) LIDI_MUST_OK(reader.Get(key));
  outcome.stale_after_reads = count_stale();

  // Slop push: hinted handoff (if enabled) delivers parked writes.
  for (auto& server : servers) server->PushSlops();
  outcome.stale_after_slop_push = count_stale();
  return outcome;
}

}  // namespace

int main() {
  bench::Header("E5: repair mechanisms under transient failure",
                "read repair heals on gets; hinted handoff on puts (II.B)");
  bench::Row("%-28s | %12s | %12s | %12s", "configuration", "stale@restart",
             "after reads", "after slops");
  struct Config {
    const char* name;
    bool rr, hh;
  };
  const Config configs[] = {
      {"neither", false, false},
      {"read repair only", true, false},
      {"hinted handoff only", false, true},
      {"both (production)", true, true},
  };
  for (const Config& config : configs) {
    Outcome o = RunScenario(config.rr, config.hh);
    bench::Row("%-28s | %6d/%-5d | %6d/%-5d | %6d/%-5d", config.name,
               o.stale_after_restart, o.total_keys, o.stale_after_reads,
               o.total_keys, o.stale_after_slop_push, o.total_keys);
  }
  bench::Row(
      "\nshape check: with both mechanisms every stale replica converges; "
      "with neither, staleness persists.");
  return 0;
}
