// E18 — broker statelessness about consumers: time-based retention,
// rewind/replay, checkpoint-restart.
//
// Paper (V.B): "the information about how much each consumer has consumed is
// not maintained by the broker, but by the consumer itself ... A message is
// automatically deleted if it has been retained in the broker longer than a
// certain period (e.g., 7 days) ... a consumer can deliberately rewind back
// to an old offset and re-consume data."

#include "bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "kafka/broker.h"
#include "kafka/consumer.h"
#include "kafka/producer.h"
#include "net/network.h"
#include "zk/zookeeper.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::kafka;

int main() {
  bench::Header("E18: time-based retention SLA",
                "messages deleted after the retention period (V.B)");
  bench::Row("%14s | %12s | %14s | %16s", "retention h", "produced",
             "segments kept", "oldest readable");

  for (int retention_hours : {1, 24, 168}) {
    ManualClock clock;
    zk::ZooKeeper zookeeper;
    net::Network network;
    BrokerOptions options;
    options.log.segment_bytes = 64 << 10;
    options.log.retention_ms = retention_hours * 3600LL * 1000;
    Broker broker(0, &zookeeper, &network, &clock, options);
    LIDI_MUST_OK(broker.CreateTopic("t", 1));

    Random rng(5);
    MessageSetBuilder builder;
    builder.Add(rng.Bytes(512));
    const std::string set = builder.Build();
    // One week of traffic, one burst per simulated hour.
    const int kHours = 7 * 24;
    for (int h = 0; h < kHours; ++h) {
      for (int i = 0; i < 20; ++i) LIDI_MUST_OK(broker.Produce("t", 0, set));
      clock.AdvanceMillis(3600LL * 1000);
      broker.EnforceRetention();
    }
    PartitionLog* log = broker.GetLog("t", 0);
    log->Flush();
    const double kept_hours =
        static_cast<double>(log->flushed_end_offset() - log->start_offset()) /
        (20.0 * set.size());
    bench::Row("%14d | %9d msgs | %14d | ~%5.0f hours ago", retention_hours,
               kHours * 20, log->segment_count(), kept_hours);
  }
  bench::Row("\nshape check: retained history tracks the configured SLA, not\n"
             "consumer progress — brokers hold no consumer state.");

  bench::Header("E18 follow-on: rewind/replay and checkpoint restart",
                "consumers own their offsets; rewind re-consumes (V.B)");
  {
    ManualClock clock;
    zk::ZooKeeper zookeeper;
    net::Network network;
    Broker broker(0, &zookeeper, &network, &clock, {});
    LIDI_MUST_OK(broker.CreateTopic("t", 2));
    Producer producer("p", &zookeeper, &network);
    for (int i = 0; i < 5000; ++i) {
      LIDI_MUST_OK(producer.Send("t", "msg-" + std::to_string(i)));
    }
    Consumer consumer("c", "g", &zookeeper, &network);
    LIDI_MUST_OK(consumer.Subscribe("t"));
    int64_t first_pass = 0;
    for (int round = 0; round < 3000 && first_pass < 5000; ++round) {
      first_pass += static_cast<int64_t>(consumer.Poll("t").value().size());
    }
    LIDI_MUST_OK(consumer.CommitOffsets());

    // Replay after an "application logic error" (paper's example): rewind
    // every partition to 0 and measure the re-consume rate.
    for (const auto& tp : consumer.OwnedPartitions("t")) {
      consumer.Seek("t", tp, 0);
    }
    bench::Stopwatch replay_timer;
    int64_t replayed = 0;
    for (int round = 0; round < 3000 && replayed < 5000; ++round) {
      replayed += static_cast<int64_t>(consumer.Poll("t").value().size());
    }
    bench::Row("first pass %lld msgs; replay %lld msgs at %.0f msg/s",
               static_cast<long long>(first_pass),
               static_cast<long long>(replayed),
               replayed / replay_timer.ElapsedSeconds());

    // Checkpoint restart: a restarted consumer resumes where it committed.
    Consumer restarted("c", "g2", &zookeeper, &network);
    LIDI_MUST_OK(restarted.Subscribe("t"));
    LIDI_MUST_OK(restarted.CommitOffsets());
    bench::Row("restart resume: new consumer starts from committed offsets "
               "(broker kept no state)");
  }
  return 0;
}
