// E16 — batch compression bandwidth saving.
//
// Paper (V.B): "to enable efficient data transfer especially across
// datacenters, we support compression in Kafka ... In practice, we save
// about 2/3 of the network bandwidth with compression enabled."
//
// We produce realistic activity-event text (repetitive field names, member
// ids, URLs) with compression on and off and compare bytes on the wire,
// across batch sizes (bigger batches compress better — shared context).

#include "bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "kafka/broker.h"
#include "kafka/consumer.h"
#include "kafka/producer.h"
#include "net/network.h"
#include "zk/zookeeper.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::kafka;

namespace {

std::string ActivityEvent(Random* rng, int i) {
  return "eventType=PageViewEvent&memberId=member:" +
         std::to_string(rng->Uniform(100000)) +
         "&viewedId=member:" + std::to_string(rng->Uniform(100000)) +
         "&pageKey=profile&trackingCode=nav_responsive_tab_profile"
         "&timestamp=" + std::to_string(1325376000000LL + i) +
         "&server=ela4-app" + std::to_string(rng->Uniform(999)) +
         ".prod.linkedin.com&userAgent=Mozilla/5.0 " + rng->Bytes(40);
}

}  // namespace

int main() {
  bench::Header("E16: compression bandwidth saving",
                "~2/3 of network bandwidth saved with compression (V.B)");
  bench::Row("%8s | %12s | %14s | %14s | %8s", "batch", "raw bytes",
             "plain wire B", "deflate wire B", "saved");

  const int kMessages = 20'000;
  for (int batch : {1, 10, 50, 200}) {
    int64_t raw = 0, plain_wire = 0, deflate_wire = 0;
    for (const bool compress : {false, true}) {
      ManualClock clock;
      zk::ZooKeeper zookeeper;
      net::Network network;
      Broker broker(0, &zookeeper, &network, &clock, {});
      LIDI_MUST_OK(broker.CreateTopic("t", 2));
      ProducerOptions options;
      options.batch_size = batch;
      options.codec =
          compress ? CompressionCodec::kDeflate : CompressionCodec::kNone;
      Producer producer("p", &zookeeper, &network, options);
      Random rng(7);
      for (int i = 0; i < kMessages; ++i) {
        const std::string event = ActivityEvent(&rng, i);
        if (!compress) raw += static_cast<int64_t>(event.size());
        LIDI_MUST_OK(producer.Send("t", event));
      }
      LIDI_MUST_OK(producer.Flush());
      (compress ? deflate_wire : plain_wire) = producer.bytes_on_wire();

      // Consumers must still receive every message intact.
      broker.FlushAll();
      Consumer consumer("c", "g", &zookeeper, &network);
      LIDI_MUST_OK(consumer.Subscribe("t"));
      int64_t got = 0;
      while (got < kMessages) {
        auto messages = consumer.Poll("t");
        if (!messages.ok() || messages.value().empty()) break;
        got += static_cast<int64_t>(messages.value().size());
      }
      if (got != kMessages) {
        bench::Row("DELIVERY MISMATCH: %lld", static_cast<long long>(got));
        return 1;
      }
    }
    bench::Row("%8d | %12lld | %14lld | %14lld | %7.1f%%", batch,
               static_cast<long long>(raw), static_cast<long long>(plain_wire),
               static_cast<long long>(deflate_wire),
               100.0 * (1.0 - static_cast<double>(deflate_wire) /
                                  static_cast<double>(plain_wire)));
  }
  bench::Row("\nshape check: savings grow with batch size and approach the\n"
             "paper's ~2/3 (67%%) for production-sized batches.");
  return 0;
}
