// E12 — Espresso data-plane operations: routed document reads/writes,
// secondary-index queries, multi-table transactions.
//
// Paper (IV.A/IV.B): requests are routed by hashing the resource_id to a
// partition and forwarding to the partition master; queries "first consult a
// local secondary index then return the matching documents from the local
// data store".

#include "bench_util.h"
#include "common/histogram.h"
#include "common/random.h"
#include "espresso_fixture.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::bench;

int main() {
  bench::Header("E12: Espresso document operations",
                "schema-routed writes, master reads, index queries (IV.A/B)");

  EspressoFixture fx(3, 8, 2);
  Random rng(21);
  const int kDocs = 4000;
  const int kCollections = 200;

  Histogram put_lat;
  for (int i = 0; i < kDocs; ++i) {
    const std::string uri = "/db/docs/col" +
                            std::to_string(i % kCollections) + "/d" +
                            std::to_string(i);
    auto doc = fx.MakeDoc("title " + std::to_string(i),
                          "body text " + rng.Bytes(60) +
                              (i % 7 == 0 ? " rare phrase here" : ""),
                          static_cast<int>(rng.Uniform(100)));
    bench::Stopwatch op;
    auto etag = fx.router->PutDocument(uri, *doc);
    put_lat.Record(op.ElapsedMicros());
    if (!etag.ok()) {
      bench::Row("PUT failed: %s", etag.status().ToString().c_str());
      return 1;
    }
  }
  bench::Row("PUT    us: %s", put_lat.Summary().c_str());

  Histogram get_lat;
  for (int i = 0; i < 20'000; ++i) {
    const int d = static_cast<int>(rng.Uniform(kDocs));
    const std::string uri = "/db/docs/col" + std::to_string(d % kCollections) +
                            "/d" + std::to_string(d);
    bench::Stopwatch op;
    auto doc = fx.router->GetDocument(uri);
    get_lat.Record(op.ElapsedMicros());
    if (!doc.ok()) {
      bench::Row("GET failed: %s", doc.status().ToString().c_str());
      return 1;
    }
  }
  bench::Row("GET    us: %s", get_lat.Summary().c_str());

  Histogram query_lat;
  int64_t hits = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::string uri = "/db/docs/col" +
                            std::to_string(rng.Uniform(kCollections)) +
                            "?query=body:%22rare+phrase%22";
    bench::Stopwatch op;
    auto result = fx.router->Query(uri);
    query_lat.Record(op.ElapsedMicros());
    if (result.ok()) hits += static_cast<int64_t>(result.value().size());
  }
  bench::Row("QUERY  us: %s (total hits %lld)", query_lat.Summary().c_str(),
             static_cast<long long>(hits));

  Histogram txn_lat;
  for (int i = 0; i < 2000; ++i) {
    const std::string resource = "col" + std::to_string(rng.Uniform(kCollections));
    auto a = fx.MakeDoc("txn-a", "x", 1);
    auto b = fx.MakeDoc("txn-b", "y", 2);
    std::vector<espresso::Router::TxnUpdate> updates;
    updates.push_back({"docs", resource + "/txn-a", a.get()});
    updates.push_back({"docs", resource + "/txn-b", b.get()});
    bench::Stopwatch op;
    LIDI_MUST_OK(fx.router->PostTransaction("db", resource, updates));
    txn_lat.Record(op.ElapsedMicros());
  }
  bench::Row("TXN(2) us: %s", txn_lat.Summary().c_str());

  bench::Row("\nshape check: all four operations complete in microseconds on\n"
             "the simulated substrate; queries cost index-probe + record "
             "fetches.");
  return 0;
}
