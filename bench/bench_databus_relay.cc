// E8 — Databus relay serving latency and buffering, plus the chained-relay
// ablation.
//
// Paper (III.C): the relay's in-memory circular buffer provides a "default
// serving path with very low latency (<1 ms)", "efficient buffering of tens
// of GB of data with hundreds of millions of Databus events", and "index
// structures to efficiently serve to Databus clients events from a given
// sequence number S". Relays can also chain ("connected ... to other relays
// to provide replicated availability").

#include <memory>

#include "bench_util.h"
#include "common/histogram.h"
#include "common/random.h"
#include "databus/relay.h"
#include "net/network.h"
#include "sqlstore/database.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::databus;

int main() {
  bench::Header("E8: relay serve latency from a given SCN",
                "default serving path <1 ms (paper III.C)");
  bench::Row("%9s | %10s | %14s | %s", "events", "payload B",
             "read batch", "serve latency us (100-event reads)");

  for (const auto& [num_events, payload_bytes] :
       std::vector<std::pair<int, int>>{{50'000, 100},
                                        {200'000, 100},
                                        {200'000, 1000}}) {
    net::Network network;
    sqlstore::Database db("source");
    LIDI_MUST_OK(db.CreateTable("t"));
    Random rng(3);
    // Commit in multi-row transactions to stress the envelope path.
    for (int i = 0; i < num_events; i += 5) {
      auto txn = db.Begin();
      for (int j = 0; j < 5; ++j) {
        txn.Put("t", "k" + std::to_string(i + j),
                {{"v", rng.Bytes(payload_bytes)}});
      }
      LIDI_MUST_OK(txn.Commit());
    }
    Relay relay("relay", &db, &network,
                RelayOptions{.buffer_capacity_events = 1 << 21,
                             .poll_batch_transactions = 1 << 20});
    LIDI_MUST_OK(relay.PollOnce());

    Histogram lat;
    for (int i = 0; i < 20'000; ++i) {
      const int64_t since = static_cast<int64_t>(
          rng.Uniform(static_cast<uint64_t>(num_events / 5 - 25)));
      bench::Stopwatch op;
      auto events = relay.ReadEvents(since, 100, Filter{});
      lat.Record(op.ElapsedMicros());
      if (!events.ok()) return 1;
    }
    bench::Row("%9d | %10d | %14d | %s",
               static_cast<int>(relay.buffered_events()), payload_bytes, 100,
               lat.Summary().c_str());
  }
  bench::Row("\nshape check: avg well under 1000 us and flat in buffer size\n"
             "(binary-searched SCN index).");

  bench::Header("E8 ablation: direct relay vs chained relay",
                "chained relays add replicated availability at one extra hop");
  {
    net::Network network;
    sqlstore::Database db("source");
    LIDI_MUST_OK(db.CreateTable("t"));
    for (int i = 0; i < 50'000; ++i) LIDI_MUST_OK(db.Put("t", "k" + std::to_string(i), {}));
    Relay direct("relay-direct", &db, &network);
    LIDI_MUST_OK(direct.PollOnce());
    Relay chained("relay-chained", net::Address("relay-direct"), &network);
    LIDI_MUST_OK(chained.PollOnce());

    Random rng(4);
    for (auto* relay : {&direct, &chained}) {
      Histogram lat;
      for (int i = 0; i < 20'000; ++i) {
        const int64_t since =
            static_cast<int64_t>(rng.Uniform(50'000 - 200));
        bench::Stopwatch op;
        LIDI_MUST_OK(relay->ReadEvents(since, 100, Filter{}));
        lat.Record(op.ElapsedMicros());
      }
      bench::Row("%-14s | us: %s",
                 relay == &direct ? "direct" : "chained", lat.Summary().c_str());
    }
    bench::Row("chained relay buffered %lld of %lld events (full replica)",
               static_cast<long long>(chained.buffered_events()),
               static_cast<long long>(direct.buffered_events()));
  }
  return 0;
}
