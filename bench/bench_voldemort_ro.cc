// E2 — Voldemort read-only store lookups.
//
// Paper (II.C): "the read-only cluster serves about 9K reads per second with
// an average latency of less than 1 ms"; the PYMK store achieves "average
// latency in sub-milliseconds".
//
// Reports binary-search lookup latency on bulk-built stores of increasing
// size, and compares the read-only engine against the read-write path for
// the same data (the who-wins shape: RO reads are cheaper than quorum
// reads).

#include <memory>

#include "bench_util.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/random.h"
#include "net/address.h"
#include "net/network.h"
#include "voldemort/bulk_build.h"
#include "voldemort/client.h"
#include "voldemort/server.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::voldemort;

int main() {
  bench::Header("E2: read-only store lookup latency",
                "<1 ms average; PYMK sub-millisecond (paper II.C)");

  for (int num_keys : {10'000, 100'000, 500'000}) {
    net::Network network;
    std::vector<Node> nodes;
    for (int i = 0; i < 3; ++i) nodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), 0});
    auto metadata =
        std::make_shared<ClusterMetadata>(Cluster::Uniform(nodes, 12));
    std::vector<std::unique_ptr<VoldemortServer>> servers;
    std::vector<VoldemortServer*> ptrs;
    for (int i = 0; i < 3; ++i) {
      servers.push_back(std::make_unique<VoldemortServer>(i, metadata, &network));
      LIDI_MUST_OK(servers.back()->AddReadOnlyStore("pymk"));
      LIDI_MUST_OK(servers.back()->AddStore("pymk-rw"));
      ptrs.push_back(servers.back().get());
    }

    Random rng(5);
    std::map<std::string, std::string> records;
    for (int i = 0; i < num_keys; ++i) {
      records["member:" + std::to_string(i)] = rng.Bytes(120);
    }
    BulkFileRepository repo;
    repo.Publish("pymk", 1, BulkBuild(records, metadata->SnapshotCluster(), 2));
    ReadOnlyController controller(ptrs, &repo);
    LIDI_MUST_OK(controller.Pull("pymk", 1));
    LIDI_MUST_OK(controller.SwapAll("pymk", 1));

    StoreDefinition def;
    def.name = "pymk";
    def.replication_factor = 2;
    def.required_reads = 1;
    def.required_writes = 1;
    StoreClient client("ro-client", def, metadata, &network,
                       SystemClock::Default());

    const int kLookups = 30000;
    Histogram lat;
    bench::Stopwatch total;
    for (int i = 0; i < kLookups; ++i) {
      const std::string key =
          "member:" + std::to_string(rng.Uniform(num_keys));
      bench::Stopwatch op;
      LIDI_MUST_OK(client.ReadOnlyGet(key));
      lat.Record(op.ElapsedMicros());
    }
    bench::Row("%7d keys | %7.0f reads/s | us: %s", num_keys,
               kLookups / total.ElapsedSeconds(), lat.Summary().c_str());
  }

  bench::Header("E2 comparison: read-only engine vs read-write quorum reads",
                "offloading index construction keeps live reads cheap (II.B)");
  {
    net::Network network;
    std::vector<Node> nodes;
    for (int i = 0; i < 3; ++i) nodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), 0});
    auto metadata =
        std::make_shared<ClusterMetadata>(Cluster::Uniform(nodes, 12));
    std::vector<std::unique_ptr<VoldemortServer>> servers;
    std::vector<VoldemortServer*> ptrs;
    for (int i = 0; i < 3; ++i) {
      servers.push_back(std::make_unique<VoldemortServer>(i, metadata, &network));
      LIDI_MUST_OK(servers.back()->AddReadOnlyStore("data-ro"));
      LIDI_MUST_OK(servers.back()->AddStore("data-rw"));
      ptrs.push_back(servers.back().get());
    }
    const int kKeys = 20000;
    Random rng(6);
    std::map<std::string, std::string> records;
    for (int i = 0; i < kKeys; ++i) {
      records["k" + std::to_string(i)] = rng.Bytes(120);
    }
    BulkFileRepository repo;
    repo.Publish("data-ro", 1,
                 BulkBuild(records, metadata->SnapshotCluster(), 2));
    ReadOnlyController controller(ptrs, &repo);
    LIDI_MUST_OK(controller.Pull("data-ro", 1));
    LIDI_MUST_OK(controller.SwapAll("data-ro", 1));

    StoreDefinition ro_def{"data-ro", 2, 1, 1};
    StoreDefinition rw_def{"data-rw", 3, 2, 2};
    StoreClient ro_client("c", ro_def, metadata, &network,
                          SystemClock::Default());
    StoreClient rw_client("c", rw_def, metadata, &network,
                          SystemClock::Default());
    for (const auto& [k, v] : records) LIDI_MUST_OK(rw_client.PutValue(k, v));

    Histogram ro_lat, rw_lat;
    for (int i = 0; i < 20000; ++i) {
      const std::string key = "k" + std::to_string(rng.Uniform(kKeys));
      bench::Stopwatch a;
      LIDI_MUST_OK(ro_client.ReadOnlyGet(key));
      ro_lat.Record(a.ElapsedMicros());
      bench::Stopwatch b;
      LIDI_MUST_OK(rw_client.Get(key));
      rw_lat.Record(b.ElapsedMicros());
    }
    bench::Row("read-only engine  | us: %s", ro_lat.Summary().c_str());
    bench::Row("read-write quorum | us: %s", rw_lat.Summary().c_str());
    bench::Row("\nshape check: read-only avg below read-write avg: %s",
               ro_lat.Average() < rw_lat.Average() ? "YES" : "NO");
  }

  bench::Header("E2 ablation: index formats (binary vs interpolation search)",
                "\"new index formats\" is Voldemort future work (II.C); MD5 "
                "digests\nare uniform, so interpolation search needs "
                "O(log log n) probes");
  {
    Random rng(11);
    bench::Row("%9s | %22s | %26s", "keys", "binary search ns/lookup",
               "interpolation ns/lookup");
    for (int num_keys : {10'000, 100'000, 1'000'000}) {
      std::map<std::string, std::string> records;
      for (int i = 0; i < num_keys; ++i) {
        records["member:" + std::to_string(i)] = "v";
      }
      Cluster single = Cluster::Uniform({{0, net::MakeAddress(net::Tier::kVoldemort, 0), 0}}, 1);
      auto built = BulkBuild(records, single, 1);
      const ReadOnlyFiles& files = built.files_per_node.at(0);

      const int kLookups = 200'000;
      bench::Stopwatch binary_timer;
      for (int i = 0; i < kLookups; ++i) {
        ReadOnlySearch(files,
                       "member:" + std::to_string(rng.Uniform(num_keys)))
            .ok();
      }
      const double binary_ns = binary_timer.ElapsedMicros() * 1000 / kLookups;
      bench::Stopwatch interp_timer;
      for (int i = 0; i < kLookups; ++i) {
        ReadOnlyInterpolationSearch(
            files, "member:" + std::to_string(rng.Uniform(num_keys)))
            .ok();
      }
      const double interp_ns = interp_timer.ElapsedMicros() * 1000 / kLookups;
      bench::Row("%9d | %22.0f | %20.0f (%.2fx)", num_keys, binary_ns,
                 interp_ns, binary_ns / interp_ns);
    }
    bench::Row("\nshape check: interpolation's advantage grows with index "
               "size\n(probe count log2(n) vs log2(log2(n)) on uniform "
               "digests).");
  }
  return 0;
}
