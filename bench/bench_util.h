#ifndef LIDI_BENCH_BENCH_UTIL_H_
#define LIDI_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace lidi::bench {

/// Wall-clock stopwatch for throughput/latency measurements.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
               .count() /
           1000.0;
  }
  double ElapsedMillis() const { return ElapsedMicros() / 1000.0; }
  double ElapsedSeconds() const { return ElapsedMicros() / 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Section header for a bench report.
inline void Header(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("%s\n", std::string(72, '-').c_str());
}

inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Machine-readable result capture: when the LIDI_BENCH_JSON environment
/// variable is set, appends one JSON object per call — `{"experiment": ...,
/// <labels>, <metrics>}` — to `default_path` in the current directory (or to
/// the path LIDI_BENCH_JSON names, when it is not "1"). Unset = no-op, so
/// the human-readable report stays the default. JsonRow writes to the
/// historical default, BENCH_kafka.json; transport-comparison benches pass
/// BENCH_net.json explicitly.
inline void JsonRowAt(
    const char* default_path, const char* experiment,
    std::initializer_list<std::pair<const char*, std::string>> labels,
    std::initializer_list<std::pair<const char*, double>> metrics) {
  const char* env = std::getenv("LIDI_BENCH_JSON");
  if (env == nullptr || env[0] == '\0') return;
  const char* path = std::strcmp(env, "1") == 0 ? default_path : env;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  std::fprintf(f, "{\"experiment\": \"%s\"", experiment);
  for (const auto& [key, value] : labels) {
    std::fprintf(f, ", \"%s\": \"%s\"", key, value.c_str());
  }
  for (const auto& [key, value] : metrics) {
    std::fprintf(f, ", \"%s\": %.6g", key, value);
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
}

inline void JsonRow(
    const char* experiment,
    std::initializer_list<std::pair<const char*, std::string>> labels,
    std::initializer_list<std::pair<const char*, double>> metrics) {
  JsonRowAt("BENCH_kafka.json", experiment, labels, metrics);
}

/// Dumps a registry snapshot into the same LIDI_BENCH_JSON file JsonRow
/// writes to — one object per instrument, tagged with `experiment` — so a
/// bench's registry state lands next to its summary rows. Same gate: unset
/// env var = no-op.
inline void JsonSnapshot(const char* experiment,
                         const obs::RegistrySnapshot& snapshot) {
  const char* env = std::getenv("LIDI_BENCH_JSON");
  if (env == nullptr || env[0] == '\0') return;
  const char* path =
      std::strcmp(env, "1") == 0 ? "BENCH_kafka.json" : env;
  std::FILE* f = std::fopen(path, "a");
  if (f == nullptr) return;
  const std::string json = snapshot.ToJson(experiment);
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

}  // namespace lidi::bench

#endif  // LIDI_BENCH_BENCH_UTIL_H_
