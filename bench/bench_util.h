#ifndef LIDI_BENCH_BENCH_UTIL_H_
#define LIDI_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <string>

namespace lidi::bench {

/// Wall-clock stopwatch for throughput/latency measurements.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  double ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
               .count() /
           1000.0;
  }
  double ElapsedMillis() const { return ElapsedMicros() / 1000.0; }
  double ElapsedSeconds() const { return ElapsedMicros() / 1e6; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Section header for a bench report.
inline void Header(const char* experiment, const char* claim) {
  std::printf("\n=== %s ===\n", experiment);
  std::printf("paper claim: %s\n", claim);
  std::printf("%s\n", std::string(72, '-').c_str());
}

inline void Row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

}  // namespace lidi::bench

#endif  // LIDI_BENCH_BENCH_UTIL_H_
