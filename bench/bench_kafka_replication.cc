// EXT-1 — intra-cluster replication (the paper's Kafka future work, V.D).
//
// Not an experiment from the paper's evaluation — this measures the feature
// the paper says it plans to add: per-partition leader/follower replication.
// We report (a) replication overhead on the produce path, (b) follower sync
// bandwidth, (c) failover time and data loss as a function of sync lag.

#include <memory>

#include "bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "kafka/consumer.h"
#include "kafka/message.h"
#include "kafka/producer.h"
#include "kafka/replication.h"
#include "net/address.h"
#include "net/network.h"
#include "zk/zookeeper.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::kafka;

int main() {
  bench::Header("EXT-1: intra-cluster replication (paper V.D future work)",
                "leader/follower partitions; failover without message loss");

  // (a) produce-path overhead: unreplicated vs replicated-with-sync.
  {
    ManualClock clock;
    zk::ZooKeeper zookeeper;
    net::Network network;
    std::vector<std::unique_ptr<Broker>> brokers;
    for (int i = 0; i < 3; ++i) {
      brokers.push_back(std::make_unique<Broker>(i, &zookeeper, &network,
                                                 &clock, BrokerOptions{}));
    }
    LIDI_MUST_OK(brokers[0]->CreateTopic("plain", 4));
    ReplicatedTopicManager manager(&zookeeper, &network);
    LIDI_MUST_OK(manager.CreateReplicatedTopic(
        "replicated", 4,
        {brokers[0].get(), brokers[1].get(), brokers[2].get()}));
    std::vector<std::unique_ptr<ReplicaFetcher>> fetchers;
    for (auto& broker : brokers) {
      fetchers.push_back(std::make_unique<ReplicaFetcher>(
          broker.get(), &manager, &network));
    }

    Random rng(3);
    MessageSetBuilder builder;
    for (int i = 0; i < 20; ++i) builder.Add(rng.Bytes(200));
    const std::string set = builder.Build();

    const int kBatches = 3000;
    bench::Stopwatch plain_timer;
    for (int i = 0; i < kBatches; ++i) {
      LIDI_MUST_OK(brokers[0]->Produce("plain", i % 4, set));
    }
    const double plain_s = plain_timer.ElapsedSeconds();

    bench::Stopwatch replicated_timer;
    for (int i = 0; i < kBatches; ++i) {
      LIDI_MUST_OK(manager.ProduceToLeader("bench", "replicated", i % 4, set));
      if (i % 50 == 49) {  // follower fetchers run continuously in prod
        for (auto& fetcher : fetchers) LIDI_MUST_OK(fetcher->SyncOnce("replicated", 4));
      }
    }
    for (auto& fetcher : fetchers) LIDI_MUST_OK(fetcher->SyncOnce("replicated", 4));
    const double replicated_s = replicated_timer.ElapsedSeconds();

    bench::Row("%-32s | %9.0f batches/s", "unreplicated produce",
               kBatches / plain_s);
    bench::Row("%-32s | %9.0f batches/s (%.2fx cost; includes 2 follower "
               "copies)",
               "replicated (RF=3) + sync", kBatches / replicated_s,
               replicated_s / plain_s);
  }

  // (b)+(c): failover loss as a function of follower lag.
  bench::Header("EXT-1 failover: loss vs sync lag (acks=1 semantics)",
                "fully synced followers -> zero loss; lag -> bounded loss");
  bench::Row("%24s | %10s | %12s | %10s | %10s", "follower lag (msgs)",
             "produced", "failover us", "recovered", "lost");
  for (int lag : {0, 50, 200, 1000}) {
    ManualClock clock;
    zk::ZooKeeper zookeeper;
    net::Network network;
    std::vector<std::unique_ptr<Broker>> brokers;
    for (int i = 0; i < 3; ++i) {
      brokers.push_back(std::make_unique<Broker>(i, &zookeeper, &network,
                                                 &clock, BrokerOptions{}));
    }
    ReplicatedTopicManager manager(&zookeeper, &network);
    LIDI_MUST_OK(manager.CreateReplicatedTopic(
        "t", 1, {brokers[0].get(), brokers[1].get(), brokers[2].get()}));
    std::vector<std::unique_ptr<ReplicaFetcher>> fetchers;
    for (auto& broker : brokers) {
      fetchers.push_back(std::make_unique<ReplicaFetcher>(
          broker.get(), &manager, &network));
    }

    // Produce everything; followers stop syncing `lag` messages before the
    // crash (the in-flight window followers had not fetched yet).
    const int kMessages = 1000;
    for (int i = 0; i < kMessages; ++i) {
      MessageSetBuilder builder;
      builder.Add("m" + std::to_string(i));
      LIDI_MUST_OK(manager.ProduceToLeader("bench", "t", 0, builder.Build()));
      if (i == kMessages - lag - 1) {
        for (auto& fetcher : fetchers) LIDI_MUST_OK(fetcher->SyncOnce("t", 1));
      }
    }

    const int leader = manager.LeaderOf("t", 0).value();
    brokers[leader]->Shutdown();
    network.SetNodeDown(net::MakeAddress(net::Tier::kKafkaBroker, leader));
    bench::Stopwatch failover_timer;
    LIDI_MUST_OK(manager.FailoverDeadLeaders("t"));
    const double failover_us = failover_timer.ElapsedMicros();

    auto data = manager.FetchFromLeader("bench", "t", 0, 0, 16 << 20);
    int64_t recovered = 0;
    if (data.ok()) {
      MessageSetIterator it(data.value(), 0);
      Message m;
      while (it.Next(&m)) ++recovered;
    }
    bench::Row("%24d | %10d | %12.0f | %10lld | %10lld", lag, kMessages,
               failover_us, static_cast<long long>(recovered),
               static_cast<long long>(kMessages - recovered));
  }
  bench::Row("\nshape check: loss equals exactly the follower lag at crash\n"
             "time (acks=1); continuously synced followers lose nothing —\n"
             "why the paper wanted this feature.");
  return 0;
}
