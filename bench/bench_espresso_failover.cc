// E13 — Espresso failover: timeline-consistent replication, slave
// promotion, zero acknowledged-write loss.
//
// Paper (IV.B): "When a master partition fails, a slave partition is
// selected to take over. The slave partition first consumes all outstanding
// changes to the partition from the Databus relay, and then becomes a
// master partition." Durability: "Each change is written to two places
// before being committed — the local MySQL binlog and the Databus relay."

#include <set>

#include "bench_util.h"
#include "common/histogram.h"
#include "common/random.h"
#include "espresso_fixture.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::bench;

int main() {
  bench::Header("E13: master failover with zero acknowledged-write loss",
                "slave drains the relay backlog, then masters (IV.B)");
  bench::Row("%6s | %10s | %12s | %12s | %10s | %s", "run", "acked docs",
             "failover us", "transitions", "lost docs", "writes after");

  for (int run = 0; run < 5; ++run) {
    EspressoFixture fx(3, 8, 2);
    Random rng(run + 1);

    // Acknowledge a batch of writes. Slaves are NOT caught up on purpose:
    // the relay alone carries the outstanding changes.
    std::vector<std::string> acked;
    for (int i = 0; i < 500; ++i) {
      const std::string uri =
          "/db/docs/c" + std::to_string(rng.Uniform(100)) + "/d" +
          std::to_string(i);
      auto doc = fx.MakeDoc("t", "b", i);
      if (fx.router->PutDocument(uri, *doc).ok()) acked.push_back(uri);
    }

    // Kill one node that masters at least one partition.
    const std::string victim = "esn-0";
    fx.KillNode(victim);
    bench::Stopwatch failover;
    const int transitions = fx.controller->RebalanceToConvergence();
    const double failover_us = failover.ElapsedMicros();

    int lost = 0;
    for (const std::string& uri : acked) {
      if (!fx.router->GetDocument(uri).ok()) ++lost;
    }
    // Writes must keep working after the failover.
    auto doc = fx.MakeDoc("after", "failover", 0);
    const bool writes_ok =
        fx.router->PutDocument("/db/docs/after/failover", *doc).ok();

    bench::Row("%6d | %10zu | %12.0f | %12d | %10d | %s", run, acked.size(),
               failover_us, transitions, lost, writes_ok ? "OK" : "FAIL");
  }
  bench::Row("\nshape check: lost docs is always 0 — acknowledged writes\n"
             "survive master death because the relay holds them (semi-sync).");

  bench::Header("E13 follow-on: timeline consistency on slaves",
                "changes apply on slaves in master commit order (IV.B)");
  {
    EspressoFixture fx(3, 4, 2);
    // Interleaved writes to one hot document.
    for (int i = 0; i < 200; ++i) {
      auto doc = fx.MakeDoc("v" + std::to_string(i), "b", i);
      LIDI_MUST_OK(fx.router->PutDocument("/db/docs/hot/doc", *doc));
    }
    for (auto& node : fx.nodes) node->CatchUpAll();
    // Every replica of the partition must hold the LAST version.
    const auto db_schema = fx.registry.GetDatabase("db").value();
    const int partition = espresso::PartitionOf(db_schema, "hot");
    int replicas = 0, correct = 0;
    for (auto& node : fx.nodes) {
      auto record = node->LocalGet("db", "docs", "hot/doc");
      if (!record.ok()) continue;
      ++replicas;
      auto schema = fx.registry.GetDocumentSchema("db", "docs", 1).value();
      Slice payload(record.value().payload);
      auto datum = avro::Decode(*schema, &payload);
      if (datum.ok() &&
          datum.value()->GetField("rank")->int_value() == 199) {
        ++correct;
      }
    }
    bench::Row("replicas of partition %d holding the final version: %d/%d",
               partition, correct, replicas);
  }
  return 0;
}
