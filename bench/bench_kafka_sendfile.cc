// E17 — the sendfile zero-copy transfer ablation.
//
// Paper (V.B): the typical path from file to socket takes "4 data copying
// and 2 system calls"; the sendfile API "directly transfers bytes from a
// file channel to a socket channel", avoiding 2 copies and 1 syscall. Kafka
// exploits sendfile to deliver log segments to consumers.
//
// The four-copy mode performs its copies for real (see TransferMode); the
// sendfile mode serves a pinned view of the refcounted segment buffer, so
// the CPU touches no payload byte. We report fetch bandwidth, real and
// avoided per-byte copy traffic, and syscall counts.

#include "bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "kafka/broker.h"
#include <vector>

#include "kafka/message.h"
#include "net/network.h"
#include "zk/zookeeper.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::kafka;

int main() {
  bench::Header("E17: four-copy path vs sendfile path",
                "sendfile avoids 2 of 4 copies and 1 of 2 syscalls (V.B)");
  bench::Row("%10s | %10s | %12s | %12s | %13s | %10s", "mode", "fetch KB",
             "MB/s served", "copies/byte", "avoided/byte", "syscalls");

  for (int fetch_kb : {32, 256, 1024}) {
    double rates[2];
    for (const TransferMode mode :
         {TransferMode::kFourCopy, TransferMode::kSendfile}) {
      ManualClock clock;
      zk::ZooKeeper zookeeper;
      net::Network network;
      BrokerOptions options;
      options.transfer_mode = mode;
      options.log.segment_bytes = 16 << 20;
      options.log.flush_interval_messages = 1 << 20;
      Broker broker(0, &zookeeper, &network, &clock, options);
      LIDI_MUST_OK(broker.CreateTopic("t", 1));

      Random rng(3);
      MessageSetBuilder builder;
      for (int i = 0; i < 64; ++i) builder.Add(rng.Bytes(1024));
      const std::string set = builder.Build();
      for (int i = 0; i < 256; ++i) LIDI_MUST_OK(broker.Produce("t", 0, set));
      broker.GetLog("t", 0)->Flush();
      const int64_t log_end = broker.GetLog("t", 0)->flushed_end_offset();

      // Precompute entry-aligned fetch offsets (untimed) so the timed loop
      // below measures the transfer path only, as the paper's argument is
      // about byte movement, not message parsing.
      std::vector<int64_t> offsets;
      for (int64_t offset = 0; offset < log_end;) {
        offsets.push_back(offset);
        auto data = broker.Fetch("t", 0, offset, fetch_kb * 1024);
        if (!data.ok() || data.value().empty()) break;
        MessageSetIterator it(data.value(), offset);
        Message m;
        while (it.Next(&m)) {
        }
        offset = it.next_fetch_offset();
      }

      bench::Stopwatch timer;
      int64_t served = 0;
      const int kFetches = 6000;
      for (int i = 0; i < kFetches; ++i) {
        // The pinned fetch path: in sendfile mode the result is a view into
        // the log's segment buffer and no payload byte is copied.
        auto data = broker.FetchPinned("t", 0, offsets[i % offsets.size()],
                                       fetch_kb * 1024);
        if (!data.ok()) return 1;
        served += static_cast<int64_t>(data.value().size());
      }
      const double mbps = served / timer.ElapsedSeconds() / (1 << 20);
      rates[mode == TransferMode::kSendfile] = mbps;
      const TransferStats stats = broker.transfer_stats();
      const double copies_per_byte =
          static_cast<double>(stats.bytes_copied) / served;
      const double avoided_per_byte =
          static_cast<double>(stats.bytes_avoided) / served;
      const char* mode_name =
          mode == TransferMode::kSendfile ? "sendfile" : "four-copy";
      bench::Row("%10s | %10d | %12.0f | %12.2f | %13.2f | %10lld", mode_name,
                 fetch_kb, mbps, copies_per_byte, avoided_per_byte,
                 static_cast<long long>(stats.syscalls));
      bench::JsonRow("E17", {{"mode", mode_name}},
                     {{"fetch_kb", fetch_kb},
                      {"mbps_served", mbps},
                      {"copies_per_byte", copies_per_byte},
                      {"avoided_per_byte", avoided_per_byte},
                      {"syscalls", static_cast<double>(stats.syscalls)}});
      // TransferStats is a view over the broker's registry instruments; the
      // two accountings must agree exactly.
      const obs::RegistrySnapshot snap = network.metrics()->Snapshot();
      const obs::Labels broker_labels{{"broker", "0"}};
      if (snap.Value("kafka.fetch.bytes_copied", broker_labels) !=
              stats.bytes_copied ||
          snap.Value("kafka.fetch.bytes_avoided", broker_labels) !=
              stats.bytes_avoided ||
          snap.Value("kafka.fetch.syscalls", broker_labels) !=
              stats.syscalls) {
        bench::Row("FAIL: registry snapshot disagrees with TransferStats");
        return 1;
      }
      bench::JsonSnapshot("E17.registry", snap);
    }
    bench::Row("%10s | %10d | sendfile speedup: %.2fx", "", fetch_kb,
               rates[1] / rates[0]);
    bench::JsonRow("E17", {{"mode", "speedup"}},
                   {{"fetch_kb", fetch_kb}, {"speedup_x", rates[1] / rates[0]}});
  }
  bench::Row("\nshape check: sendfile wins at every fetch size. The broker\n"
             "hands out pinned views of its refcounted segment buffers, so\n"
             "the zero-copy path performs ~0 copies/byte (only boundary\n"
             "gathers) while the four-copy path pays all 4.");
  return 0;
}
