// E10 — consolidated deltas: the bootstrap server's "fast playback".
//
// Paper (III.C): "Instead of replaying all changes since T, the bootstrap
// server will return what we refer to as consolidated delta: only the last
// of multiple updates to the same row/key are returned. This has the effect
// of 'fast playback' of time and allows the client to return faster to
// consumption from the relay."
//
// We generate update-heavy histories (hot keys rewritten many times) and
// compare the events a client must process via full replay vs consolidated
// delta, and the wall time to drain each.

#include "bench_util.h"
#include "common/random.h"
#include "databus/bootstrap.h"
#include "databus/relay.h"
#include "net/network.h"
#include "sqlstore/database.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::databus;

int main() {
  bench::Header("E10: consolidated delta vs full replay",
                "only the last update per key is returned -> fast playback");
  bench::Row("%8s | %6s | %12s | %12s | %9s | %22s", "updates", "keys",
             "full replay", "consolidated", "playback", "serve time ms");

  for (const auto& [updates, keys] :
       std::vector<std::pair<int, int>>{{20'000, 200},
                                        {100'000, 200},
                                        {100'000, 10'000}}) {
    net::Network network;
    sqlstore::Database db("source");
    LIDI_MUST_OK(db.CreateTable("t"));
    Relay relay("relay", &db, &network,
                RelayOptions{.buffer_capacity_events = 1 << 22,
                             .poll_batch_transactions = 1 << 20});
    BootstrapServer bootstrap("bootstrap", "relay", &network);

    Random rng(9);
    for (int i = 0; i < updates; ++i) {
      LIDI_MUST_OK(db.Put("t", "k" + std::to_string(rng.Uniform(keys)),
             {{"v", std::to_string(i)}}));
    }
    LIDI_MUST_OK(relay.PollOnce());
    LIDI_MUST_OK(bootstrap.PollRelayOnce());
    bootstrap.ApplyLogOnce();

    // Full replay: everything since SCN 0 from the relay.
    bench::Stopwatch replay_timer;
    auto replay = relay.ReadEvents(0, updates + 1, Filter{});
    const double replay_ms = replay_timer.ElapsedMillis();

    // Consolidated delta since SCN 0 from the bootstrap server.
    bench::Stopwatch delta_timer;
    auto delta = bootstrap.ConsolidatedDelta(0, Filter{});
    const double delta_ms = delta_timer.ElapsedMillis();

    const double playback = static_cast<double>(replay.value().size()) /
                            static_cast<double>(delta.value().size());
    bench::Row("%8d | %6d | %12zu | %12zu | %8.1fx | replay %6.1f delta %6.1f",
               updates, keys, replay.value().size(), delta.value().size(),
               playback, replay_ms, delta_ms);
  }
  bench::Row(
      "\nshape check: consolidated event count == live keys; the playback\n"
      "factor grows with update-to-key skew (the hotter the keys, the faster\n"
      "the catch-up).");
  return 0;
}
