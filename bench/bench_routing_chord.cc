// E3 — the DHT design ablation: full-topology O(1) routing vs Chord.
//
// Paper (II.A): "This lets us store the complete topology metadata on every
// node instead of partial 'finger tables' as in Chord, thereby decreasing
// lookups from O(log N) to O(1)."
//
// For rings of 8..1024 nodes we measure Voldemort's lookup hop count (always
// 1 routing step — the client resolves the owner locally) and routing time,
// against the Chord baseline's greedy finger-table hop counts.

#include <cmath>

#include <benchmark/benchmark.h>

#include "net/address.h"
#include "bench_util.h"
#include "common/histogram.h"
#include "voldemort/cluster.h"
#include "voldemort/routing.h"
#include "voldemort/server.h"

using namespace lidi;
using namespace lidi::voldemort;

int main() {
  bench::Header("E3: O(1) full-topology routing vs Chord O(log N)",
                "Voldemort lookups O(1); Chord O(log N) (paper II.A)");
  bench::Row("%6s | %14s | %18s | %12s | %10s", "nodes", "voldemort hops",
             "voldemort ns/route", "chord hops", "log2(N)");

  for (int num_nodes : {8, 16, 64, 256, 1024}) {
    std::vector<Node> nodes;
    for (int i = 0; i < num_nodes; ++i) {
      nodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), 0});
    }
    Cluster cluster = Cluster::Uniform(std::move(nodes), num_nodes * 4);
    auto routing = NewConsistentRoutingStrategy(&cluster, 3);
    ChordBaseline chord(num_nodes);

    const int kLookups = 2000;
    bench::Stopwatch timer;
    int sink = 0;
    for (int i = 0; i < kLookups; ++i) {
      sink += routing->RouteRequest("key-" + std::to_string(i))[0];
    }
    benchmark::DoNotOptimize(sink);
    const double voldemort_ns = timer.ElapsedMicros() * 1000.0 / kLookups;

    Histogram chord_hops;
    for (int i = 0; i < kLookups; ++i) {
      chord_hops.Record(
          chord.LookupHops("key-" + std::to_string(i), i % num_nodes));
    }
    bench::Row("%6d | %14d | %18.0f | %12.2f | %10.1f", num_nodes, 1,
               voldemort_ns, chord_hops.Average(),
               std::log2(static_cast<double>(num_nodes)));
  }
  bench::Row(
      "\nshape check: Voldemort hop count is constant while Chord's average\n"
      "hops grow ~log2(N) — the paper's motivation for full topology "
      "metadata.");
  return 0;
}
