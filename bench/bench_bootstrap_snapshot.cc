// E11 — bootstrap consistency: consistent snapshot at U, then seamless
// switchover to the relay.
//
// Paper (III.C): a client with no state receives "a recent consistent
// snapshot of the database and a sequence number U that is the sequence
// number of the last transaction applied in the snapshot. The client can
// then use the number U to continue consumption from the relay." The client
// library provides "automatic switchover between the Relays and Bootstrap
// servers when necessary".
//
// We bootstrap fresh consumers while live writes keep flowing and verify the
// invariant a correct pipeline must give: each consumer's final state equals
// the source database's state — no gaps, no stale rows.

#include <map>
#include <memory>

#include "bench_util.h"
#include "common/random.h"
#include "databus/bootstrap.h"
#include "databus/client.h"
#include "databus/relay.h"
#include "net/network.h"
#include "sqlstore/database.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::databus;

namespace {

/// Applies events to a local map — a read replica's state.
class ReplicaConsumer : public Consumer {
 public:
  Status OnEvent(const Event& event) override {
    if (event.op == Event::Op::kDelete) {
      state.erase(event.key);
    } else {
      auto row = sqlstore::DecodeRow(event.payload);
      if (!row.ok()) return row.status();
      state[event.key] = row.value().at("v");
    }
    return Status::OK();
  }
  std::map<std::string, std::string> state;
};

}  // namespace

int main() {
  bench::Header("E11: consistent snapshot + relay switchover",
                "snapshot at U, resume from relay at U; no gaps or dupes");

  net::Network network;
  sqlstore::Database db("source");
  LIDI_MUST_OK(db.CreateTable("t"));
  // Small relay buffer: history quickly falls out, forcing bootstraps.
  Relay relay("relay", &db, &network,
              RelayOptions{.buffer_capacity_events = 512});
  BootstrapServer bootstrap("bootstrap", "relay", &network);

  Random rng(13);
  auto write_burst = [&](int n) {
    for (int i = 0; i < n; ++i) {
      const std::string key = "k" + std::to_string(rng.Uniform(800));
      if (rng.Bernoulli(0.1)) {
        LIDI_MUST_OK(db.Delete("t", key));
      } else {
        LIDI_MUST_OK(db.Put("t", key, {{"v", std::to_string(rng.Next())}}));
      }
      if (i % 50 == 0) {
        LIDI_MUST_OK(relay.PollOnce());
        LIDI_MUST_OK(bootstrap.PollRelayOnce());
      }
    }
    LIDI_MUST_OK(relay.PollOnce());
    LIDI_MUST_OK(bootstrap.PollRelayOnce());
    bootstrap.ApplyLogOnce();
  };

  write_burst(5000);

  bench::Row("%10s | %12s | %12s | %10s | %s", "consumer", "snapshot rows",
             "live events", "bootstraps", "state == source?");
  for (int c = 0; c < 4; ++c) {
    ReplicaConsumer replica;
    DatabusClient client("fresh-" + std::to_string(c), "relay", "bootstrap",
                         &network, &replica);
    // Bootstrap while writes continue (interleaved).
    auto first = client.PollOnce();  // snapshot phase
    const size_t snapshot_rows = replica.state.size();
    write_burst(1500);  // live traffic during/after the snapshot
    int64_t live_events = 0;
    for (int round = 0; round < 100; ++round) {
      auto n = client.PollOnce();
      if (n.ok()) live_events += n.value();
    }

    // Compare against the source of truth.
    std::map<std::string, std::string> source_state;
    LIDI_MUST_OK(db.Scan("t", [&source_state](const std::string& pk, const sqlstore::Row& row) {
      source_state[pk] = row.at("v");
      return true;
    }));
    bench::Row("%10s | %12zu | %12lld | %10lld | %s",
               ("fresh-" + std::to_string(c)).c_str(), snapshot_rows,
               static_cast<long long>(live_events),
               static_cast<long long>(client.bootstrap_switchovers()),
               replica.state == source_state ? "YES" : "NO  <-- DIVERGED");
    if (!first.ok()) bench::Row("  first poll error: %s",
                                first.status().ToString().c_str());
  }
  bench::Row(
      "\nshape check: every fresh consumer converges to the exact source\n"
      "state despite bootstrapping mid-stream with an evicting relay.");
  return 0;
}
