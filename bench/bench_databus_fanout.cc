// E9 — consumer fan-out isolation.
//
// Paper (III.B/III.C): the pipeline must "isolate the source database from
// the number of subscribers so that increasing the number of the latter
// should not impact the performance of the former", and relays support
// "hundreds of consumers per relay with no additional impact on the source
// database".
//
// We sweep the consumer count and report the load observed at the source
// database (binlog read calls) vs at the relay: the source line must stay
// flat while relay traffic scales with consumers.

#include <memory>

#include "bench_util.h"
#include "databus/client.h"
#include "databus/relay.h"
#include "net/network.h"
#include "sqlstore/database.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::databus;

namespace {

class NullConsumer : public Consumer {
 public:
  Status OnEvent(const Event&) override { return Status::OK(); }
};

}  // namespace

int main() {
  bench::Header("E9: source isolation from consumer fan-out",
                "hundreds of consumers, no additional source impact (III.C)");
  bench::Row("%10s | %18s | %16s | %12s", "consumers", "source binlog reads",
             "relay rpc calls", "events/cons.");

  for (int consumers : {1, 4, 16, 64, 256}) {
    net::Network network;
    sqlstore::Database db("source");
    LIDI_MUST_OK(db.CreateTable("t"));
    for (int i = 0; i < 2000; ++i) LIDI_MUST_OK(db.Put("t", "k" + std::to_string(i), {}));
    Relay relay("relay", &db, &network);
    while (relay.PollOnce().value() > 0) {
    }

    const int64_t source_reads_before = db.binlog().ReadCalls();
    network.ResetStats();

    std::vector<std::unique_ptr<NullConsumer>> sinks;
    std::vector<std::unique_ptr<DatabusClient>> clients;
    int64_t delivered = 0;
    for (int i = 0; i < consumers; ++i) {
      sinks.push_back(std::make_unique<NullConsumer>());
      clients.push_back(std::make_unique<DatabusClient>(
          "c" + std::to_string(i), "relay", "", &network, sinks.back().get()));
      auto n = clients.back()->DrainToHead();
      delivered += n.ok() ? n.value() : 0;
    }
    bench::Row("%10d | %18lld | %16lld | %12lld", consumers,
               static_cast<long long>(db.binlog().ReadCalls() -
                                      source_reads_before),
               static_cast<long long>(network.GetStats("relay").calls_received),
               static_cast<long long>(delivered / consumers));
  }
  bench::Row("\nshape check: the source column is 0 regardless of consumer\n"
             "count — the relay absorbs all subscriber traffic.");
  return 0;
}
