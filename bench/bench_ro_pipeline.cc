// E7 — the read-only data cycle: build, throttled pull, atomic swap,
// instantaneous rollback.
//
// Paper (II.B, Figure II.3): build phase partitions and MD5-sorts index +
// data files per destination node; pull fetches them into new versioned
// directories (throttled; data files before index files); swap atomically
// points all nodes at the new version, and storing multiple versions allows
// "instantaneous rollbacks in case of data problems".

#include <memory>

#include "bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "net/address.h"
#include "net/network.h"
#include "voldemort/bulk_build.h"
#include "voldemort/client.h"
#include "voldemort/server.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::voldemort;

int main() {
  bench::Header("E7: build -> pull -> swap pipeline",
                "atomic swap, throttled pull, instant rollback (Fig II.3)");

  net::Network network;
  std::vector<Node> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), 0});
  auto metadata = std::make_shared<ClusterMetadata>(Cluster::Uniform(nodes, 12));
  std::vector<std::unique_ptr<VoldemortServer>> servers;
  std::vector<VoldemortServer*> ptrs;
  for (int i = 0; i < 3; ++i) {
    servers.push_back(std::make_unique<VoldemortServer>(i, metadata, &network));
    LIDI_MUST_OK(servers.back()->AddReadOnlyStore("pymk"));
    ptrs.push_back(servers.back().get());
  }
  BulkFileRepository repo;
  ReadOnlyController controller(ptrs, &repo);

  Random rng(1);
  bench::Row("%8s | %10s | %10s | %10s | %10s", "records", "build ms",
             "pull ms", "swap us", "rollback us");
  for (int records : {10'000, 50'000, 200'000}) {
    std::map<std::string, std::string> data;
    for (int i = 0; i < records; ++i) {
      data["member:" + std::to_string(i)] = rng.Bytes(100);
    }
    static int64_t version = 0;
    const int64_t v1 = ++version;
    const int64_t v2 = ++version;

    bench::Stopwatch build;
    repo.Publish("pymk", v1, BulkBuild(data, metadata->SnapshotCluster(), 2));
    repo.Publish("pymk", v2, BulkBuild(data, metadata->SnapshotCluster(), 2));
    const double build_ms = build.ElapsedMillis() / 2;

    PullOptions pull_options;
    pull_options.throttle_chunk_bytes = 256 << 10;
    bench::Stopwatch pull;
    LIDI_MUST_OK(controller.Pull("pymk", v1, pull_options));
    LIDI_MUST_OK(controller.Pull("pymk", v2, pull_options));
    const double pull_ms = pull.ElapsedMillis() / 2;

    LIDI_MUST_OK(controller.SwapAll("pymk", v1));
    bench::Stopwatch swap;
    LIDI_MUST_OK(controller.SwapAll("pymk", v2));  // the measured swap: v1 -> v2
    const double swap_us = swap.ElapsedMicros();

    bench::Stopwatch rollback;
    LIDI_MUST_OK(controller.RollbackAll("pymk"));
    const double rollback_us = rollback.ElapsedMicros();

    bench::Row("%8d | %10.1f | %10.1f | %10.1f | %10.1f", records, build_ms,
               pull_ms, swap_us, rollback_us);
  }
  bench::Row(
      "\nshape check: swap and rollback cost is independent of data size\n"
      "(pointer flips), while build/pull scale with the dataset — exactly\n"
      "why the paper moves index construction offline.");

  bench::Header("E7 follow-on: serving continues across a swap",
                "reads before/after the atomic swap never fail");
  {
    std::map<std::string, std::string> v1_data, v2_data;
    for (int i = 0; i < 5000; ++i) {
      v1_data["k" + std::to_string(i)] = "v1";
      v2_data["k" + std::to_string(i)] = "v2";
    }
    static int64_t version = 100;
    const int64_t a = ++version, b = ++version;
    repo.Publish("pymk", a, BulkBuild(v1_data, metadata->SnapshotCluster(), 2));
    repo.Publish("pymk", b, BulkBuild(v2_data, metadata->SnapshotCluster(), 2));
    LIDI_MUST_OK(controller.Pull("pymk", a));
    LIDI_MUST_OK(controller.Pull("pymk", b));
    LIDI_MUST_OK(controller.SwapAll("pymk", a));

    StoreDefinition def{"pymk", 2, 1, 1};
    StoreClient client("c", def, metadata, &network, SystemClock::Default());
    int failures = 0;
    for (int i = 0; i < 2000; ++i) {
      if (i == 1000) LIDI_MUST_OK(controller.SwapAll("pymk", b));
      if (!client.ReadOnlyGet("k" + std::to_string(i % 5000)).ok()) ++failures;
    }
    bench::Row("reads across swap: %d failures out of 2000", failures);
  }
  return 0;
}
