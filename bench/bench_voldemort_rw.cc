// E1 — Voldemort read-write cluster under the production mix.
//
// Paper (II.C): "Our largest read-write cluster has about 60% reads and 40%
// writes. This cluster serves around 10K queries per second at peak with
// average latency of 3 ms."
//
// We drive a 4-node N=3/R=2/W=2 cluster with a Zipfian-keyed 60/40 mix and
// report throughput and the latency distribution, plus an (N, R, W) sweep
// showing the quorum-size cost the store configuration trades against.

#include <memory>

#include "bench_util.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/random.h"
#include "net/address.h"
#include "net/network.h"
#include "voldemort/client.h"
#include "voldemort/server.h"
#include "workload/key_mix.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::voldemort;

namespace {

struct ClusterFixture {
  ClusterFixture(int num_nodes, int partitions) {
    std::vector<Node> nodes;
    for (int i = 0; i < num_nodes; ++i) {
      nodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), 0});
    }
    metadata = std::make_shared<ClusterMetadata>(
        Cluster::Uniform(nodes, partitions));
    for (int i = 0; i < num_nodes; ++i) {
      servers.push_back(
          std::make_unique<VoldemortServer>(i, metadata, &network));
      LIDI_MUST_OK(servers.back()->AddStore("bench"));
    }
  }

  net::Network network;
  std::shared_ptr<ClusterMetadata> metadata;
  std::vector<std::unique_ptr<VoldemortServer>> servers;
};

void RunMix(ClusterFixture& fx, int n, int r, int w, int num_keys, int ops,
            double read_fraction) {
  StoreDefinition def;
  def.name = "bench";
  def.replication_factor = n;
  def.required_reads = r;
  def.required_writes = w;
  StoreClient client("bench-client", def, fx.metadata, &fx.network,
                     SystemClock::Default());

  Random rng(11);
  workload::KeyMixOptions mix_options;
  mix_options.num_keys = static_cast<uint64_t>(num_keys);
  mix_options.theta = 0.9;
  mix_options.seed = 17;
  workload::KeyMix mix(mix_options);
  // Preload.
  for (int i = 0; i < num_keys; ++i) {
    LIDI_MUST_OK(client.PutValue(mix.KeyAt(static_cast<uint64_t>(i)), rng.Bytes(256)));
  }

  Histogram read_lat, write_lat;
  bench::Stopwatch total;
  for (int i = 0; i < ops; ++i) {
    const std::string key = mix.NextKey();
    bench::Stopwatch op;
    if (rng.NextDouble() < read_fraction) {
      LIDI_MUST_OK(client.Get(key));
      read_lat.Record(op.ElapsedMicros());
    } else {
      auto versions = client.Get(key);
      if (versions.ok()) {
        LIDI_MUST_OK(client.Put(key, Versioned{versions.value()[0].version,
                                  rng.Bytes(256)}));
      }
      write_lat.Record(op.ElapsedMicros());
    }
  }
  const double seconds = total.ElapsedSeconds();
  bench::Row("N=%d R=%d W=%d | %7.0f ops/s | read us: %s", n, r, w,
             ops / seconds, read_lat.Summary().c_str());
  bench::Row("                |              | write us: %s",
             write_lat.Summary().c_str());
}

}  // namespace

int main() {
  bench::Header("E1: Voldemort read-write cluster, 60/40 mix",
                "~10K qps at peak, ~3 ms average latency (paper II.C)");
  {
    ClusterFixture fx(4, 16);
    RunMix(fx, 3, 2, 2, 5000, 20000, 0.6);
  }

  bench::Header("E1 sweep: quorum configuration (N, R, W)",
                "per-store configs trade latency vs durability (paper II.B)");
  const int configs[][3] = {{1, 1, 1}, {2, 1, 1}, {3, 1, 1},
                            {3, 2, 2}, {3, 3, 3}};
  for (const auto& [n, r, w] : configs) {
    ClusterFixture fx(4, 16);
    RunMix(fx, n, r, w, 2000, 8000, 0.6);
  }
  bench::Row("\nshape check: latency grows with R+W; weakest quorum is fastest.");
  return 0;
}
