// E15 — Kafka producer/consumer throughput and the batching effect, plus
// the broker-side-index ablation.
//
// Paper (V.B): "the producer can submit a set of messages in a single send
// request" and "each pull request from a consumer also retrieves multiple
// messages up to a certain size, typically hundreds of kilobytes". Also:
// offset addressing "avoids the overhead of maintaining auxiliary index
// structures that map the message ids to the actual message locations".

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "io/file.h"
#include "kafka/broker.h"
#include "kafka/consumer.h"
#include "kafka/producer.h"
#include "net/network.h"
#include "net/tcp_transport.h"
#include "net/transport.h"
#include "zk/zookeeper.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::kafka;

namespace {

// --transport=sim|tcp (or LIDI_TRANSPORT=sim|tcp): the same producer/
// broker/consumer code runs on the simulated in-process transport or over
// real epoll/TCP localhost sockets — the tentpole claim of the pluggable
// transport runtime. Default: sim (deterministic, no kernel involvement).
std::string TransportMode(int argc, char** argv) {
  std::string mode = "sim";
  if (const char* env = std::getenv("LIDI_TRANSPORT")) mode = env;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--transport=", 12) == 0) mode = argv[i] + 12;
  }
  if (mode != "sim" && mode != "tcp") {
    std::fprintf(stderr, "unknown --transport=%s (want sim|tcp)\n",
                 mode.c_str());
    std::exit(2);
  }
  return mode;
}

std::unique_ptr<net::Transport> MakeTransport(const std::string& mode) {
  if (mode == "tcp") {
    net::TcpTransportOptions options;
    options.worker_threads = 4;
    return std::make_unique<net::TcpTransport>(options);
  }
  return std::make_unique<net::Network>();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string transport_mode = TransportMode(argc, argv);
  // Sync RPCs over real sockets cost microseconds, not nanoseconds; scale
  // the message count so the tcp rows finish in comparable wall time.
  const bool over_tcp = transport_mode == "tcp";
  // Transport-comparison rows go to their own file so sim-only kafka rows
  // keep their historical home.
  const char* json_path = over_tcp ? "BENCH_net.json" : "BENCH_kafka.json";

  bench::Header(("E15: throughput vs batch size (transport=" + transport_mode +
                 ")")
                    .c_str(),
                "batched sets amortize per-request cost (paper V.A/V.B)");
  bench::Row("%8s | %10s | %14s | %14s", "msg B", "batch", "produce msg/s",
             "consume msg/s");

  for (int msg_bytes : {200, 1000}) {
    for (int batch : {1, 10, 50, 200}) {
      ManualClock clock;
      zk::ZooKeeper zookeeper;
      std::unique_ptr<net::Transport> transport = MakeTransport(transport_mode);
      net::Transport* network = transport.get();
      BrokerOptions broker_options;
      broker_options.log.flush_interval_messages = 1000;
      Broker broker(0, &zookeeper, network, &clock, broker_options);
      LIDI_MUST_OK(broker.CreateTopic("t", 4));

      ProducerOptions producer_options;
      producer_options.batch_size = batch;
      Producer producer("p", &zookeeper, network, producer_options);
      Random rng(1);
      const std::string payload = rng.Bytes(msg_bytes);

      const int kMessages = over_tcp ? 20'000 : 60'000;
      bench::Stopwatch produce_timer;
      for (int i = 0; i < kMessages; ++i) LIDI_MUST_OK(producer.Send("t", payload));
      LIDI_MUST_OK(producer.Flush());
      const double produce_rate = kMessages / produce_timer.ElapsedSeconds();
      broker.FlushAll();

      ConsumerOptions consumer_options;
      consumer_options.max_fetch_bytes = 300 << 10;
      Consumer consumer("c", "g", &zookeeper, network, consumer_options);
      LIDI_MUST_OK(consumer.Subscribe("t"));
      bench::Stopwatch consume_timer;
      int64_t consumed = 0;
      while (consumed < kMessages) {
        auto messages = consumer.Poll("t");
        if (!messages.ok()) return 1;
        if (messages.value().empty()) break;
        consumed += static_cast<int64_t>(messages.value().size());
      }
      const double consume_seconds = consume_timer.ElapsedSeconds();
      const double consume_rate =
          static_cast<double>(consumed) / consume_seconds;
      const double fetch_mbps = static_cast<double>(consumed) * msg_bytes /
                                consume_seconds / (1 << 20);
      bench::Row("%8d | %10d | %14.0f | %14.0f", msg_bytes, batch,
                 produce_rate, consume_rate);
      bench::JsonRowAt(json_path, "E15", {{"transport", transport_mode}},
                       {{"msg_bytes", msg_bytes},
                        {"batch", batch},
                        {"produce_msgs_per_s", produce_rate},
                        {"consume_msgs_per_s", consume_rate},
                        {"fetch_mbps", fetch_mbps}});
    }
  }
  bench::Row("\nshape check: throughput rises steeply with batch size — the\n"
             "paper's motivation for message-set publishes and bulk pulls.");

  if (over_tcp) {
    bench::Row("\n(transport=tcp: the remaining sections measure the log "
               "layer,\nwhich is transport-independent — run with "
               "--transport=sim)");
    return 0;
  }

  bench::Header(
      "E15 ablation: offset addressing vs per-message id index",
      "no auxiliary id->location index needed with logical offsets (V.B)");
  {
    ManualClock clock;
    const int kMessages = 300'000;
    Random rng(2);
    const std::string payload = rng.Bytes(200);

    // Offset addressing: plain appends.
    LogOptions log_options;
    log_options.flush_interval_messages = 1 << 20;
    PartitionLog plain(log_options, &clock);
    MessageSetBuilder builder;
    builder.Add(payload);
    const std::string set = builder.Build();
    bench::Stopwatch plain_timer;
    for (int i = 0; i < kMessages; ++i) plain.Append(set, 1);
    const double plain_s = plain_timer.ElapsedSeconds();

    // Ablation: additionally maintain the id -> offset B-tree a traditional
    // message id scheme would need.
    PartitionLog indexed(log_options, &clock);
    std::map<int64_t, int64_t> id_index;
    bench::Stopwatch indexed_timer;
    for (int i = 0; i < kMessages; ++i) {
      id_index[i] = indexed.Append(set, 1);
    }
    const double indexed_s = indexed_timer.ElapsedSeconds();

    bench::Row("offset addressing : %9.0f appends/s", kMessages / plain_s);
    bench::Row("with id index     : %9.0f appends/s (index holds %zu entries)",
               kMessages / indexed_s, id_index.size());
    bench::Row("index overhead    : %.1f%% slower, plus O(n) memory",
               100.0 * (indexed_s - plain_s) / plain_s);
  }

  bench::Header(
      "E15b: flush durability vs throughput",
      "paper V.B leans on the page cache; fdatasync buys crash-survival at a "
      "per-flush cost (sync = never | interval | always), and group commit "
      "amortizes the always-sync across concurrent producers");
  bench::Row("%10s | %14s | %6s | %14s | %12s", "sync", "mode", "depth",
             "produce msg/s", "durable end");
  {
    ManualClock clock;
    Random rng(3);
    const std::string payload = rng.Bytes(200);
    MessageSetBuilder builder;
    builder.Add(payload);
    const std::string set = builder.Build();
    const int kMessages = 2'000;

    const auto base = std::filesystem::temp_directory_path() /
                      ("lidi_bench_sync_" +
                       std::to_string(std::chrono::steady_clock::now()
                                          .time_since_epoch()
                                          .count()));
    double interval_rate = 0;
    double always_direct_rate = 0;
    for (io::SyncPolicy policy : {io::SyncPolicy::kNever,
                                  io::SyncPolicy::kInterval,
                                  io::SyncPolicy::kAlways}) {
      LogOptions log_options;
      log_options.data_dir =
          (base / io::SyncPolicyName(policy)).string();
      log_options.flush_interval_messages = 1;  // every append hits the fs
      log_options.sync = policy;
      log_options.sync_interval_bytes = 64 << 10;
      PartitionLog log(log_options, &clock);

      bench::Stopwatch timer;
      for (int i = 0; i < kMessages; ++i) log.Append(set, 1);
      const double seconds = timer.ElapsedSeconds();
      const double rate = kMessages / seconds;
      if (policy == io::SyncPolicy::kInterval) interval_rate = rate;
      if (policy == io::SyncPolicy::kAlways) always_direct_rate = rate;

      bench::Row("%10s | %14s | %6d | %14.0f | %12lld",
                 io::SyncPolicyName(policy), "direct", 1, rate,
                 static_cast<long long>(log.durable_end_offset()));
      bench::JsonRow("E15b",
                     {{"sync", io::SyncPolicyName(policy)},
                      {"mode", "direct"}},
                     {{"msg_bytes", 200},
                      {"batch_depth", 1},
                      {"produce_msgs_per_s", rate},
                      {"durable_end_offset",
                       static_cast<double>(log.durable_end_offset())}});
    }

    // Group commit: `depth` producer threads each append durably; the first
    // to need a sync leads one covering fdatasync for the whole batch. At
    // depth 1 this measures the group path's overhead (same one-sync-per-
    // append work, plus the committer handoff); at depth 64 the sync cost
    // divides by the batch.
    double group64_rate = 0;
    for (int depth : {1, 8, 64}) {
      LogOptions log_options;
      log_options.data_dir =
          (base / ("group_" + std::to_string(depth))).string();
      log_options.flush_interval_messages = 1;
      log_options.sync = io::SyncPolicy::kAlways;
      log_options.group_commit = true;
      PartitionLog log(log_options, &clock);

      const int per_thread = kMessages / depth;
      bench::Stopwatch timer;
      std::vector<std::thread> producers;
      producers.reserve(static_cast<size_t>(depth));
      for (int t = 0; t < depth; ++t) {
        producers.emplace_back([&log, &set, per_thread] {
          for (int i = 0; i < per_thread; ++i) {
            auto acked = log.AppendDurable(set, 1);
            if (!acked.ok()) std::abort();  // bench contract: all acks land
          }
        });
      }
      for (auto& t : producers) t.join();
      const double seconds = timer.ElapsedSeconds();
      const int sent = per_thread * depth;
      const double rate = sent / seconds;
      if (depth == 64) group64_rate = rate;

      bench::Row("%10s | %14s | %6d | %14.0f | %12lld", "always",
                 "group_commit", depth, rate,
                 static_cast<long long>(log.durable_end_offset()));
      bench::JsonRow("E15b",
                     {{"sync", "always"}, {"mode", "group_commit"}},
                     {{"msg_bytes", 200},
                      {"batch_depth", depth},
                      {"produce_msgs_per_s", rate},
                      {"durable_end_offset",
                       static_cast<double>(log.durable_end_offset())}});
    }
    if (interval_rate > 0 && group64_rate > 0) {
      bench::Row("\ncliff: always/interval = %.0fx direct, %.1fx with group "
                 "commit at depth 64",
                 interval_rate / always_direct_rate,
                 interval_rate / group64_rate);
    }
    std::error_code ec;
    std::filesystem::remove_all(base, ec);
  }
  bench::Row("\nshape check: never ~ page-cache speed, always pays one\n"
             "fdatasync per flush, interval sits between. Group commit\n"
             "shares one covering fdatasync across concurrent producers,\n"
             "closing most of the always-vs-interval cliff at batch depth.");
  return 0;
}
