#ifndef LIDI_BENCH_ESPRESSO_FIXTURE_H_
#define LIDI_BENCH_ESPRESSO_FIXTURE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "espresso/router.h"
#include "espresso/storage_node.h"
#include "helix/helix.h"
#include "net/network.h"
#include "zk/zookeeper.h"

#include "common/require.h"

namespace lidi::bench {

/// A ready-to-use Espresso cluster for the bench binaries: Music-style
/// database, Helix-managed storage nodes, a router.
struct EspressoFixture {
  explicit EspressoFixture(int num_nodes, int partitions = 8,
                           int replicas = 2) {
    LIDI_MUST_OK(registry.CreateDatabase({"db",
                             espresso::DatabaseSchema::Partitioning::kHash,
                             partitions, replicas}));
    LIDI_MUST_OK(registry.CreateTable("db", {"docs", 1}));
    LIDI_MUST_OK(registry.PostDocumentSchema("db", "docs", R"({
      "type":"record","name":"Doc","fields":[
        {"name":"title","type":"string","indexed":true},
        {"name":"body","type":"string","indexed":true,"index_type":"text"},
        {"name":"rank","type":"int","indexed":true}]})"));
    controller =
        std::make_unique<helix::HelixController>("espresso", &zookeeper);
    LIDI_MUST_OK(controller->AddResource({"db", partitions, replicas}));
    for (int i = 0; i < num_nodes; ++i) AddNode();
    controller->RebalanceToConvergence();
    router = std::make_unique<espresso::Router>("router", &registry,
                                                controller.get(), &network);
  }

  espresso::StorageNode* AddNode() {
    const std::string name = "esn-" + std::to_string(next_node_id++);
    auto node = std::make_unique<espresso::StorageNode>(
        name, &registry, &relay, &network, SystemClock::Default());
    auto* raw = node.get();
    raw->SetMasterLookup([this](const std::string& db, int p) {
      return controller->MasterOf(db, p);
    });
    auto session = controller->ConnectParticipant(
        name,
        [raw](const helix::Transition& t) { return raw->HandleTransition(t); });
    sessions[name] = session.value();
    nodes.push_back(std::move(node));
    return raw;
  }

  void KillNode(const std::string& name) {
    network.SetNodeDown(name);
    zookeeper.CloseSession(sessions[name]);
  }

  avro::DatumPtr MakeDoc(const std::string& title, const std::string& body,
                         int rank) {
    auto d = avro::Datum::Record("Doc");
    d->SetField("title", avro::Datum::String(title));
    d->SetField("body", avro::Datum::String(body));
    d->SetField("rank", avro::Datum::Int(rank));
    return d;
  }

  net::Network network;
  zk::ZooKeeper zookeeper;
  espresso::SchemaRegistry registry;
  espresso::EspressoRelay relay;
  std::unique_ptr<helix::HelixController> controller;
  std::vector<std::unique_ptr<espresso::StorageNode>> nodes;
  std::map<std::string, zk::SessionId> sessions;
  std::unique_ptr<espresso::Router> router;
  int next_node_id = 0;
};

}  // namespace lidi::bench

#endif  // LIDI_BENCH_ESPRESSO_FIXTURE_H_
