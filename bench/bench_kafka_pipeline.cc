// E20 — end-to-end latency of the mirrored analytics pipeline.
//
// Paper (V.D): "Without too much tuning, the end-to-end latency for the
// complete pipeline is about 10 seconds on average, good enough for our
// requirements." The pipeline: frontend producers (batching) -> live-DC
// brokers (flush policy) -> embedded-consumer mirror -> offline-DC brokers
// -> data-load consumers.
//
// Time is simulated (ManualClock): each stage runs on the cadence a
// production deployment would use, so the measured latency reflects the
// batching/flush/poll delays that dominate the real pipeline, not our
// simulator's CPU speed.

#include <map>

#include "bench_util.h"
#include "common/clock.h"
#include "common/random.h"
#include "kafka/broker.h"
#include "kafka/consumer.h"
#include "kafka/mirror.h"
#include "kafka/producer.h"
#include "net/network.h"
#include "zk/zookeeper.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::kafka;

int main() {
  bench::Header("E20: end-to-end mirrored pipeline latency (simulated time)",
                "~10 s average end-to-end (paper V.D)");
  bench::Row("%18s | %14s | %12s | %12s", "stage cadence", "producer batch",
             "avg e2e s", "p95 e2e s");

  struct Cadence {
    const char* label;
    int64_t flush_ms;        // broker flush interval
    int64_t mirror_poll_ms;  // embedded consumer poll period
    int64_t load_poll_ms;    // offline load job poll period
    int batch;
  };
  const Cadence cadences[] = {
      {"aggressive (1s)", 1000, 1000, 1000, 50},
      {"production (2-4s)", 2000, 3000, 4000, 100},
      {"relaxed (5-10s)", 5000, 5000, 10000, 500},
  };

  for (const Cadence& cadence : cadences) {
    ManualClock clock;
    zk::ZooKeeper zookeeper;
    net::Network network;
    BrokerOptions live_options;
    live_options.log.flush_interval_messages = 1 << 20;  // time-driven flush
    live_options.log.flush_interval_ms = cadence.flush_ms;
    Broker live(0, &zookeeper, &network, &clock, live_options);
    LIDI_MUST_OK(live.CreateTopic("events", 4));
    BrokerOptions offline_options = live_options;
    offline_options.zk_root = "/kafka-offline";
    Broker offline(100, &zookeeper, &network, &clock, offline_options);
    LIDI_MUST_OK(offline.CreateTopic("events", 4));

    ProducerOptions producer_options;
    producer_options.batch_size = cadence.batch;
    Producer frontend("frontend", &zookeeper, &network, producer_options);
    MirrorMaker mirror("mirror", "events", &zookeeper, &network, "/kafka",
                       "/kafka-offline");
    ConsumerOptions load_options;
    load_options.zk_root = "/kafka-offline";
    Consumer load("load", "etl", &zookeeper, &network, load_options);
    LIDI_MUST_OK(load.Subscribe("events"));

    // Drive 10 simulated minutes: ~100 events/s in 100 ms ticks; each stage
    // acts on its cadence. Event payload carries its production timestamp.
    std::vector<double> latencies;
    const int64_t kTickMs = 100;
    for (int64_t t = 0; t < 10 * 60 * 1000; t += kTickMs) {
      clock.AdvanceMillis(kTickMs);
      for (int i = 0; i < 10; ++i) {
        LIDI_MUST_OK(frontend.Send("events", std::to_string(clock.NowMillis())));
      }
      // Appends notice time-based flushes; nudge brokers via empty produce.
      if (t % cadence.flush_ms == 0) {
        live.FlushAll();
        offline.FlushAll();
      }
      if (t % cadence.mirror_poll_ms == 0) {
        LIDI_MUST_OK(frontend.Flush());  // producers ship pending batches on a timer too
        // The embedded consumer drains its backlog each wake-up.
        while (mirror.PumpOnce().value() > 0) {
        }
      }
      if (t % cadence.load_poll_ms == 0) {
        for (int drain = 0; drain < 16; ++drain) {
          auto messages = load.Poll("events");
          if (!messages.ok() || messages.value().empty()) break;
          for (const Message& m : messages.value()) {
            const int64_t produced_at = std::atoll(m.payload.c_str());
            latencies.push_back(
                static_cast<double>(clock.NowMillis() - produced_at) / 1000.0);
          }
        }
      }
    }
    double sum = 0, p95 = 0;
    std::sort(latencies.begin(), latencies.end());
    for (double l : latencies) sum += l;
    if (!latencies.empty()) {
      p95 = latencies[static_cast<size_t>(0.95 * (latencies.size() - 1))];
    }
    bench::Row("%18s | %14d | %12.1f | %12.1f", cadence.label, cadence.batch,
               latencies.empty() ? 0 : sum / latencies.size(), p95);
  }
  bench::Row("\nshape check: end-to-end latency is the sum of the stage\n"
             "cadences (batching + flush + mirror + load polling) — seconds,\n"
             "not milliseconds, matching the paper's ~10 s pipeline.");
  return 0;
}
