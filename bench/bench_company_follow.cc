// E4 — the Company Follow workload: read-write stores with Zipfian-sized
// list values and server-side transforms.
//
// Paper (II.C): "Both the stores have a Zipfian distribution for their data
// size, but still manage to retrieve large values with an average latency of
// 4 ms." The stores map member -> companies followed and company -> members
// following; popular companies accumulate very long follower lists.

#include <memory>

#include "bench_util.h"
#include "common/clock.h"
#include "common/histogram.h"
#include "common/random.h"
#include "net/address.h"
#include "net/network.h"
#include "voldemort/client.h"
#include "voldemort/server.h"
#include "workload/key_mix.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::voldemort;

int main() {
  bench::Header("E4: Company Follow stores (Zipfian value sizes)",
                "large Zipfian values retrieved at ~4 ms average (II.C)");

  net::Network network;
  std::vector<Node> cluster_nodes;
  for (int i = 0; i < 4; ++i) cluster_nodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), 0});
  auto metadata =
      std::make_shared<ClusterMetadata>(Cluster::Uniform(cluster_nodes, 16));
  std::vector<std::unique_ptr<VoldemortServer>> servers;
  for (int i = 0; i < 4; ++i) {
    servers.push_back(std::make_unique<VoldemortServer>(i, metadata, &network));
    LIDI_MUST_OK(servers.back()->AddStore("member-follows"));
    LIDI_MUST_OK(servers.back()->AddStore("company-followers"));
  }
  StoreDefinition def{"company-followers", 3, 2, 2};
  StoreClient followers("cf", def, metadata, &network, SystemClock::Default());

  // Build follower lists with Zipfian popularity: company rank 0 is followed
  // by everyone, the tail barely at all.
  const int kCompanies = 500;
  const int kFollows = 20'000;
  workload::KeyMixOptions mix_options;
  mix_options.num_keys = kCompanies;
  mix_options.theta = 0.99;
  mix_options.seed = 3;
  mix_options.prefix = "company:";
  workload::KeyMix mix(mix_options);
  Histogram append_lat;
  std::string empty;
  EncodeStringList({}, &empty);
  for (int c = 0; c < kCompanies; ++c) {
    LIDI_MUST_OK(followers.PutValue(mix.KeyAt(static_cast<uint64_t>(c)), empty));
  }
  for (int i = 0; i < kFollows; ++i) {
    const std::string key = mix.NextKey();
    auto current = followers.Get(key);
    if (!current.ok()) continue;
    Transform append;
    append.type = Transform::Type::kAppend;
    append.item = "member:" + std::to_string(i);
    bench::Stopwatch op;
    LIDI_MUST_OK(followers.Put(key, current.value()[0].version, append));
    append_lat.Record(op.ElapsedMicros());
  }
  bench::Row("follow (transformed append) us: %s", append_lat.Summary().c_str());

  // Retrieval latency across the size distribution.
  Histogram get_lat, head_lat, tail_lat;
  size_t max_list = 0;
  for (int i = 0; i < 20'000; ++i) {
    const uint64_t rank = mix.NextRank();
    const std::string key = mix.KeyAt(rank);
    bench::Stopwatch op;
    auto value = followers.Get(key);
    const double us = op.ElapsedMicros();
    get_lat.Record(us);
    (rank < 10 ? head_lat : tail_lat).Record(us);
    if (value.ok()) {
      auto list = DecodeStringList(value.value()[0].value);
      if (list.ok()) max_list = std::max(max_list, list.value().size());
    }
  }
  bench::Row("get overall  us: %s", get_lat.Summary().c_str());
  bench::Row("get hot-10   us: %s", head_lat.Summary().c_str());
  bench::Row("get tail     us: %s", tail_lat.Summary().c_str());
  bench::Row("largest follower list: %zu members", max_list);

  // The sub-list transform's win is bandwidth: the server ships only the
  // requested slice instead of the full follower list (Figure II.2, method
  // 3: "saving a client round trip and network bandwidth").
  Histogram sublist_lat;
  int64_t full_bytes = 0, sublist_bytes = 0;
  const int kHotReads = 2000;
  for (int i = 0; i < kHotReads; ++i) {
    auto full = followers.Get("company:0");
    if (full.ok()) full_bytes += static_cast<int64_t>(full.value()[0].value.size());
    Transform sublist;
    sublist.type = Transform::Type::kSublist;
    sublist.offset = 0;
    sublist.count = 10;
    bench::Stopwatch op;
    auto sliced = followers.Get("company:0", sublist);
    sublist_lat.Record(op.ElapsedMicros());
    if (sliced.ok()) {
      sublist_bytes += static_cast<int64_t>(sliced.value()[0].value.size());
    }
  }
  bench::Row("hot-key full get ships   %8lld bytes/read",
             static_cast<long long>(full_bytes / kHotReads));
  bench::Row("server-side sub-list(10) %8lld bytes/read (%.0fx less wire "
             "traffic), us: %s",
             static_cast<long long>(sublist_bytes / kHotReads),
             static_cast<double>(full_bytes) /
                 static_cast<double>(std::max<int64_t>(1, sublist_bytes)),
             sublist_lat.Summary().c_str());
  bench::Row("\nshape check: hot keys (huge lists) cost more than the tail;\n"
             "the server-side sub-list transform cuts the shipped bytes by\n"
             "orders of magnitude — the bandwidth saving of Figure II.2.");
  return 0;
}
