// E22 — open-loop load across all four tiers, with SLO accounting and
// graceful degradation.
//
// The paper's systems exist to survive "heavy traffic from millions of
// users". Every other bench here is closed-loop: the next request waits for
// the previous one, so a slow server throttles its own load source and the
// latency report hides queueing collapse (coordinated omission). This bench
// fixes the ARRIVAL schedule instead — requests are due at t0 + i/rate — and
// measures latency from the intended start, sweeping the rate through
// saturation. Past the quota knee the stack sheds load (typed Overloaded
// rejections) instead of collapsing; the shed counts are part of the row.
//
// Rows land in BENCH_load.json when LIDI_BENCH_JSON is set. Usage:
//   bench_open_loop [--smoke]   (--smoke: one low + one saturated sim point,
//                                exits nonzero if the shed shape is wrong)

#include <cstring>
#include <memory>

#include "bench_util.h"
#include "common/clock.h"
#include "net/network.h"
#include "net/tcp_transport.h"
#include "workload/key_mix.h"
#include "workload/open_loop.h"
#include "workload/stack.h"

using namespace lidi;

namespace {

// Per-front-end-shard quota (requests/sec) at the Voldemort servers and the
// Kafka broker. With 4 shards and the 4-way tier split, a swept arrival
// rate R sends roughly R/16 per shard per tier: 500/s sails under the
// quota, 8000/s slams into it.
constexpr double kQuotaPerClient = 120;

workload::StackOptions QuotaedStack() {
  workload::StackOptions opts;
  opts.voldemort_quota_per_sec = kQuotaPerClient;
  opts.kafka_produce_quota_per_sec = kQuotaPerClient;
  // A hot user's session bursts several same-client RPCs back to back;
  // the burst allowance absorbs that at calm load so only sustained
  // over-rate traffic is shed.
  opts.quota_burst = 64;
  opts.router_max_inflight = 64;  // generous: admission is rate-limited here
  return opts;
}

workload::SessionMixOptions MillionUsers(uint64_t seed) {
  workload::SessionMixOptions mix;
  mix.num_users = 2'000'000;  // O(1) memory: rejection-inversion Zipf
  mix.theta = 0.99;
  mix.read_fraction = 0.6;
  mix.seed = seed;
  return mix;
}

struct Point {
  double rate = 0;
  workload::OpenLoopReport report;
  int64_t tier_rejects = 0;  // server-side quota + admission rejections
};

// One rate point on a fresh stack (fresh token buckets, fresh histograms).
Point RunPoint(const char* backend, double rate, int64_t operations) {
  Point point;
  point.rate = rate;
  workload::OpenLoopOptions dopts;
  dopts.arrival_per_sec = rate;
  dopts.operations = operations;
  dopts.name = std::string(backend) + "@" + std::to_string((int)rate);

  if (std::strcmp(backend, "sim") == 0) {
    ManualClock clock;
    obs::MetricsRegistry metrics(&clock);
    net::Network network(42, &metrics, &clock);
    workload::FourTierStack stack(&network, &clock, QuotaedStack());
    workload::SessionMix mix(MillionUsers(/*seed=*/7));
    dopts.metrics = &metrics;
    dopts.virtual_clock = &clock;
    workload::OpenLoopDriver driver(dopts);
    point.report = driver.Run(
        [&](int64_t) { return stack.Step(mix.Next()); });
    point.tier_rejects = stack.TotalOverloadRejects();
  } else {
    obs::MetricsRegistry metrics;
    net::TcpTransport transport({}, &metrics);
    workload::FourTierStack stack(&transport, SystemClock::Default(),
                                  QuotaedStack());
    workload::SessionMix mix(MillionUsers(/*seed=*/7));
    dopts.metrics = &metrics;
    workload::OpenLoopDriver driver(dopts);
    point.report = driver.Run(
        [&](int64_t) { return stack.Step(mix.Next()); });
    point.tier_rejects = stack.TotalOverloadRejects();
  }
  return point;
}

void PrintAndRecord(const char* backend, const Point& p) {
  const auto& r = p.report;
  bench::Row("%-4s %7.0f/s | achieved %7.0f/s | p50 %8.0fus p99 %8.0fus "
             "p999 %8.0fus | shed %6lld | err %lld",
             backend, p.rate, r.achieved_per_sec, r.p50_micros, r.p99_micros,
             r.p999_micros, static_cast<long long>(r.overloaded),
             static_cast<long long>(r.errors));
  bench::JsonRowAt(
      "BENCH_load.json", "open_loop_sweep", {{"backend", backend}},
      {{"arrival_per_sec", p.rate},
       {"achieved_per_sec", r.achieved_per_sec},
       {"p50_us", r.p50_micros},
       {"p99_us", r.p99_micros},
       {"p999_us", r.p999_micros},
       {"shed", static_cast<double>(r.overloaded)},
       {"tier_rejects", static_cast<double>(p.tier_rejects)},
       {"errors", static_cast<double>(r.errors)},
       {"ok", static_cast<double>(r.ok)}});
}

// CI smoke: trivial load must shed nothing; saturating load must shed.
int Smoke() {
  const Point calm = RunPoint("sim", 200, 400);
  const Point slammed = RunPoint("sim", 20'000, 20'000);
  PrintAndRecord("sim", calm);
  PrintAndRecord("sim", slammed);
  if (calm.report.overloaded != 0) {
    bench::Row("SMOKE FAIL: %lld sheds at trivial load",
               static_cast<long long>(calm.report.overloaded));
    return 1;
  }
  if (slammed.report.overloaded == 0) {
    bench::Row("SMOKE FAIL: zero sheds at saturating load");
    return 1;
  }
  bench::Row("smoke ok: 0 sheds calm, %lld sheds saturated",
             static_cast<long long>(slammed.report.overloaded));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return Smoke();

  bench::Header("E22: open-loop rate sweep, four tiers at once",
                "graceful degradation under \"heavy traffic from millions of "
                "users\": past the quota knee, load is shed, not queued");
  const double rates[] = {500, 2000, 8000};
  for (const char* backend : {"sim", "tcp"}) {
    for (double rate : rates) {
      // ~1 second of traffic per point (virtual seconds on sim).
      const Point p = RunPoint(backend, rate, static_cast<int64_t>(rate));
      PrintAndRecord(backend, p);
    }
  }
  bench::Row("\nshape check: sheds are 0 at 500/s and grow with the rate;\n"
             "p99 intended latency includes backlog (no coordinated "
             "omission).");
  return 0;
}
