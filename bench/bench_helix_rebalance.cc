// E14 — Helix: CURRENTSTATE converges to BESTPOSSIBLESTATE / IDEALSTATE
// across membership changes.
//
// Paper (IV.B): Helix "generates tasks to transform the CURRENTSTATE of the
// cluster to the BESTPOSSIBLESTATE. When all nodes are available, the
// BESTPOSSIBLESTATE will converge to the IDEALSTATE." It also provides
// "optimized rebalancing during cluster expansion".

#include <memory>

#include "bench_util.h"
#include "helix/helix.h"
#include "net/network.h"
#include "voldemort/rebalance.h"
#include "workload/key_mix.h"
#include "workload/open_loop.h"
#include "workload/stack.h"
#include "zk/zookeeper.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::helix;

namespace {

int CountMasters(const Assignment& a, const std::string& instance) {
  int count = 0;
  for (const auto& [p, states] : a) {
    auto it = states.find(instance);
    if (it != states.end() && it->second == ReplicaState::kMaster) ++count;
  }
  return count;
}

// --- Live-traffic axis -----------------------------------------------------
//
// The controller sections above measure rebalance convergence with no client
// load. The elasticity claim of IV.B is stronger: expansion happens UNDER
// traffic. This axis runs the four-tier stack behind the open-loop driver
// twice — once undisturbed, once with a Voldemort node joining at the arrival
// midpoint and a RebalanceExecutor stepping between arrivals — and reports
// what the clients felt: p99 inflation and shed count.

struct LivePoint {
  workload::OpenLoopReport report;
  int64_t sheds = 0;  // driver-observed Overloaded + server-side rejections
  int64_t moves = 0;  // partitions cut over during the run
};

LivePoint RunLiveTrafficPoint(bool rebalance_mid_run) {
  constexpr double kRate = 2000;
  constexpr int64_t kOps = 4000;
  ManualClock clock;
  obs::MetricsRegistry metrics(&clock);
  net::Network network(/*seed=*/42, &metrics, &clock);
  workload::StackOptions sopts;
  // Per-shard quotas sized so the undisturbed run is (near) shed-free at
  // kRate: rebalance-induced backlog can then surface as typed sheds
  // rather than only as latency, and the baseline row stays a clean floor.
  sopts.voldemort_quota_per_sec = 1200;
  sopts.kafka_produce_quota_per_sec = 1200;
  sopts.quota_burst = 256;
  workload::FourTierStack stack(&network, &clock, sopts);
  workload::SessionMixOptions mopts;
  mopts.seed = 7;
  workload::SessionMix mix(mopts);
  workload::OpenLoopOptions dopts;
  dopts.arrival_per_sec = kRate;
  dopts.operations = kOps;
  dopts.metrics = &metrics;
  dopts.virtual_clock = &clock;
  // Charge real service time onto the virtual clock: the copy RPCs the
  // executor issues inside an arrival slot are exactly the disturbance this
  // axis exists to measure, and without wall-time charging sim latency
  // would read as zero for both runs.
  dopts.charge_wall_time = true;
  dopts.name = rebalance_mid_run ? "live-rebalance" : "live-baseline";
  workload::OpenLoopDriver driver(dopts);

  std::unique_ptr<voldemort::RebalanceExecutor> executor;
  LivePoint point;
  point.report = driver.Run([&](int64_t index) {
    if (rebalance_mid_run && index == kOps / 2) {
      stack.AddVoldemortNode();
      executor = std::make_unique<voldemort::RebalanceExecutor>(
          "wl", stack.metadata(), stack.transport());
    }
    // One bounded rebalance action every few arrivals, the production
    // janitor-thread cadence: traffic interleaves with every copy chunk and
    // with the cutover itself.
    if (executor != nullptr && index % 8 == 0) executor->Step();
    return stack.Step(mix.Next());
  });
  if (executor != nullptr) {
    LIDI_MUST_OK(executor->DriveToCompletion());
    point.moves = executor->moves_completed();
  }
  point.sheds = point.report.overloaded + stack.TotalOverloadRejects();
  return point;
}

}  // namespace

int main() {
  bench::Header("E14: Helix rebalance on membership change",
                "CURRENTSTATE -> BESTPOSSIBLE -> IDEAL (paper IV.B)");
  bench::Row("%22s | %11s | %12s | %11s | %s", "event", "transitions",
             "converge us", "masterless", "current==ideal?");

  zk::ZooKeeper zookeeper;
  HelixController controller("bench", &zookeeper);
  LIDI_MUST_OK(controller.AddResource({"db", 24, 3}));

  std::map<std::string, zk::SessionId> sessions;
  auto connect = [&](const std::string& name) {
    auto session =
        controller.ConnectParticipant(name, [](const Transition&) {
          return Status::OK();
        });
    sessions[name] = session.value();
  };

  auto report = [&](const char* event) {
    bench::Stopwatch timer;
    const int transitions = controller.RebalanceToConvergence();
    const double us = timer.ElapsedMicros();
    const bool ideal =
        controller.GetCurrentState("db") == controller.ComputeIdealState("db");
    bench::Row("%22s | %11d | %12.0f | %11zu | %s", event, transitions, us,
               controller.MasterlessPartitions("db").size(),
               ideal ? "YES" : "no (degraded nodes)");
  };

  for (int i = 0; i < 3; ++i) connect("node-" + std::to_string(i));
  report("bootstrap 3 nodes");
  connect("node-3");
  report("add node-3");
  connect("node-4");
  report("add node-4");
  zookeeper.CloseSession(sessions["node-1"]);
  report("crash node-1");
  zookeeper.CloseSession(sessions["node-2"]);
  report("crash node-2");
  connect("node-1");
  report("node-1 returns");

  bench::Header("E14 follow-on: master balance after expansion",
                "smart allocation balances partitions over servers (IV.B)");
  const auto current = controller.GetCurrentState("db");
  for (const std::string& instance : controller.LiveInstances()) {
    bench::Row("  %-10s masters %2d of 24 partitions", instance.c_str(),
               CountMasters(current, instance));
  }

  bench::Header("E14 scale sweep: transitions per membership change",
                "transition count scales with partitions moved, not cluster");
  bench::Row("%8s | %12s | %22s", "nodes", "partitions", "transitions to heal");
  for (int nodes : {4, 8, 16}) {
    zk::ZooKeeper zk2;
    HelixController c2("bench2", &zk2);
    LIDI_MUST_OK(c2.AddResource({"db", 64, 2}));
    std::map<std::string, zk::SessionId> s2;
    for (int i = 0; i < nodes; ++i) {
      auto session = c2.ConnectParticipant(
          "n" + std::to_string(i), [](const Transition&) { return Status::OK(); });
      s2["n" + std::to_string(i)] = session.value();
    }
    c2.RebalanceToConvergence();
    zk2.CloseSession(s2["n0"]);
    const int heal = c2.RebalanceToConvergence();
    bench::Row("%8d | %12d | %22d", nodes, 64, heal);
  }
  bench::Row("\nshape check: healing cost shrinks as the cluster grows (each\n"
             "node owns fewer partitions), the elasticity argument of IV.B.");

  bench::Header("E14 live-traffic axis: ring expansion under open-loop load",
                "what clients feel while partitions move (DESIGN.md §13)");
  bench::Row("%-14s | %9s | %9s | %9s | %6s | %5s | %s", "run", "p50 us",
             "p99 us", "p999 us", "shed", "moves", "errors");
  const LivePoint baseline = RunLiveTrafficPoint(/*rebalance_mid_run=*/false);
  const LivePoint live = RunLiveTrafficPoint(/*rebalance_mid_run=*/true);
  const auto live_row = [](const char* name, const LivePoint& p) {
    bench::Row("%-14s | %9.0f | %9.0f | %9.0f | %6lld | %5lld | %lld", name,
               p.report.p50_micros, p.report.p99_micros, p.report.p999_micros,
               static_cast<long long>(p.sheds),
               static_cast<long long>(p.moves),
               static_cast<long long>(p.report.errors));
  };
  live_row("baseline", baseline);
  live_row("live rebalance", live);
  const double inflation = baseline.report.p99_micros > 0
                               ? live.report.p99_micros /
                                     baseline.report.p99_micros
                               : 0;
  const double tail_inflation = baseline.report.p999_micros > 0
                                    ? live.report.p999_micros /
                                          baseline.report.p999_micros
                                    : 0;
  bench::Row("\np99 inflation while rebalancing: %.2fx over baseline, p999 "
             "%.2fx\n(%lld sheds, %lld partition moves under live traffic — "
             "the bounded\none-action-per-step executor is why the p99 stays "
             "flat; only the\nhandful of arrivals sharing a slot with a copy "
             "chunk pay, out at p999)",
             inflation, tail_inflation, static_cast<long long>(live.sheds),
             static_cast<long long>(live.moves));
  bench::JsonRow("helix_rebalance_live", {{"run", "baseline"}},
                 {{"arrival_per_sec", 2000},
                  {"p50_us", baseline.report.p50_micros},
                  {"p99_us", baseline.report.p99_micros},
                  {"p999_us", baseline.report.p999_micros},
                  {"shed", static_cast<double>(baseline.sheds)},
                  {"moves", 0},
                  {"errors", static_cast<double>(baseline.report.errors)}});
  bench::JsonRow("helix_rebalance_live", {{"run", "rebalance"}},
                 {{"arrival_per_sec", 2000},
                  {"p50_us", live.report.p50_micros},
                  {"p99_us", live.report.p99_micros},
                  {"p999_us", live.report.p999_micros},
                  {"shed", static_cast<double>(live.sheds)},
                  {"moves", static_cast<double>(live.moves)},
                  {"p99_inflation", inflation},
                  {"p999_inflation", tail_inflation},
                  {"errors", static_cast<double>(live.report.errors)}});
  return 0;
}
