// E14 — Helix: CURRENTSTATE converges to BESTPOSSIBLESTATE / IDEALSTATE
// across membership changes.
//
// Paper (IV.B): Helix "generates tasks to transform the CURRENTSTATE of the
// cluster to the BESTPOSSIBLESTATE. When all nodes are available, the
// BESTPOSSIBLESTATE will converge to the IDEALSTATE." It also provides
// "optimized rebalancing during cluster expansion".

#include <memory>

#include "bench_util.h"
#include "helix/helix.h"
#include "zk/zookeeper.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::helix;

namespace {

int CountMasters(const Assignment& a, const std::string& instance) {
  int count = 0;
  for (const auto& [p, states] : a) {
    auto it = states.find(instance);
    if (it != states.end() && it->second == ReplicaState::kMaster) ++count;
  }
  return count;
}

}  // namespace

int main() {
  bench::Header("E14: Helix rebalance on membership change",
                "CURRENTSTATE -> BESTPOSSIBLE -> IDEAL (paper IV.B)");
  bench::Row("%22s | %11s | %12s | %11s | %s", "event", "transitions",
             "converge us", "masterless", "current==ideal?");

  zk::ZooKeeper zookeeper;
  HelixController controller("bench", &zookeeper);
  LIDI_MUST_OK(controller.AddResource({"db", 24, 3}));

  std::map<std::string, zk::SessionId> sessions;
  auto connect = [&](const std::string& name) {
    auto session =
        controller.ConnectParticipant(name, [](const Transition&) {
          return Status::OK();
        });
    sessions[name] = session.value();
  };

  auto report = [&](const char* event) {
    bench::Stopwatch timer;
    const int transitions = controller.RebalanceToConvergence();
    const double us = timer.ElapsedMicros();
    const bool ideal =
        controller.GetCurrentState("db") == controller.ComputeIdealState("db");
    bench::Row("%22s | %11d | %12.0f | %11zu | %s", event, transitions, us,
               controller.MasterlessPartitions("db").size(),
               ideal ? "YES" : "no (degraded nodes)");
  };

  for (int i = 0; i < 3; ++i) connect("node-" + std::to_string(i));
  report("bootstrap 3 nodes");
  connect("node-3");
  report("add node-3");
  connect("node-4");
  report("add node-4");
  zookeeper.CloseSession(sessions["node-1"]);
  report("crash node-1");
  zookeeper.CloseSession(sessions["node-2"]);
  report("crash node-2");
  connect("node-1");
  report("node-1 returns");

  bench::Header("E14 follow-on: master balance after expansion",
                "smart allocation balances partitions over servers (IV.B)");
  const auto current = controller.GetCurrentState("db");
  for (const std::string& instance : controller.LiveInstances()) {
    bench::Row("  %-10s masters %2d of 24 partitions", instance.c_str(),
               CountMasters(current, instance));
  }

  bench::Header("E14 scale sweep: transitions per membership change",
                "transition count scales with partitions moved, not cluster");
  bench::Row("%8s | %12s | %22s", "nodes", "partitions", "transitions to heal");
  for (int nodes : {4, 8, 16}) {
    zk::ZooKeeper zk2;
    HelixController c2("bench2", &zk2);
    LIDI_MUST_OK(c2.AddResource({"db", 64, 2}));
    std::map<std::string, zk::SessionId> s2;
    for (int i = 0; i < nodes; ++i) {
      auto session = c2.ConnectParticipant(
          "n" + std::to_string(i), [](const Transition&) { return Status::OK(); });
      s2["n" + std::to_string(i)] = session.value();
    }
    c2.RebalanceToConvergence();
    zk2.CloseSession(s2["n0"]);
    const int heal = c2.RebalanceToConvergence();
    bench::Row("%8d | %12d | %22d", nodes, 64, heal);
  }
  bench::Row("\nshape check: healing cost shrinks as the cluster grows (each\n"
             "node owns fewer partitions), the elasticity argument of IV.B.");
  return 0;
}
