// Global search over an Espresso database — the paper's IV.A future
// enhancement ("global secondary indexes maintained via a listener to the
// update stream"), which is also how Figure I.1's search system consumes the
// profile-change feed.
//
// Local secondary indexes answer queries within one collection resource;
// the GlobalIndexer listens to every partition's update stream and can
// answer "find every document whose body mentions X" across the cluster.

#include <cstdio>

#include "common/clock.h"
#include "espresso/global_index.h"
#include "espresso/router.h"
#include "espresso/storage_node.h"
#include "helix/helix.h"
#include "net/network.h"
#include "zk/zookeeper.h"

#include "common/require.h"

using namespace lidi;

int main() {
  net::Network network;
  zk::ZooKeeper zookeeper;
  SystemClock* clock = SystemClock::Default();

  espresso::SchemaRegistry registry;
  LIDI_MUST_OK(registry.CreateDatabase(
      {"Members", espresso::DatabaseSchema::Partitioning::kHash, 8, 2}));
  LIDI_MUST_OK(registry.CreateTable("Members", {"Profile", 0}));
  LIDI_MUST_OK(registry.PostDocumentSchema("Members", "Profile", R"({
    "type":"record","name":"Profile","fields":[
      {"name":"name","type":"string","indexed":true},
      {"name":"headline","type":"string","indexed":true,"index_type":"text"},
      {"name":"company","type":"string","indexed":true}]})"));

  espresso::EspressoRelay relay;
  helix::HelixController controller("espresso", &zookeeper);
  LIDI_MUST_OK(controller.AddResource({"Members", 8, 2}));
  std::vector<std::unique_ptr<espresso::StorageNode>> nodes;
  for (int i = 0; i < 3; ++i) {
    auto node = std::make_unique<espresso::StorageNode>(
        "esn-" + std::to_string(i), &registry, &relay, &network, clock);
    auto* raw = node.get();
    LIDI_MUST_OK(controller.ConnectParticipant(raw->name(), [raw](const helix::Transition& t) {
      return raw->HandleTransition(t);
    }));
    nodes.push_back(std::move(node));
  }
  controller.RebalanceToConvergence();
  espresso::Router router("router", &registry, &controller, &network);

  struct Member {
    const char* id;
    const char* name;
    const char* headline;
    const char* company;
  };
  const Member members[] = {
      {"m1", "Jay", "building distributed messaging systems", "linkedin"},
      {"m2", "Ada", "compilers and distributed systems research", "acme"},
      {"m3", "Bob", "frontend engineer, loves css", "acme"},
      {"m4", "Eve", "distributed storage systems at scale", "globex"},
      {"m5", "Kim", "recruiter for data infrastructure teams", "linkedin"},
  };
  for (const Member& m : members) {
    auto doc = avro::Datum::Record("Profile");
    doc->SetField("name", avro::Datum::String(m.name));
    doc->SetField("headline", avro::Datum::String(m.headline));
    doc->SetField("company", avro::Datum::String(m.company));
    LIDI_MUST_OK(router.PutDocument(std::string("/Members/Profile/") + m.id, *doc));
  }

  // The search tier: a listener on the update stream, continuously indexing.
  espresso::GlobalIndexer search("Members", &registry, &relay);
  std::printf("indexed %lld change events from the update stream\n",
              static_cast<long long>(search.CatchUp()));

  auto show = [&](const char* query) {
    auto hits = search.Query("Profile", query);
    std::printf("search %-38s ->", query);
    if (hits.ok()) {
      for (const auto& key : hits.value()) std::printf(" %s", key.c_str());
    }
    std::printf("\n");
  };
  show("headline:\"distributed systems\"");
  show("headline:distributed");
  show("company:acme");
  show("company:linkedin headline:messaging");

  // The index follows updates: m3 pivots to distributed systems.
  auto doc = avro::Datum::Record("Profile");
  doc->SetField("name", avro::Datum::String("Bob"));
  doc->SetField("headline",
                avro::Datum::String("now doing distributed systems too"));
  doc->SetField("company", avro::Datum::String("acme"));
  LIDI_MUST_OK(router.PutDocument("/Members/Profile/m3", *doc));
  search.CatchUp();
  show("headline:\"distributed systems\"");
  return 0;
}
