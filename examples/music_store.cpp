// Espresso walkthrough: the paper's Music database (Section IV.A).
//
// Builds the Artists / Albums / Songs tables with hierarchical document
// URIs, posts documents (including a multi-table transaction), runs the
// paper's free-text lyric query, evolves the document schema, and
// demonstrates a master failover with zero acknowledged-write loss.

#include <cstdio>

#include "common/clock.h"
#include "espresso/router.h"
#include "espresso/storage_node.h"
#include "helix/helix.h"
#include "net/network.h"
#include "zk/zookeeper.h"

#include "common/require.h"

using namespace lidi;

int main() {
  net::Network network;
  SystemClock* clock = SystemClock::Default();
  zk::ZooKeeper zookeeper;

  // Schemas: database, tables, document schemas with index annotations.
  espresso::SchemaRegistry registry;
  LIDI_MUST_OK(registry.CreateDatabase(
      {"Music", espresso::DatabaseSchema::Partitioning::kHash, 8, 2}));
  LIDI_MUST_OK(registry.CreateTable("Music", {"Artist", 0}));
  LIDI_MUST_OK(registry.CreateTable("Music", {"Album", 1}));
  LIDI_MUST_OK(registry.CreateTable("Music", {"Song", 2}));
  LIDI_MUST_OK(registry.PostDocumentSchema("Music", "Artist", R"({
    "type":"record","name":"Artist","fields":[
      {"name":"name","type":"string"}]})"));
  LIDI_MUST_OK(registry.PostDocumentSchema("Music", "Album", R"({
    "type":"record","name":"Album","fields":[
      {"name":"artist","type":"string","indexed":true},
      {"name":"year","type":"int","indexed":true}]})"));
  LIDI_MUST_OK(registry.PostDocumentSchema("Music", "Song", R"({
    "type":"record","name":"Song","fields":[
      {"name":"title","type":"string","indexed":true},
      {"name":"lyrics","type":"string","indexed":true,"index_type":"text"}]})"));

  // Cluster: three storage nodes managed by Helix.
  espresso::EspressoRelay relay;
  helix::HelixController controller("espresso", &zookeeper);
  LIDI_MUST_OK(controller.AddResource({"Music", 8, 2}));
  std::vector<std::unique_ptr<espresso::StorageNode>> nodes;
  std::map<std::string, zk::SessionId> sessions;
  for (int i = 0; i < 3; ++i) {
    auto node = std::make_unique<espresso::StorageNode>(
        "esn-" + std::to_string(i), &registry, &relay, &network, clock);
    auto* raw = node.get();
    raw->SetMasterLookup([&controller](const std::string& db, int p) {
      return controller.MasterOf(db, p);
    });
    auto session = controller.ConnectParticipant(
        raw->name(),
        [raw](const helix::Transition& t) { return raw->HandleTransition(t); });
    sessions[raw->name()] = session.value();
    nodes.push_back(std::move(node));
  }
  controller.RebalanceToConvergence();
  espresso::Router router("router", &registry, &controller, &network);

  // Singleton and collection documents, exactly the paper's URIs.
  auto artist = avro::Datum::Record("Artist");
  artist->SetField("name", avro::Datum::String("The Beatles"));
  LIDI_MUST_OK(router.PutDocument("/Music/Artist/The_Beatles", *artist));

  auto put_song = [&](const std::string& uri, const std::string& title,
                      const std::string& lyrics) {
    auto song = avro::Datum::Record("Song");
    song->SetField("title", avro::Datum::String(title));
    song->SetField("lyrics", avro::Datum::String(lyrics));
    auto etag = router.PutDocument(uri, *song);
    std::printf("PUT %s -> etag %s\n", uri.c_str(),
                etag.ok() ? etag.value().c_str() : etag.status().ToString().c_str());
  };
  put_song("/Music/Song/The_Beatles/Sgt._Pepper/Lucy_in_the_Sky_with_Diamonds",
           "Lucy in the Sky with Diamonds",
           "Picture yourself in a boat on a river... Lucy in the sky with diamonds");
  put_song("/Music/Song/The_Beatles/Magical_Mystery_Tour/I_am_the_Walrus",
           "I am the Walrus", "I am he as you are he... see how they run like "
           "Lucy in the sky");
  put_song("/Music/Song/The_Beatles/Abbey_Road/Come_Together", "Come Together",
           "Here come old flat top he come grooving up slowly");

  // A transactional POST: a new album plus its song, atomically (IV.A).
  auto album = avro::Datum::Record("Album");
  album->SetField("artist", avro::Datum::String("Elton John"));
  album->SetField("year", avro::Datum::Int(1974));
  auto candle = avro::Datum::Record("Song");
  candle->SetField("title", avro::Datum::String("Candle in the Wind"));
  candle->SetField("lyrics", avro::Datum::String("goodbye Norma Jean"));
  std::vector<espresso::Router::TxnUpdate> txn;
  txn.push_back({"Album", "Elton_John/Greatest_Hits", album.get()});
  txn.push_back({"Song", "Elton_John/Greatest_Hits/Candle_in_the_Wind",
                 candle.get()});
  Status txn_status = router.PostTransaction("Music", "Elton_John", txn);
  std::printf("transactional POST: %s\n", txn_status.ToString().c_str());

  // The paper's query: GET /Music/Song/The_Beatles?query=lyrics:"Lucy in the sky"
  auto hits = router.Query(
      "/Music/Song/The_Beatles?query=lyrics:%22Lucy+in+the+sky%22");
  std::printf("lyrics:\"Lucy in the sky\" ->\n");
  for (const auto& [key, doc] : hits.value()) {
    std::printf("  /Music/Song/%s\n", key.c_str());
  }

  // Schema evolution: add a genre field with a default; old docs promote.
  LIDI_MUST_OK(registry.PostDocumentSchema("Music", "Song", R"({
    "type":"record","name":"Song","fields":[
      {"name":"title","type":"string","indexed":true},
      {"name":"lyrics","type":"string","indexed":true,"index_type":"text"},
      {"name":"genre","type":"string","default":"rock"}]})"));
  auto promoted = router.GetDocument(
      "/Music/Song/The_Beatles/Abbey_Road/Come_Together");
  std::printf("after schema evolution, genre = %s\n",
              promoted.value()->GetField("genre")->string_value().c_str());

  // Failover: kill a master node; Helix promotes slaves after they drain the
  // replication relay; reads keep working.
  network.SetNodeDown("esn-0");
  zookeeper.CloseSession(sessions["esn-0"]);
  controller.RebalanceToConvergence();
  auto after = router.GetDocument("/Music/Artist/The_Beatles");
  std::printf("after killing esn-0, artist doc still readable: %s\n",
              after.ok() ? "yes" : after.status().ToString().c_str());
  return 0;
}
