// Company Follow (paper Section II.C): the read-write Voldemort use case.
//
// Two Voldemort stores act as a cache-like layer over the primary storage:
//   member-follows:   member id  -> list of company ids the member follows
//   company-followers: company id -> list of member ids following it
// Both stores are fed by a Databus relay and populated whenever a user
// follows a new company; the feed itself is driven from the primary DB.
// Since the stores are used as a cache, transient inconsistency between the
// two is acceptable (the paper says exactly this).

#include <cstdio>

#include "common/clock.h"
#include "databus/client.h"
#include "databus/relay.h"
#include "net/address.h"
#include "net/network.h"
#include "sqlstore/database.h"
#include "voldemort/client.h"
#include "voldemort/server.h"

#include "common/require.h"

using namespace lidi;

namespace {

/// The Databus consumer that maintains the two Voldemort stores. This is
/// the paper's "user-space processing": computation triggered by a data
/// change, running outside the database server.
class FollowFeedConsumer : public databus::Consumer {
 public:
  FollowFeedConsumer(voldemort::StoreClient* member_follows,
                     voldemort::StoreClient* company_followers)
      : member_follows_(member_follows),
        company_followers_(company_followers) {}

  Status OnEvent(const databus::Event& event) override {
    auto row = sqlstore::DecodeRow(event.payload);
    if (!row.ok()) return row.status();
    const std::string member = row.value().at("member");
    const std::string company = row.value().at("company");
    AppendTo(member_follows_, member, company);
    AppendTo(company_followers_, company, member);
    return Status::OK();
  }

 private:
  static void AppendTo(voldemort::StoreClient* store, const std::string& key,
                       const std::string& item) {
    // Server-side transformed put: append without shipping the whole list.
    voldemort::VectorClock clock;
    auto current = store->Get(key);
    if (current.ok()) {
      for (const auto& v : current.value()) clock = clock.Merge(v.version);
    }
    voldemort::Transform append;
    append.type = voldemort::Transform::Type::kAppend;
    append.item = item;
    LIDI_MUST_OK(store->Put(key, clock, append));
  }

  voldemort::StoreClient* member_follows_;
  voldemort::StoreClient* company_followers_;
};

}  // namespace

int main() {
  net::Network network;
  SystemClock* clock = SystemClock::Default();

  // Voldemort cluster with the two stores.
  std::vector<voldemort::Node> nodes;
  for (int i = 0; i < 4; ++i) {
    nodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), 0});
  }
  auto metadata = std::make_shared<voldemort::ClusterMetadata>(
      voldemort::Cluster::Uniform(nodes, 16));
  std::vector<std::unique_ptr<voldemort::VoldemortServer>> servers;
  for (int i = 0; i < 4; ++i) {
    servers.push_back(
        std::make_unique<voldemort::VoldemortServer>(i, metadata, &network));
    LIDI_MUST_OK(servers.back()->AddStore("member-follows"));
    LIDI_MUST_OK(servers.back()->AddStore("company-followers"));
  }
  voldemort::StoreDefinition def;
  def.replication_factor = 3;
  def.required_reads = 2;
  def.required_writes = 2;
  def.name = "member-follows";
  voldemort::StoreClient member_follows("cf-app", def, metadata, &network,
                                        clock);
  def.name = "company-followers";
  voldemort::StoreClient company_followers("cf-app", def, metadata, &network,
                                           clock);

  // Primary storage records follows; Databus captures and feeds the caches.
  sqlstore::Database primary("follow_db");
  LIDI_MUST_OK(primary.CreateTable("follows"));
  databus::Relay relay("follow-relay", &primary, &network);
  FollowFeedConsumer feed(&member_follows, &company_followers);
  databus::DatabusClient pipeline("cache-populator", "follow-relay", "",
                                  &network, &feed);

  // Members follow companies (writes hit the primary DB only).
  const char* follows[][2] = {
      {"m1", "linkedin"}, {"m1", "acme"},   {"m2", "linkedin"},
      {"m3", "linkedin"}, {"m3", "globex"}, {"m2", "acme"},
  };
  for (const auto& [member, company] : follows) {
    LIDI_MUST_OK(primary.Put("follows", std::string(member) + ":" + company,
                {{"member", member}, {"company", company}}));
  }

  // The stream pipeline keeps the caches fresh.
  LIDI_MUST_OK(relay.PollOnce());
  LIDI_MUST_OK(pipeline.DrainToHead());

  // Serve "who do I follow" / "who follows us" from Voldemort.
  auto print_list = [](voldemort::StoreClient& store, const std::string& key) {
    auto versions = store.Get(key);
    if (!versions.ok()) {
      std::printf("  %s: <%s>\n", key.c_str(),
                  versions.status().ToString().c_str());
      return;
    }
    auto list = voldemort::DecodeStringList(versions.value()[0].value);
    std::printf("  %s:", key.c_str());
    for (const auto& item : list.value()) std::printf(" %s", item.c_str());
    std::printf("\n");
  };
  std::printf("member-follows store:\n");
  print_list(member_follows, "m1");
  print_list(member_follows, "m2");
  print_list(member_follows, "m3");
  std::printf("company-followers store:\n");
  print_list(company_followers, "linkedin");
  print_list(company_followers, "acme");
  print_list(company_followers, "globex");
  return 0;
}
