// "People You May Know" on the Voldemort read-only store (Section II.C).
//
// An offline job (the Hadoop stand-in) scores link predictions for every
// member and bulk-builds partitioned index + data files sorted by MD5(key).
// The controller runs the three-phase data cycle — build, throttled pull,
// atomic swap — after which Voldemort serves lookups via binary search over
// the memory-mapped index. A bad deployment is rolled back instantly.

#include <cstdio>

#include "common/clock.h"
#include "common/random.h"
#include "net/address.h"
#include "net/network.h"
#include "voldemort/bulk_build.h"
#include "voldemort/client.h"
#include "voldemort/server.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::voldemort;

namespace {

/// The offline scoring job: for each member, a list of recommended member
/// ids with scores (the store layout the paper describes for PYMK).
std::map<std::string, std::string> RunLinkPredictionJob(int members,
                                                        uint64_t seed) {
  Random rng(seed);
  std::map<std::string, std::string> records;
  for (int m = 0; m < members; ++m) {
    std::string recs;
    for (int i = 0; i < 10; ++i) {
      if (i) recs += ',';
      recs += "member:" + std::to_string(rng.Uniform(members)) + ":score=" +
              std::to_string(rng.Uniform(1000));
    }
    records["member:" + std::to_string(m)] = recs;
  }
  return records;
}

}  // namespace

int main() {
  net::Network network;
  SystemClock* clock = SystemClock::Default();

  std::vector<Node> cluster_nodes;
  for (int i = 0; i < 3; ++i) {
    cluster_nodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), 0});
  }
  auto metadata = std::make_shared<ClusterMetadata>(
      Cluster::Uniform(cluster_nodes, 12));
  std::vector<std::unique_ptr<VoldemortServer>> servers;
  std::vector<VoldemortServer*> server_ptrs;
  for (int i = 0; i < 3; ++i) {
    servers.push_back(std::make_unique<VoldemortServer>(i, metadata, &network));
    LIDI_MUST_OK(servers.back()->AddReadOnlyStore("pymk"));
    server_ptrs.push_back(servers.back().get());
  }

  BulkFileRepository hdfs;
  ReadOnlyController controller(server_ptrs, &hdfs);

  // Build phase (v1): score, partition by destination node, sort by MD5.
  auto v1 = RunLinkPredictionJob(2000, /*seed=*/1);
  hdfs.Publish("pymk", 1, BulkBuild(v1, metadata->SnapshotCluster(), 2));
  // Pull phase: throttled parallel fetch into a new versioned directory.
  PullOptions pull;
  pull.throttle_chunk_bytes = 64 << 10;
  int throttle_pauses = 0;
  pull.throttle_callback = [&throttle_pauses](int64_t) { ++throttle_pauses; };
  LIDI_MUST_OK(controller.Pull("pymk", 1, pull));
  // Swap phase: atomic across the cluster.
  LIDI_MUST_OK(controller.SwapAll("pymk", 1));
  std::printf("v1 deployed (%d throttle pauses during pull)\n",
              throttle_pauses);

  StoreDefinition def;
  def.name = "pymk";
  def.replication_factor = 2;
  def.required_reads = 1;
  def.required_writes = 1;
  StoreClient client("pymk-frontend", def, metadata, &network, clock);
  auto recs = client.ReadOnlyGet("member:42");
  std::printf("member:42 -> %.60s...\n",
              recs.ok() ? recs.value().c_str() : recs.status().ToString().c_str());

  // Iteration: the prediction algorithm changed, redeploy (v2)...
  auto v2 = RunLinkPredictionJob(2000, /*seed=*/2);
  hdfs.Publish("pymk", 2, BulkBuild(v2, metadata->SnapshotCluster(), 2));
  LIDI_MUST_OK(controller.Pull("pymk", 2));
  LIDI_MUST_OK(controller.SwapAll("pymk", 2));
  auto recs_v2 = client.ReadOnlyGet("member:42");
  std::printf("after v2 swap, member:42 changed: %s\n",
              recs_v2.value() != recs.value() ? "yes" : "no");

  // ...but v2 has a data problem: instantaneous rollback.
  LIDI_MUST_OK(controller.RollbackAll("pymk"));
  auto recs_back = client.ReadOnlyGet("member:42");
  std::printf("after rollback, member:42 matches v1 again: %s\n",
              recs_back.value() == recs.value() ? "yes" : "no");

  // Measure lookup latency (the paper reports sub-millisecond averages).
  const int kLookups = 20000;
  Random rng(7);
  const int64_t start = clock->NowMicros();
  for (int i = 0; i < kLookups; ++i) {
    LIDI_MUST_OK(client.ReadOnlyGet("member:" + std::to_string(rng.Uniform(2000))));
  }
  const double avg_us =
      static_cast<double>(clock->NowMicros() - start) / kLookups;
  std::printf("read-only lookups: avg %.1f us over %d requests\n", avg_us,
              kLookups);
  return 0;
}
