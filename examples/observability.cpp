// Observability quickstart: one registry, one snapshot, every subsystem.
//
// Every component defaults to the metrics registry of the Network it talks
// through, so running traffic through a shared Network and calling
// Snapshot() once yields counters, latency histograms, and RPC spans for
// all of it. Build and run:
//   cmake -B build && cmake --build build && ./build/examples/observability

#include <cstdio>

#include "common/clock.h"
#include "databus/relay.h"
#include "kafka/broker.h"
#include "kafka/consumer.h"
#include "kafka/producer.h"
#include "net/address.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "sqlstore/database.h"
#include "voldemort/client.h"
#include "voldemort/server.h"
#include "zk/zookeeper.h"

#include "common/require.h"

using namespace lidi;  // example code; library code never does this

int main() {
  net::Network network;  // owns the registry everything below reports into
  SystemClock* clock = SystemClock::Default();
  zk::ZooKeeper zookeeper;

  // Voldemort quorum traffic: root spans + per-replica child spans.
  std::vector<voldemort::Node> nodes;
  for (int i = 0; i < 3; ++i) {
    nodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), 0});
  }
  auto metadata = std::make_shared<voldemort::ClusterMetadata>(
      voldemort::Cluster::Uniform(nodes, 12));
  std::vector<std::unique_ptr<voldemort::VoldemortServer>> servers;
  for (int i = 0; i < 3; ++i) {
    servers.push_back(
        std::make_unique<voldemort::VoldemortServer>(i, metadata, &network));
    LIDI_MUST_OK(servers.back()->AddStore("profiles"));
  }
  voldemort::StoreClient store(
      "obs-demo", {.name = "profiles", .replication_factor = 3,
                   .required_reads = 2, .required_writes = 2},
      metadata, &network, clock);
  for (int i = 0; i < 10; ++i) {
    const std::string key = "member:" + std::to_string(i);
    LIDI_MUST_OK(store.PutValue(key, "profile data"));
    LIDI_MUST_OK(store.Get(key));
  }

  // Kafka produce/fetch: copy accounting lands in the same registry.
  kafka::Broker broker(0, &zookeeper, &network, clock);
  LIDI_MUST_OK(broker.CreateTopic("page-views", 1));
  kafka::Producer producer("frontend", &zookeeper, &network);
  for (int i = 0; i < 20; ++i) {
    LIDI_MUST_OK(producer.Send("page-views", "member:1 viewed member:2"));
  }
  kafka::Consumer consumer("newsfeed", "group", &zookeeper, &network);
  LIDI_MUST_OK(consumer.Subscribe("page-views"));
  LIDI_MUST_OK(consumer.PollUntilData("page-views"));

  // Databus relay pull: poll spans + ingest counters.
  sqlstore::Database primary("member_db");
  LIDI_MUST_OK(primary.CreateTable("profiles"));
  databus::Relay relay("relay-1", &primary, &network);
  LIDI_MUST_OK(primary.Put("profiles", "member:1", {{"headline", "hello"}}));
  LIDI_MUST_OK(relay.PollOnce());

  // The one export API: every instrument, every recent span.
  std::printf("%s", network.metrics()->Snapshot().ToText().c_str());
  return 0;
}
