// The Kafka activity-event pipeline of Section V.D.
//
// Frontend services publish page-view events in compressed batches to the
// live datacenter's Kafka cluster. Online consumers (a "news-postings
// processor") read in real time. A mirror cluster in the offline datacenter
// runs embedded consumers pulling from the live cluster; data-load jobs
// ("Hadoop") consume the mirror. An audit trail verifies zero loss
// end-to-end.

#include <cstdio>

#include "common/clock.h"
#include "common/random.h"
#include "kafka/audit.h"
#include "kafka/broker.h"
#include "kafka/consumer.h"
#include "kafka/mirror.h"
#include "kafka/producer.h"
#include "net/network.h"
#include "zk/zookeeper.h"

#include "common/require.h"

using namespace lidi;
using namespace lidi::kafka;

int main() {
  net::Network network;
  ManualClock clock(0);
  zk::ZooKeeper zookeeper;

  // Live cluster: two brokers, over-partitioned topic for load balancing.
  BrokerOptions live_options;
  live_options.log.flush_interval_messages = 10;
  live_options.log.flush_interval_ms = 500;
  std::vector<std::unique_ptr<Broker>> live;
  for (int i = 0; i < 2; ++i) {
    live.push_back(
        std::make_unique<Broker>(i, &zookeeper, &network, &clock, live_options));
    LIDI_MUST_OK(live.back()->CreateTopic("page-views", 4));
    LIDI_MUST_OK(live.back()->CreateTopic(kAuditTopic, 1));
  }

  // Offline cluster (separate zk root), geographically near "Hadoop".
  BrokerOptions offline_options;
  offline_options.zk_root = "/kafka-offline";
  offline_options.log.flush_interval_messages = 1;
  Broker offline(100, &zookeeper, &network, &clock, offline_options);
  LIDI_MUST_OK(offline.CreateTopic("page-views", 4));

  // Frontend producers: batched, compressed event publishing.
  ProducerOptions producer_options;
  producer_options.batch_size = 20;
  producer_options.codec = CompressionCodec::kDeflate;
  Producer frontend("frontend-1", &zookeeper, &network, producer_options);
  ProducerAudit audit("frontend-1", &frontend, &clock, /*window_ms=*/1000);

  Random rng(42);
  int64_t raw_bytes = 0;
  for (int i = 0; i < 400; ++i) {
    const std::string event =
        "viewer=member:" + std::to_string(rng.Uniform(50)) +
        " viewed=member:" + std::to_string(rng.Uniform(50)) +
        " page=/profile referer=/search ts=" + std::to_string(i) + " " +
        rng.Bytes(80);
    raw_bytes += static_cast<int64_t>(event.size());
    LIDI_MUST_OK(frontend.Send("page-views", event));
    audit.RecordProduced("page-views");
    if (i % 100 == 99) clock.AdvanceMillis(300);
  }
  LIDI_MUST_OK(frontend.Flush());
  clock.AdvanceMillis(1500);
  audit.MaybeEmit();
  LIDI_MUST_OK(frontend.Flush());
  for (auto& broker : live) broker->FlushAll();
  std::printf("produced 400 events: %lld raw bytes, %lld on the wire "
              "(compression saved %.0f%%)\n",
              static_cast<long long>(raw_bytes),
              static_cast<long long>(frontend.bytes_on_wire()),
              100.0 * (1.0 - static_cast<double>(frontend.bytes_on_wire()) /
                                 static_cast<double>(raw_bytes)));

  // Online consumer in the live datacenter.
  Consumer realtime("search-indexer", "search", &zookeeper, &network);
  LIDI_MUST_OK(realtime.Subscribe("page-views"));
  AuditValidator validator;
  for (int round = 0; round < 200; ++round) {
    validator.RecordConsumed(
        "page-views",
        static_cast<int64_t>(realtime.Poll("page-views").value().size()));
  }
  std::printf("online consumer received %lld events\n",
              static_cast<long long>(realtime.messages_consumed()));

  // Mirror into the offline cluster, then the "Hadoop load" consumes it.
  MirrorMaker mirror("dwh", "page-views", &zookeeper, &network, "/kafka",
                     "/kafka-offline", CompressionCodec::kDeflate);
  auto mirrored = mirror.PumpToHead();
  std::printf("mirrored %lld events to the offline cluster\n",
              static_cast<long long>(mirrored.value()));
  ConsumerOptions offline_consumer;
  offline_consumer.zk_root = "/kafka-offline";
  Consumer hadoop("etl-load", "etl", &zookeeper, &network, offline_consumer);
  LIDI_MUST_OK(hadoop.Subscribe("page-views"));
  int64_t loaded = 0;
  for (int round = 0; round < 200; ++round) {
    loaded += static_cast<int64_t>(hadoop.Poll("page-views").value().size());
  }
  std::printf("hadoop load consumed %lld events from the mirror\n",
              static_cast<long long>(loaded));

  // Audit: produced counts (from monitoring events) vs consumed counts.
  Consumer audit_reader("auditor", "audit", &zookeeper, &network);
  LIDI_MUST_OK(audit_reader.Subscribe(kAuditTopic));
  for (int round = 0; round < 20; ++round) {
    auto messages = audit_reader.Poll(kAuditTopic);
    if (messages.ok()) LIDI_MUST_OK(validator.IngestAuditMessages(messages.value()));
  }
  std::printf("audit: produced=%lld consumed=%lld -> %s\n",
              static_cast<long long>(validator.ProducedCount("page-views")),
              static_cast<long long>(validator.ConsumedCount("page-views")),
              validator.Validate("page-views") ? "NO LOSS" : "MISMATCH");
  return 0;
}
