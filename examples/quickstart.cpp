// Quickstart: the four lidi systems in ~100 lines.
//
// Spins up (in process) a Voldemort cluster, a primary database with a
// Databus relay, an Espresso cluster, and a Kafka cluster, then pushes one
// piece of data through each. Build and run:
//   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "common/clock.h"
#include "databus/client.h"
#include "databus/relay.h"
#include "espresso/router.h"
#include "espresso/storage_node.h"
#include "kafka/broker.h"
#include "kafka/consumer.h"
#include "kafka/producer.h"
#include "net/address.h"
#include "net/network.h"
#include "sqlstore/database.h"
#include "voldemort/admin.h"
#include "voldemort/client.h"
#include "voldemort/server.h"
#include "zk/zookeeper.h"

#include "common/require.h"

using namespace lidi;  // example code; library code never does this

int main() {
  net::Network network;
  SystemClock* clock = SystemClock::Default();
  zk::ZooKeeper zookeeper;

  // --- Voldemort: eventually consistent key-value storage -----------------
  std::vector<voldemort::Node> nodes;
  for (int i = 0; i < 3; ++i) {
    nodes.push_back({i, net::MakeAddress(net::Tier::kVoldemort, i), 0});
  }
  auto metadata = std::make_shared<voldemort::ClusterMetadata>(
      voldemort::Cluster::Uniform(nodes, 12));
  std::vector<std::unique_ptr<voldemort::VoldemortServer>> servers;
  for (int i = 0; i < 3; ++i) {
    servers.push_back(
        std::make_unique<voldemort::VoldemortServer>(i, metadata, &network));
    LIDI_MUST_OK(servers.back()->AddStore("profiles"));
  }
  voldemort::StoreClient store(
      "quickstart", {.name = "profiles", .replication_factor = 3,
                     .required_reads = 2, .required_writes = 2},
      metadata, &network, clock);
  LIDI_MUST_OK(store.PutValue("member:1", "Jay Kreps, LinkedIn"));
  auto versions = store.Get("member:1");
  std::printf("[voldemort] member:1 -> %s\n",
              versions.ok() ? versions.value()[0].value.c_str() : "ERROR");

  // --- Databus: change capture from a primary database --------------------
  sqlstore::Database primary("member_db");
  LIDI_MUST_OK(primary.CreateTable("profiles"));
  databus::Relay relay("relay-1", &primary, &network);
  databus::CallbackConsumer printer([](const databus::Event& e) {
    std::printf("[databus] scn=%lld %s %s\n", static_cast<long long>(e.scn),
                e.source.c_str(), e.key.c_str());
    return Status::OK();
  });
  databus::DatabusClient subscriber("subscriber", "relay-1", "", &network,
                                    &printer);
  LIDI_MUST_OK(primary.Put("profiles", "member:1", {{"headline", "Data infra at LinkedIn"}}));
  LIDI_MUST_OK(relay.PollOnce());
  LIDI_MUST_OK(subscriber.DrainToHead());

  // --- Espresso: documents with secondary indexing -------------------------
  espresso::SchemaRegistry registry;
  LIDI_MUST_OK(registry.CreateDatabase(
      {"Music", espresso::DatabaseSchema::Partitioning::kHash, 8, 2}));
  LIDI_MUST_OK(registry.CreateTable("Music", {"Song", 2}));
  LIDI_MUST_OK(registry.PostDocumentSchema("Music", "Song", R"({
    "type":"record","name":"Song","fields":[
      {"name":"title","type":"string","indexed":true},
      {"name":"lyrics","type":"string","indexed":true,"index_type":"text"}]})"));
  espresso::EspressoRelay espresso_relay;
  helix::HelixController controller("espresso", &zookeeper);
  LIDI_MUST_OK(controller.AddResource({"Music", 8, 2}));
  std::vector<std::unique_ptr<espresso::StorageNode>> espresso_nodes;
  for (int i = 0; i < 3; ++i) {
    auto node = std::make_unique<espresso::StorageNode>(
        "esn-" + std::to_string(i), &registry, &espresso_relay, &network,
        clock);
    auto* raw = node.get();
    raw->SetMasterLookup([&controller](const std::string& db, int p) {
      return controller.MasterOf(db, p);
    });
    LIDI_MUST_OK(controller.ConnectParticipant(raw->name(), [raw](const helix::Transition& t) {
      return raw->HandleTransition(t);
    }));
    espresso_nodes.push_back(std::move(node));
  }
  controller.RebalanceToConvergence();
  espresso::Router router("router", &registry, &controller, &network);
  auto song = avro::Datum::Record("Song");
  song->SetField("title", avro::Datum::String("At Last"));
  song->SetField("lyrics", avro::Datum::String("at last my love has come along"));
  LIDI_MUST_OK(router.PutDocument("/Music/Song/Etta_James/Gold/At_Last", *song));
  auto hits = router.Query("/Music/Song/Etta_James?query=lyrics:%22at+last%22");
  std::printf("[espresso] lyric search hits: %zu\n",
              hits.ok() ? hits.value().size() : 0);

  // --- Kafka: activity event pub/sub ---------------------------------------
  kafka::Broker broker(0, &zookeeper, &network, clock);
  LIDI_MUST_OK(broker.CreateTopic("page-views", 2));
  kafka::Producer producer("frontend", &zookeeper, &network);
  LIDI_MUST_OK(producer.Send("page-views", "member:1 viewed member:2"));
  kafka::Consumer consumer("newsfeed", "newsfeed-group", &zookeeper, &network);
  LIDI_MUST_OK(consumer.Subscribe("page-views"));
  auto messages = consumer.PollUntilData("page-views");
  if (messages.ok() && !messages.value().empty()) {
    std::printf("[kafka] consumed: %s\n",
                messages.value()[0].payload.c_str());
  }

  std::printf("quickstart complete\n");
  return 0;
}
